//! The Bayesian multi-layer perceptron of Figure 9: network weights lifted to
//! random variables, trained with SVI against a mean-field guide, then used
//! as an ensemble classifier.
//!
//! ```bash
//! cargo run --release --example bayesian_mlp
//! ```

use deepstan::{Activation, DeepStan, Method, MlpSpec, SviSettings};
use gprob::value::Value;
use model_zoo::{synthetic_digits, BAYESIAN_MLP_SOURCE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 6;
    let (nx, nh, ny) = (side * side, 8usize, 10usize);
    let (images, labels) = synthetic_digits(30, side, 0.03, 1);

    let mlp = MlpSpec::new("mlp", &[nx, nh, ny], Activation::Tanh);
    let program = DeepStan::compile_named("bayes_mlp", BAYESIAN_MLP_SOURCE)?;

    let data = vec![
        ("batch_size", Value::Int(images.len() as i64)),
        ("nx", Value::Int(nx as i64)),
        ("nh", Value::Int(nh as i64)),
        ("ny", Value::Int(ny as i64)),
        (
            "imgs",
            Value::Array(images.iter().map(|i| Value::Vector(i.clone())).collect()),
        ),
        ("labels", Value::IntArray(labels.clone())),
    ];

    println!("training a {nx}-{nh}-{ny} Bayesian MLP with SVI...");
    let session_fit = program
        .session(&data)?
        .networks(std::slice::from_ref(&mlp))
        .seed(1)
        .guide_draws(20)
        .run(Method::Svi(SviSettings {
            steps: 200,
            lr: 0.02,
            ..Default::default()
        }))?;
    let fit = session_fit.variational.as_ref().expect("fitted guide");
    println!(
        "fitted {} guide parameter tensors (posterior means and log-scales of every weight)",
        fit.guide_params.len()
    );
    println!(
        "ELBO: first = {:.1}, last = {:.1}",
        fit.elbo_trace.first().copied().unwrap_or(f64::NAN),
        fit.elbo_trace.last().copied().unwrap_or(f64::NAN)
    );

    // Use the posterior means as a single point-estimate network.
    let mut params = std::collections::HashMap::new();
    params.insert(
        "mlp.l1.weight".to_string(),
        fit.guide_params["w1_mu"].clone(),
    );
    params.insert("mlp.l1.bias".to_string(), fit.guide_params["b1_mu"].clone());
    params.insert(
        "mlp.l2.weight".to_string(),
        fit.guide_params["w2_mu"].clone(),
    );
    params.insert("mlp.l2.bias".to_string(), fit.guide_params["b2_mu"].clone());
    let correct = images
        .iter()
        .zip(&labels)
        .filter(|(img, &label)| {
            let logits = mlp.forward(&params, img).expect("forward pass");
            let pred = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(k, _)| (k + 1) as i64)
                .unwrap_or(0);
            pred == label
        })
        .count();
    println!(
        "posterior-mean network training accuracy: {}/{}",
        correct,
        images.len()
    );
    Ok(())
}
