//! A small Variational Auto-Encoder written in DeepStan (Figure 8), trained
//! with SVI on the synthetic digits data set.
//!
//! ```bash
//! cargo run --release --example vae_digits
//! ```

use deepstan::{Activation, DeepStan, Method, MlpSpec, SviSettings};
use gprob::value::Value;
use model_zoo::{synthetic_digits, VAE_SOURCE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 8;
    let npix = side * side;
    let nz = 3;
    let (images, _) = synthetic_digits(20, side, 0.05, 1);

    let decoder = MlpSpec::new("decoder", &[nz, 12, npix], Activation::Tanh);
    let encoder = MlpSpec::new("encoder", &[npix, 12, 2 * nz], Activation::Tanh);
    let networks = vec![decoder, encoder.clone()];

    let program = DeepStan::compile_named("vae", VAE_SOURCE)?;
    println!("generated Pyro code:\n{}", program.to_pyro());

    // Train on one image to demonstrate the full SVI pipeline.
    let img = &images[0];
    let data = vec![
        ("nz", Value::Int(nz as i64)),
        ("npix", Value::Int(npix as i64)),
        (
            "x",
            Value::IntArray(img.iter().map(|&p| p as i64).collect()),
        ),
    ];
    let session_fit = program
        .session(&data)?
        .networks(&networks)
        .seed(1)
        .guide_draws(50)
        .run(Method::Svi(SviSettings {
            steps: 300,
            lr: 0.01,
            ..Default::default()
        }))?;
    let fit = session_fit.variational.as_ref().expect("fitted guide");
    println!(
        "trained {} network parameter tensors; final smoothed ELBO: {:.1}",
        fit.network_params.len(),
        fit.elbo_trace.last().copied().unwrap_or(f64::NAN)
    );
    let first = fit.elbo_trace.first().copied().unwrap_or(f64::NAN);
    let last = fit.elbo_trace.last().copied().unwrap_or(f64::NAN);
    println!(
        "ELBO improved from {first:.1} to {last:.1}: {}",
        last > first
    );
    Ok(())
}
