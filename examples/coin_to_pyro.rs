//! Figure 2 of the paper: the three compilation schemes applied to the coin
//! model, and the Pyro / NumPyro code they generate.
//!
//! ```bash
//! cargo run --example coin_to_pyro
//! ```

use stan2gprob::{compile, to_numpyro, to_pyro, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = model_zoo::find("coin").expect("coin model in the corpus");
    let ast = stan_frontend::compile_frontend(entry.source)?;

    for scheme in [Scheme::Generative, Scheme::Comprehensive, Scheme::Mixed] {
        println!("=== {} scheme ===", scheme.name());
        match compile(&ast, scheme) {
            Ok(program) => {
                println!(
                    "sample sites: {}, observation sites: {}\n",
                    program.body.count_samples(),
                    program.body.count_observes()
                );
                println!("--- Pyro ---\n{}", to_pyro(&program, "coin"));
            }
            Err(e) => println!("compilation failed: {e}\n"),
        }
    }

    println!("=== NumPyro output (mixed scheme, lambda-lifted loops) ===");
    let mixed = compile(&ast, Scheme::Mixed)?;
    println!("{}", to_numpyro(&mixed, "coin"));
    Ok(())
}
