//! Model comparison: fit two kidscore regression variants on the same data,
//! stream their `generated quantities` (pointwise log-likelihoods and
//! posterior-predictive replicates) over the fits, and rank them with
//! PSIS-LOO and WAIC.
//!
//! ```bash
//! cargo run --release --example model_comparison
//! ```

use deepstan::{compare_by_loo, DeepStan, Method, NutsSettings};
use gprob::value::Value;
use inference::loo::ElpdEstimate;

/// The one-covariate kidscore regression with log-lik + replication rows.
const MOMHS: &str = r#"
    data { int N; real x1[N]; real x2[N]; real y[N]; }
    parameters { real alpha; real b1; real<lower=0> sigma; }
    model {
      alpha ~ normal(0, 10);
      b1 ~ normal(0, 10);
      sigma ~ cauchy(0, 5);
      for (i in 1:N) y[i] ~ normal(alpha + b1 * x1[i], sigma);
    }
    generated quantities {
      vector[N] log_lik;
      vector[N] y_rep;
      for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha + b1 * x1[i], sigma);
      for (i in 1:N) y_rep[i] = normal_rng(alpha + b1 * x1[i], sigma);
    }
"#;

/// The two-covariate variant — the data carries a real second-covariate
/// effect, so LOO should prefer it.
const MOMHSIQ: &str = r#"
    data { int N; real x1[N]; real x2[N]; real y[N]; }
    parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
    model {
      alpha ~ normal(0, 10);
      b1 ~ normal(0, 10);
      b2 ~ normal(0, 10);
      sigma ~ cauchy(0, 5);
      for (i in 1:N) y[i] ~ normal(alpha + b1 * x1[i] + b2 * x2[i], sigma);
    }
    generated quantities {
      vector[N] log_lik;
      vector[N] y_rep;
      for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha + b1 * x1[i] + b2 * x2[i], sigma);
      for (i in 1:N) y_rep[i] = normal_rng(alpha + b1 * x1[i] + b2 * x2[i], sigma);
    }
"#;

fn fit(
    name: &str,
    source: &str,
    data: &[(&str, Value<f64>)],
) -> Result<(ElpdEstimate, ElpdEstimate, f64), Box<dyn std::error::Error>> {
    let program = DeepStan::compile_named(name, source)?;
    let mut session = program.session(data)?.chains(2).seed(7);
    let mut fit = session.run(Method::Nuts(NutsSettings {
        warmup: 400,
        samples: 600,
        ..Default::default()
    }))?;
    // One call streams every retained draw through the resolved GQ program
    // (chains sharded over threads, per-(chain,draw) RNG streams).
    session.generated_quantities(&mut fit)?;
    let loo = fit.loo()?;
    let waic = fit.waic()?;
    // Posterior-predictive mean of the first observation's replicate.
    let y_rep = fit.posterior_predictive("y_rep").expect("y_rep declared");
    let ppc_mean = y_rep.iter().map(|row| row[0]).sum::<f64>() / y_rep.len() as f64;
    Ok((loo, waic, ppc_mean))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Kidscore-style synthetic data: y responds to BOTH covariates.
    let data = model_zoo::find("kidscore_momhsiq")
        .expect("corpus model")
        .dataset(13);
    let refs: Vec<(&str, Value<f64>)> = data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();

    let (loo_1, waic_1, ppc_1) = fit("kidscore_momhs", MOMHS, &refs)?;
    let (loo_2, waic_2, ppc_2) = fit("kidscore_momhsiq", MOMHSIQ, &refs)?;

    println!("model               elpd_loo      se    p_loo   max k-hat   waic_elpd   ppc[1]");
    for (name, loo, waic, ppc) in [
        ("kidscore_momhs  ", &loo_1, &waic_1, ppc_1),
        ("kidscore_momhsiq", &loo_2, &waic_2, ppc_2),
    ] {
        println!(
            "{name}   {:9.2} {:7.2} {:8.2} {:11.2} {:11.2} {:8.2}",
            loo.elpd,
            loo.se,
            loo.p_eff,
            loo.max_khat(),
            waic.elpd,
            ppc
        );
    }

    let ranking = compare_by_loo(&[("kidscore_momhs", &loo_1), ("kidscore_momhsiq", &loo_2)]);
    println!("\nLOO ranking (best first):");
    for row in &ranking {
        println!(
            "  {:18} elpd {:9.2}  elpd_diff {:8.2}  se_diff {:6.2}",
            row.name, row.elpd, row.elpd_diff, row.se_diff
        );
    }
    let by_waic =
        inference::loo_compare(&[("kidscore_momhs", &waic_1), ("kidscore_momhsiq", &waic_2)]);
    assert_eq!(
        ranking.iter().map(|r| &r.name).collect::<Vec<_>>(),
        by_waic.iter().map(|r| &r.name).collect::<Vec<_>>(),
        "LOO and WAIC disagree on the ranking"
    );
    println!(
        "\nWAIC agrees: best model is `{}` (data carries a second-covariate effect).",
        ranking[0].name
    );
    Ok(())
}
