//! The classic eight-schools hierarchical model, run through every backend
//! and compilation scheme with 4 parallel chains, with the paper's accuracy
//! criterion and cross-chain convergence diagnostics applied against the
//! reference interpreter.
//!
//! ```bash
//! cargo run --release --example eight_schools
//! ```

use deepstan::{DeepStan, Method, NutsSettings};
use gprob::value::Value;
use inference::diagnostics::accuracy_pass;
use stan2gprob::Scheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = model_zoo::find("eight_schools_centered").expect("corpus model");
    let program = DeepStan::compile_named(entry.name, entry.source)?;
    let data = entry.dataset(0);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();

    let reference = program
        .session(&data_refs)?
        .reference(true)
        .seed(99)
        .run(Method::Nuts(NutsSettings {
            warmup: 800,
            samples: 1600,
            ..Default::default()
        }))?;
    println!("reference (Stan semantics interpreter + NUTS):");
    for (name, s) in reference.summaries().iter().take(4) {
        println!(
            "  {name:<10} mean = {:>7.3}  sd = {:>6.3}",
            s.mean, s.stddev
        );
    }

    for scheme in [Scheme::Comprehensive, Scheme::Mixed] {
        let fit = program
            .session(&data_refs)?
            .scheme(scheme)
            .chains(4)
            .seed(7)
            // The centered parameterization is a funnel: give warmup
            // enough adaptation that the accuracy verdict reflects the
            // posterior rather than the seed.
            .run(Method::Nuts(NutsSettings {
                warmup: 1000,
                samples: 1600,
                ..Default::default()
            }))?;
        let mu = fit.summary("mu").unwrap();
        let mu_ref = reference.summary("mu").unwrap();
        let pass = accuracy_pass(mu.mean, mu_ref.mean, mu_ref.stddev);
        println!(
            "{} scheme ({} chains): mu mean = {:.3} (reference {:.3}) -> {}  \
             R-hat(mu) = {:.3}, ESS(mu) = {:.0}, divergences = {} [{:.2}s]",
            scheme.name(),
            fit.n_chains(),
            mu.mean,
            mu_ref.mean,
            if pass { "matches" } else { "MISMATCH" },
            fit.split_rhat("mu").unwrap_or(f64::NAN),
            fit.ess("mu").unwrap_or(f64::NAN),
            fit.divergences(),
            fit.wall_time
        );
    }
    Ok(())
}
