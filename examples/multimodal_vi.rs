//! The multimodal example of Figure 10: NUTS cannot represent the relative
//! mass of the two modes, mean-field ADVI collapses to one mode, and
//! variational inference with the explicit DeepStan guide recovers both.
//!
//! ```bash
//! cargo run --release --example multimodal_vi
//! ```

use deepstan::{DeepStan, NutsSettings, SviSettings};
use inference::advi::AdviConfig;

fn mode_masses(theta: &[f64]) -> (usize, usize) {
    let near_zero = theta.iter().filter(|&&t| t.abs() < 5.0).count();
    let near_twenty = theta.iter().filter(|&&t| (t - 20.0).abs() < 5.0).count();
    (near_zero, near_twenty)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = model_zoo::find("multimodal_guide").expect("corpus model");
    let program = DeepStan::compile_named(entry.name, entry.source)?;

    let nuts = program.nuts(
        &[],
        &NutsSettings {
            warmup: 400,
            samples: 1000,
            seed: 1,
            ..Default::default()
        },
    )?;
    let (z, t) = mode_masses(&nuts.component("theta").unwrap());
    println!("DeepStan NUTS:          {z} draws near 0, {t} near 20");

    let advi = program.advi(
        &[],
        &AdviConfig {
            steps: 2000,
            output_samples: 1000,
            seed: 2,
            ..Default::default()
        },
    )?;
    let (z, t) = mode_masses(&advi.component("theta").unwrap());
    println!("Stan ADVI (mean-field): {z} draws near 0, {t} near 20");

    let fit = program.svi(
        &[],
        &[],
        &SviSettings {
            steps: 3000,
            lr: 0.05,
            seed: 3,
        },
    )?;
    let guided = program.sample_guide(&[], &fit, &[], 1000, 4)?;
    let (z, t) = mode_masses(&guided.component("theta").unwrap());
    println!(
        "DeepStan VI (guide):    {z} draws near 0, {t} near 20   (m1 = {:.2}, m2 = {:.2})",
        fit.guide_params["m1"][0], fit.guide_params["m2"][0]
    );
    println!("\nExpected: only the custom guide puts substantial mass on both modes.");
    Ok(())
}
