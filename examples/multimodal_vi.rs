//! The multimodal example of Figure 10: NUTS cannot represent the relative
//! mass of the two modes, mean-field ADVI collapses to one mode, and
//! variational inference with the explicit DeepStan guide recovers both.
//! All four runs go through the same `Session::run(Method::..)` pipeline.
//!
//! ```bash
//! cargo run --release --example multimodal_vi
//! ```

use deepstan::{DeepStan, ImportanceSettings, Method, NutsSettings, SviSettings};
use inference::advi::AdviConfig;

fn mode_masses(theta: &[f64]) -> (usize, usize) {
    let near_zero = theta.iter().filter(|&&t| t.abs() < 5.0).count();
    let near_twenty = theta.iter().filter(|&&t| (t - 20.0).abs() < 5.0).count();
    (near_zero, near_twenty)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = model_zoo::find("multimodal_guide").expect("corpus model");
    let program = DeepStan::compile_named(entry.name, entry.source)?;

    let nuts = program
        .session(&[])?
        .seed(1)
        .run(Method::Nuts(NutsSettings {
            warmup: 400,
            samples: 1000,
            ..Default::default()
        }))?;
    let (z, t) = mode_masses(&nuts.component("theta").unwrap());
    println!("DeepStan NUTS:          {z} draws near 0, {t} near 20");

    let advi = program.session(&[])?.seed(2).run(Method::Advi(AdviConfig {
        steps: 2000,
        output_samples: 1000,
        ..Default::default()
    }))?;
    let (z, t) = mode_masses(&advi.component("theta").unwrap());
    println!("Stan ADVI (mean-field): {z} draws near 0, {t} near 20");

    let svi = program.session(&[])?.seed(3).run(Method::Svi(SviSettings {
        steps: 3000,
        lr: 0.05,
        ..Default::default()
    }))?;
    let guide = svi.variational.as_ref().expect("fitted guide");
    let (z, t) = mode_masses(&svi.component("theta").unwrap());
    println!(
        "DeepStan VI (guide):    {z} draws near 0, {t} near 20   (m1 = {:.2}, m2 = {:.2})",
        guide.guide_params["m1"][0], guide.guide_params["m2"][0]
    );

    // Importance sampling from the prior, for comparison: the prior mass of
    // the two branches is what likelihood weighting preserves.
    let importance = program
        .session(&[])?
        .seed(4)
        .run(Method::Importance(ImportanceSettings { particles: 4000 }))?;
    let (z, t) = mode_masses(&importance.component("theta").unwrap());
    println!(
        "Importance (prior):     {z} draws near 0, {t} near 20   (weight ESS = {:.0})",
        importance.importance_ess().unwrap_or(f64::NAN)
    );

    println!("\nExpected: only the custom guide puts substantial mass on both modes.");
    Ok(())
}
