//! Serve round trip: start the multi-tenant inference server in-process,
//! send corpus models over the wire, and watch the compiled-model cache
//! amortize compilation across requests and tenants.
//!
//! ```bash
//! cargo run --release --example serve_roundtrip
//! ```

use std::time::Instant;

use serve::client::Client;
use serve::protocol::{MethodSpec, Request};
use serve::server::{ServeConfig, Server};
use stan2gprob::Scheme;

fn request_for(entry: &model_zoo::ModelEntry) -> Request {
    Request {
        name: entry.name.to_string(),
        scheme: Scheme::Mixed,
        method: MethodSpec::Nuts {
            warmup: 200,
            samples: 200,
        },
        chains: 2,
        seed: 7,
        gq: false,
        data: entry.dataset(1),
        source: entry.source.to_string(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::start(ServeConfig::default())?;
    println!("serving on {}", server.addr());

    // Two tenants on separate connections, both asking for the same two
    // models. The first request per model pays compile + resolve + lower;
    // every later request binds a session straight from the cache.
    let mut tenants = [
        Client::connect(server.addr())?,
        Client::connect(server.addr())?,
    ];
    for name in ["coin", "eight_schools_centered"] {
        let entry = model_zoo::find(name).expect("corpus model");
        let request = request_for(&entry);
        for (t, client) in tenants.iter_mut().enumerate() {
            let start = Instant::now();
            let fit = client.request(&request)?;
            let draws: usize = fit.chains.iter().map(|c| c.draws.len()).sum();
            println!(
                "tenant {t} <- {name:<24} {draws:>4} draws over {} chains in {:>6.1} ms",
                fit.chains.len(),
                start.elapsed().as_secs_f64() * 1e3
            );
        }
    }

    let stats = server.cache().stats();
    println!(
        "cache: {} model misses (compiled), {} hits (zero compile/resolve/lower work)",
        stats.model_misses, stats.model_hits
    );
    assert_eq!(stats.model_misses, 2, "one compile per distinct model");
    assert!(stats.model_hits >= 2, "repeat tenants must hit the cache");
    server.shutdown();
    Ok(())
}
