//! The bundled model corpus.
//!
//! Each [`ModelEntry`] carries the Stan source, a synthetic data generator,
//! and metadata about how the paper's evaluation treats the model (expected
//! compile-time or runtime failures mirror the ✗ rows of Tables 2–4).

use gprob::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::{bind, covariates, linear_response, logit_response, DataSet};

/// Why a model is expected not to produce a posterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedFailure {
    /// The frontend or the compiler rejects the model (truncation,
    /// unsupported constrained types, unknown functions).
    Compile,
    /// Compilation succeeds but the runtime lacks a needed feature
    /// (e.g. `_lccdf` functions), as in the paper's missing-stdlib rows.
    Runtime,
}

/// One corpus model.
pub struct ModelEntry {
    /// Model name (mirrors the PosteriorDB / example-models name it is
    /// transcribed from).
    pub name: &'static str,
    /// Stan source text.
    pub source: &'static str,
    /// Synthetic data generator.
    pub data: fn(u64) -> DataSet,
    /// Expected failure mode, if any.
    pub expected_failure: Option<ExpectedFailure>,
    /// Rough relative cost (1 = cheap regression); the harness uses it to
    /// scale iteration counts.
    pub cost: u32,
}

impl ModelEntry {
    /// Generates this model's data set with the given seed.
    pub fn dataset(&self, seed: u64) -> DataSet {
        (self.data)(seed)
    }

    /// Whether the model is expected to run end to end.
    pub fn should_run(&self) -> bool {
        self.expected_failure.is_none()
    }
}

fn no_data(_seed: u64) -> DataSet {
    Vec::new()
}

fn coin_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = logit_response(&mut rng, &[vec![0.0; 20]], 0.8, &[0.0]);
    vec![bind("N", Value::Int(20)), bind("x", Value::IntArray(x))]
}

fn eight_schools_data(_seed: u64) -> DataSet {
    vec![
        bind("J", Value::Int(8)),
        bind(
            "y",
            Value::Vector(vec![28.0, 8.0, -3.0, 7.0, -1.0, 1.0, 18.0, 12.0]),
        ),
        bind(
            "sigma",
            Value::Vector(vec![15.0, 10.0, 16.0, 11.0, 9.0, 11.0, 10.0, 18.0]),
        ),
    ]
}

fn regression_1cov(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 60;
    let x = covariates(&mut rng, n, 0.0, 1.0);
    let y = linear_response(&mut rng, std::slice::from_ref(&x), 1.5, &[2.0], 1.0);
    vec![
        bind("N", Value::Int(n as i64)),
        bind("x", Value::Vector(x)),
        bind("y", Value::Vector(y)),
    ]
}

fn regression_2cov(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 60;
    let x1 = covariates(&mut rng, n, 0.0, 1.0);
    let x2 = covariates(&mut rng, n, 0.0, 1.0);
    let y = linear_response(&mut rng, &[x1.clone(), x2.clone()], 0.5, &[1.0, -0.7], 0.8);
    vec![
        bind("N", Value::Int(n as i64)),
        bind("x1", Value::Vector(x1)),
        bind("x2", Value::Vector(x2)),
        bind("y", Value::Vector(y)),
    ]
}

fn regression_kcov(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n, k) = (60usize, 3usize);
    let xs: Vec<Vec<f64>> = (0..k).map(|_| covariates(&mut rng, n, 0.0, 1.0)).collect();
    let y = linear_response(&mut rng, &xs, 0.3, &[1.0, -0.5, 0.25], 0.7);
    let x_matrix = Value::Array(
        (0..n)
            .map(|i| Value::Vector(xs.iter().map(|col| col[i]).collect()))
            .collect(),
    );
    vec![
        bind("N", Value::Int(n as i64)),
        bind("K", Value::Int(k as i64)),
        bind("x", x_matrix),
        bind("y", Value::Vector(y)),
    ]
}

fn logistic_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 80;
    let x1 = covariates(&mut rng, n, 0.0, 1.0);
    let x2 = covariates(&mut rng, n, 0.0, 1.0);
    let y = logit_response(&mut rng, &[x1.clone(), x2.clone()], -0.3, &[1.2, -0.8]);
    vec![
        bind("N", Value::Int(n as i64)),
        bind("x1", Value::Vector(x1)),
        bind("x2", Value::Vector(x2)),
        bind("y", Value::IntArray(y)),
    ]
}

fn timeseries_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 80usize;
    let mut y = vec![0.0f64; n];
    for t in 2..n {
        y[t] =
            0.3 + 0.5 * y[t - 1] - 0.2 * y[t - 2] + probdist::sampling::normal(&mut rng, 0.0, 0.5);
    }
    vec![bind("N", Value::Int(n as i64)), bind("y", Value::Vector(y))]
}

fn grouped_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let (j, n) = (8usize, 10usize);
    let mut y = Vec::with_capacity(j);
    for g in 0..j {
        let mu_g = probdist::sampling::normal(&mut rng, 1.0 + g as f64 * 0.2, 0.5);
        y.push(Value::Vector(
            (0..n)
                .map(|_| probdist::sampling::normal(&mut rng, mu_g, 1.0))
                .collect(),
        ));
    }
    vec![
        bind("J", Value::Int(j as i64)),
        bind("N", Value::Int(n as i64)),
        bind("y", Value::Array(y)),
    ]
}

fn mixture_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 60usize;
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let mu = if i % 3 == 0 { 3.0 } else { -1.0 };
            probdist::sampling::normal(&mut rng, mu, 0.7)
        })
        .collect();
    vec![bind("N", Value::Int(n as i64)), bind("y", Value::Vector(y))]
}

fn binomial_trials_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 40usize;
    let p_true = 0.3;
    let trials: Vec<i64> = (0..n)
        .map(|_| 5 + (probdist::sampling::gamma(&mut rng, 4.0, 0.5).round() as i64).clamp(0, 20))
        .collect();
    let y: Vec<i64> = trials
        .iter()
        .map(|&t| probdist::sampling::binomial(&mut rng, t, p_true))
        .collect();
    vec![
        bind("N", Value::Int(n as i64)),
        bind("n", Value::IntArray(trials)),
        bind("y", Value::IntArray(y)),
    ]
}

fn sum_to_zero_data(seed: u64) -> DataSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 12usize;
    let phi_true: Vec<f64> = covariates(&mut rng, n, 0.0, 1.0);
    let y: Vec<f64> = phi_true
        .iter()
        .map(|&p| probdist::sampling::normal(&mut rng, p, 0.5))
        .collect();
    vec![bind("N", Value::Int(n as i64)), bind("y", Value::Vector(y))]
}

/// The corpus: name, source, data generator, expectation.
pub fn corpus() -> Vec<ModelEntry> {
    vec![
        ModelEntry {
            name: "coin",
            source: r#"
                data { int N; int<lower=0,upper=1> x[N]; }
                parameters { real<lower=0,upper=1> z; }
                model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
                generated quantities {
                  vector[N] log_lik;
                  int x_rep[N];
                  for (i in 1:N) log_lik[i] = bernoulli_lpmf(x[i] | z);
                  for (i in 1:N) x_rep[i] = bernoulli_rng(z);
                }
            "#,
            data: coin_data,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "eight_schools_centered",
            source: r#"
                data { int J; real y[J]; real<lower=0> sigma[J]; }
                parameters { real mu; real<lower=0> tau; real theta[J]; }
                model {
                  mu ~ normal(0, 5);
                  tau ~ cauchy(0, 5);
                  theta ~ normal(mu, tau);
                  y ~ normal(theta, sigma);
                }
                generated quantities {
                  vector[J] log_lik;
                  for (j in 1:J) log_lik[j] = normal_lpdf(y[j] | theta[j], sigma[j]);
                }
            "#,
            data: eight_schools_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "eight_schools_noncentered",
            source: r#"
                data { int J; real y[J]; real<lower=0> sigma[J]; }
                parameters { real mu; real<lower=0> tau; real theta_trans[J]; }
                transformed parameters {
                  real theta[J];
                  for (j in 1:J) theta[j] = theta_trans[j] * tau + mu;
                }
                model {
                  mu ~ normal(0, 5);
                  tau ~ cauchy(0, 5);
                  theta_trans ~ normal(0, 1);
                  y ~ normal(theta, sigma);
                }
                generated quantities {
                  vector[J] log_lik;
                  for (j in 1:J) log_lik[j] = normal_lpdf(y[j] | theta[j], sigma[j]);
                }
            "#,
            data: eight_schools_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "kidscore_momhs",
            source: r#"
                data { int N; real x[N]; real y[N]; }
                parameters { real alpha; real beta; real<lower=0> sigma; }
                model {
                  alpha ~ normal(0, 10);
                  beta ~ normal(0, 10);
                  sigma ~ cauchy(0, 5);
                  for (i in 1:N) y[i] ~ normal(alpha + beta * x[i], sigma);
                }
                generated quantities {
                  vector[N] log_lik;
                  vector[N] y_rep;
                  for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha + beta * x[i], sigma);
                  for (i in 1:N) y_rep[i] = normal_rng(alpha + beta * x[i], sigma);
                }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "kidscore_momiq",
            source: r#"
                data { int N; real x[N]; real y[N]; }
                parameters { real alpha; real beta; real<lower=0> sigma; }
                model {
                  y ~ normal(alpha + beta * to_vector(x), sigma);
                }
                generated quantities {
                  vector[N] log_lik;
                  for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha + beta * x[i], sigma);
                }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "kidscore_momhsiq",
            source: r#"
                data { int N; real x1[N]; real x2[N]; real y[N]; }
                parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
                model {
                  y ~ normal(alpha + b1 * to_vector(x1) + b2 * to_vector(x2), sigma);
                }
            "#,
            data: regression_2cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "kidscore_interaction",
            source: r#"
                data { int N; real x1[N]; real x2[N]; real y[N]; }
                parameters { real alpha; real b1; real b2; real b3; real<lower=0> sigma; }
                model {
                  vector[N] inter;
                  inter = to_vector(x1) .* to_vector(x2);
                  y ~ normal(alpha + b1 * to_vector(x1) + b2 * to_vector(x2) + b3 * inter, sigma);
                }
            "#,
            data: regression_2cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "kidscore_mom_work",
            source: r#"
                data { int N; real x1[N]; real x2[N]; real y[N]; }
                parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
                model {
                  alpha ~ normal(0, 5);
                  b1 ~ normal(0, 5);
                  b2 ~ normal(0, 5);
                  sigma ~ lognormal(0, 1);
                  y ~ normal(alpha + b1 * to_vector(x1) + b2 * to_vector(x2), sigma);
                }
                generated quantities {
                  vector[N] log_lik;
                  vector[N] y_rep;
                  for (i in 1:N) log_lik[i] = normal_lpdf(y[i] | alpha + b1 * x1[i] + b2 * x2[i], sigma);
                  for (i in 1:N) y_rep[i] = normal_rng(alpha + b1 * x1[i] + b2 * x2[i], sigma);
                }
            "#,
            data: regression_2cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "earn_height",
            source: r#"
                data { int N; real x[N]; real y[N]; }
                parameters { real alpha; real beta; real<lower=0> sigma; }
                model { y ~ normal(alpha + beta * to_vector(x), sigma); }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "logearn_height",
            source: r#"
                data { int N; real x[N]; real y[N]; }
                transformed data { real log_y[N]; for (i in 1:N) log_y[i] = log(fabs(y[i]) + 1); }
                parameters { real alpha; real beta; real<lower=0> sigma; }
                model { log_y ~ normal(alpha + beta * to_vector(x), sigma); }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "logearn_height_male",
            source: r#"
                data { int N; real x1[N]; real x2[N]; real y[N]; }
                transformed data { real log_y[N]; for (i in 1:N) log_y[i] = log(fabs(y[i]) + 1); }
                parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
                model { log_y ~ normal(alpha + b1 * to_vector(x1) + b2 * to_vector(x2), sigma); }
            "#,
            data: regression_2cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "logearn_logheight_male",
            source: r#"
                data { int N; real x1[N]; real x2[N]; real y[N]; }
                transformed data {
                  real log_y[N]; real log_x1[N];
                  for (i in 1:N) log_y[i] = log(fabs(y[i]) + 1);
                  for (i in 1:N) log_x1[i] = log(fabs(x1[i]) + 1);
                }
                parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
                model { log_y ~ normal(alpha + b1 * to_vector(log_x1) + b2 * to_vector(x2), sigma); }
            "#,
            data: regression_2cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "mesquite",
            source: r#"
                data { int N; int K; matrix[N, K] x; real y[N]; }
                parameters { real alpha; vector[K] beta; real<lower=0> sigma; }
                model { y ~ normal(alpha + x * beta, sigma); }
            "#,
            data: regression_kcov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "logmesquite_logvas",
            source: r#"
                data { int N; int K; matrix[N, K] x; real y[N]; }
                transformed data { real log_y[N]; for (i in 1:N) log_y[i] = log(fabs(y[i]) + 1); }
                parameters { real alpha; vector[K] beta; real<lower=0> sigma; }
                model {
                  alpha ~ normal(0, 10);
                  beta ~ normal(0, 10);
                  sigma ~ lognormal(0, 1);
                  log_y ~ normal(alpha + x * beta, sigma);
                }
            "#,
            data: regression_kcov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "nes_logit",
            source: r#"
                data { int N; real x1[N]; real x2[N]; int<lower=0,upper=1> y[N]; }
                parameters { real alpha; real b1; real b2; }
                model {
                  for (i in 1:N)
                    y[i] ~ bernoulli_logit(alpha + b1 * x1[i] + b2 * x2[i]);
                }
            "#,
            data: logistic_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "kilpisjarvi",
            source: r#"
                data { int N; real x[N]; real y[N]; }
                parameters { real alpha; real beta; real<lower=0> sigma; }
                model {
                  alpha ~ normal(0, 100);
                  beta ~ normal(0, 10);
                  sigma ~ lognormal(0, 2);
                  y ~ normal(alpha + beta * to_vector(x), sigma);
                }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "blr",
            source: r#"
                data { int N; int K; matrix[N, K] x; real y[N]; }
                parameters { vector[K] beta; real<lower=0> sigma; }
                model {
                  beta ~ normal(0, 10);
                  sigma ~ lognormal(0, 1);
                  y ~ normal(x * beta, sigma);
                }
            "#,
            data: regression_kcov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "arK",
            source: r#"
                data { int N; real y[N]; }
                parameters { real alpha; real b1; real b2; real<lower=0> sigma; }
                model {
                  alpha ~ normal(0, 10);
                  b1 ~ normal(0, 2);
                  b2 ~ normal(0, 2);
                  sigma ~ cauchy(0, 2.5);
                  for (t in 3:N)
                    y[t] ~ normal(alpha + b1 * y[t - 1] + b2 * y[t - 2], sigma);
                }
            "#,
            data: timeseries_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "arma11",
            source: r#"
                data { int N; real y[N]; }
                parameters { real mu; real phi; real theta; real<lower=0> sigma; }
                model {
                  real err;
                  mu ~ normal(0, 10);
                  phi ~ normal(0, 2);
                  theta ~ normal(0, 2);
                  sigma ~ cauchy(0, 2.5);
                  err = y[1] - mu + phi * mu;
                  err ~ normal(0, sigma);
                  for (t in 2:N) {
                    err = y[t] - (mu + phi * y[t - 1] + theta * err);
                    err ~ normal(0, sigma);
                  }
                }
            "#,
            data: timeseries_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "garch11",
            source: r#"
                data { int N; real y[N]; real<lower=0> sigma1; }
                parameters {
                  real mu;
                  real<lower=0> alpha0;
                  real<lower=0, upper=1> alpha1;
                  real<lower=0, upper=1> beta1;
                }
                model {
                  real sigma_t;
                  sigma_t = sigma1;
                  for (t in 2:N) {
                    sigma_t = sqrt(alpha0 + alpha1 * square(y[t - 1] - mu) + beta1 * square(sigma_t));
                    y[t] ~ normal(mu, sigma_t);
                  }
                }
            "#,
            data: |seed| {
                let mut d = timeseries_data(seed);
                d.push(bind("sigma1", Value::Real(0.5)));
                d
            },
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "low_dim_gauss_mix",
            source: r#"
                data { int N; real y[N]; }
                parameters {
                  real mu1; real mu2;
                  real<lower=0> sigma1; real<lower=0> sigma2;
                  real<lower=0, upper=1> theta;
                }
                model {
                  mu1 ~ normal(0, 2);
                  mu2 ~ normal(3, 2);
                  sigma1 ~ lognormal(0, 1);
                  sigma2 ~ lognormal(0, 1);
                  theta ~ beta(2, 2);
                  for (i in 1:N)
                    target += log_mix(theta,
                                      normal_lpdf(y[i] | mu1, sigma1),
                                      normal_lpdf(y[i] | mu2, sigma2));
                }
            "#,
            data: mixture_data,
            expected_failure: None,
            cost: 3,
        },
        ModelEntry {
            name: "radon_hierarchical",
            source: r#"
                data { int J; int N; real y[J, N]; }
                parameters { real mu0; real<lower=0> tau; real mu[J]; real<lower=0> sigma; }
                model {
                  mu0 ~ normal(0, 5);
                  tau ~ lognormal(0, 1);
                  sigma ~ lognormal(0, 1);
                  for (j in 1:J) {
                    mu[j] ~ normal(mu0, tau);
                    for (i in 1:N) y[j, i] ~ normal(mu[j], sigma);
                  }
                }
            "#,
            data: grouped_data,
            expected_failure: None,
            cost: 3,
        },
        ModelEntry {
            name: "seeds_binomial",
            source: r#"
                data { int N; int n[N]; int y[N]; }
                parameters { real<lower=0,upper=1> p; }
                model {
                  p ~ beta(1, 1);
                  for (i in 1:N) y[i] ~ binomial(n[i], p);
                }
                generated quantities {
                  vector[N] log_lik;
                  int y_rep[N];
                  for (i in 1:N) log_lik[i] = binomial_lpmf(y[i] | n[i], p);
                  for (i in 1:N) y_rep[i] = binomial_rng(n[i], p);
                }
            "#,
            data: binomial_trials_data,
            expected_failure: None,
            cost: 2,
        },
        // --- models exercising the non-generative features of Table 1 ---
        ModelEntry {
            name: "sum_to_zero_left_expr",
            source: r#"
                data { int N; real y[N]; }
                parameters { real phi[N]; }
                model {
                  phi ~ normal(0, 1);
                  sum(phi) ~ normal(0, 0.001 * N);
                  y ~ normal(phi, 0.5);
                }
            "#,
            data: sum_to_zero_data,
            expected_failure: None,
            cost: 2,
        },
        ModelEntry {
            name: "multiple_updates",
            source: r#"
                data { int N; real y[N]; }
                parameters { real phi; }
                model {
                  phi ~ normal(0, 1);
                  phi ~ normal(0, 2);
                  y ~ normal(phi, 1);
                }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        ModelEntry {
            name: "implicit_prior",
            source: r#"
                data { int N; real y[N]; }
                parameters { real alpha0; real<lower=0> sigma; }
                model {
                  sigma ~ lognormal(0, 1);
                  y ~ normal(alpha0, sigma);
                }
            "#,
            data: regression_1cov,
            expected_failure: None,
            cost: 1,
        },
        // --- models expected to fail, mirroring the paper's ✗ rows ---
        ModelEntry {
            name: "truncated_normal",
            source: r#"
                data { int N; real y[N]; }
                parameters { real mu; real<lower=0> sigma; }
                model {
                  for (i in 1:N) y[i] ~ normal(mu, sigma) T[0, ];
                }
            "#,
            data: regression_1cov,
            expected_failure: Some(ExpectedFailure::Compile),
            cost: 1,
        },
        ModelEntry {
            name: "ordered_mixture",
            source: r#"
                data { int N; real y[N]; }
                parameters { ordered[2] mu; real<lower=0> sigma; }
                model { y ~ normal(mu[1], sigma); }
            "#,
            data: mixture_data,
            expected_failure: Some(ExpectedFailure::Compile),
            cost: 1,
        },
        ModelEntry {
            name: "censored_lccdf",
            source: r#"
                data { int N; real y[N]; }
                parameters { real mu; real<lower=0> sigma; }
                model {
                  y ~ normal(mu, sigma);
                  target += normal_lccdf(2.5 | mu, sigma);
                }
            "#,
            data: regression_1cov,
            expected_failure: Some(ExpectedFailure::Runtime),
            cost: 1,
        },
        // --- DeepStan extension models (Section 5) ---
        ModelEntry {
            name: "multimodal_guide",
            source: r#"
                parameters { real cluster; real theta; }
                model {
                  real mu;
                  cluster ~ normal(0, 1);
                  if (cluster > 0) mu = 20;
                  else mu = 0;
                  theta ~ normal(mu, 1);
                }
                guide parameters {
                  real m1; real m2;
                  real<lower=0> s1; real<lower=0> s2;
                }
                guide {
                  cluster ~ normal(0, 1);
                  if (cluster > 0) theta ~ normal(m1, s1);
                  else theta ~ normal(m2, s2);
                }
            "#,
            data: no_data,
            expected_failure: None,
            cost: 1,
        },
    ]
}

/// Looks a model up by name.
pub fn find(name: &str) -> Option<ModelEntry> {
    corpus().into_iter().find(|m| m.name == name)
}

/// The VAE program of Figure 8, flattened to a pixel vector (the synthetic
/// digits stand-in for MNIST).
pub const VAE_SOURCE: &str = r#"
    networks {
      vector decoder(real[] z);
      vector encoder(int[] x);
    }
    data { int nz; int npix; int<lower=0, upper=1> x[npix]; }
    parameters { real z[nz]; }
    model {
      vector[npix] mu;
      z ~ normal(0, 1);
      mu = inv_logit(decoder(z));
      x ~ bernoulli(mu);
    }
    guide {
      vector[2 * nz] encoded;
      vector[nz] mu_z;
      vector[nz] sigma_z;
      encoded = encoder(x);
      mu_z = encoded[1:nz];
      sigma_z = exp(encoded[nz + 1:2 * nz]);
      z ~ normal(mu_z, sigma_z);
    }
"#;

/// The Bayesian multi-layer perceptron of Figure 9, classifying one image at
/// a time (the batch loop lives in the harness).
pub const BAYESIAN_MLP_SOURCE: &str = r#"
    networks { vector mlp(real[] img); }
    data {
      int batch_size; int nx; int nh; int ny;
      real<lower=0, upper=1> imgs[batch_size, nx];
      int<lower=1, upper=10> labels[batch_size];
    }
    parameters {
      real mlp.l1.weight[nh, nx]; real mlp.l1.bias[nh];
      real mlp.l2.weight[ny, nh]; real mlp.l2.bias[ny];
    }
    model {
      mlp.l1.weight ~ normal(0, 1);
      mlp.l1.bias ~ normal(0, 1);
      mlp.l2.weight ~ normal(0, 1);
      mlp.l2.bias ~ normal(0, 1);
      for (i in 1:batch_size)
        labels[i] ~ categorical_logit(mlp(imgs[i]));
    }
    guide parameters {
      real w1_mu[nh, nx]; real w1_sigma[nh, nx];
      real b1_mu[nh]; real b1_sigma[nh];
      real w2_mu[ny, nh]; real w2_sigma[ny, nh];
      real b2_mu[ny]; real b2_sigma[ny];
    }
    guide {
      mlp.l1.weight ~ normal(w1_mu, exp(w1_sigma));
      mlp.l1.bias ~ normal(b1_mu, exp(b1_sigma));
      mlp.l2.weight ~ normal(w2_mu, exp(w2_sigma));
      mlp.l2.bias ~ normal(b2_mu, exp(b2_sigma));
    }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_reasonably_large_and_unique() {
        let c = corpus();
        assert!(c.len() >= 25, "corpus has {} models", c.len());
        let mut names: Vec<_> = c.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len(), "duplicate model names");
    }

    #[test]
    fn datasets_are_generated_deterministically() {
        let m = find("kidscore_momhs").unwrap();
        let a = m.dataset(7);
        let b = m.dataset(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn expected_failures_are_marked() {
        assert!(find("truncated_normal").unwrap().expected_failure.is_some());
        assert!(find("coin").unwrap().should_run());
        assert!(find("nosuch").is_none());
    }

    #[test]
    fn eight_schools_uses_the_classic_data() {
        let d = find("eight_schools_centered").unwrap().dataset(0);
        let y = &d.iter().find(|(k, _)| k == "y").unwrap().1;
        assert_eq!(y.len(), 8);
    }
}
