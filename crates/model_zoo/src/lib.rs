//! `model_zoo` — the bundled Stan model corpus and synthetic data sets.
//!
//! The paper evaluates on two public suites: the `stan-dev/example-models`
//! repository (531 models, used for the Table 1 feature census and the
//! Table 2 compile/run census) and PosteriorDB (models + data + reference
//! posteriors, used for the accuracy and speed comparisons of Tables 3–5).
//! Neither data set ships with this reproduction, so this crate provides the
//! substitute: a corpus of Stan programs transcribed from the same public
//! model families (eight schools, the kidscore and earnings regressions,
//! mesquite, NES logistic regression, AR/ARMA/GARCH time series, HMMs,
//! mixtures, ...) with synthetic data drawn from each model's own generative
//! process, plus the DeepStan programs of Section 5 (multimodal guide, VAE,
//! Bayesian MLP) and a synthetic image data set standing in for MNIST.
//!
//! Reference posteriors are not stored: following the paper's methodology,
//! the benchmark harness computes them by running the baseline Stan-semantics
//! interpreter (`stan_ref`) with NUTS, and compares every backend against
//! that reference with the 0.3·stddev criterion.

pub mod corpus;
pub mod data;

pub use corpus::{corpus, find, ModelEntry};
pub use corpus::{ExpectedFailure, BAYESIAN_MLP_SOURCE, VAE_SOURCE};
pub use data::synthetic_digits;
