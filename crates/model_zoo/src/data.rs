//! Synthetic data generation.
//!
//! Every data set is drawn from the corresponding model's own generative
//! process (with fixed "true" parameter values), so posterior inference has a
//! well-defined target to recover. The synthetic digits data set stands in
//! for MNIST in the VAE / Bayesian-MLP experiments (Section 6.2): ten class
//! prototypes on an 8×8 binary grid, perturbed with Bernoulli pixel noise.

use gprob::value::Value;
use probdist::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named data binding.
pub type DataSet = Vec<(String, Value<f64>)>;

/// Helper: builds a binding.
pub fn bind(name: &str, value: Value<f64>) -> (String, Value<f64>) {
    (name.to_string(), value)
}

/// Draws `n` standard-normal covariate values.
pub fn covariates(rng: &mut StdRng, n: usize, loc: f64, scale: f64) -> Vec<f64> {
    (0..n).map(|_| sampling::normal(rng, loc, scale)).collect()
}

/// Linear-regression response `y = alpha + beta' x + eps`.
pub fn linear_response(
    rng: &mut StdRng,
    xs: &[Vec<f64>],
    alpha: f64,
    betas: &[f64],
    sigma: f64,
) -> Vec<f64> {
    let n = xs[0].len();
    (0..n)
        .map(|i| {
            let mut mu = alpha;
            for (b, x) in betas.iter().zip(xs) {
                mu += b * x[i];
            }
            sampling::normal(rng, mu, sigma)
        })
        .collect()
}

/// Bernoulli-logit response.
pub fn logit_response(rng: &mut StdRng, xs: &[Vec<f64>], alpha: f64, betas: &[f64]) -> Vec<i64> {
    let n = xs[0].len();
    (0..n)
        .map(|i| {
            let mut eta = alpha;
            for (b, x) in betas.iter().zip(xs) {
                eta += b * x[i];
            }
            let p = 1.0 / (1.0 + (-eta).exp());
            (rng.gen::<f64>() < p) as i64
        })
        .collect()
}

/// The synthetic stand-in for MNIST: `n` binary images of `side × side`
/// pixels, with labels `1..=10`. Each digit class has a fixed prototype
/// pattern; pixels are flipped with probability `noise`.
pub fn synthetic_digits(n: usize, side: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let npix = side * side;
    // Ten deterministic prototypes: class k lights up a distinct band and a
    // diagonal, which is enough structure for clustering / classification.
    let prototypes: Vec<Vec<f64>> = (0..10)
        .map(|k| {
            (0..npix)
                .map(|p| {
                    let (r, c) = (p / side, p % side);
                    let band = r == (k * side) / 10;
                    let diag = (r + c) % 10 == k;
                    let col = c == (k * side) / 10;
                    if band || diag || col {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let k = i % 10;
        let img: Vec<f64> = prototypes[k]
            .iter()
            .map(|&v| if rng.gen::<f64>() < noise { 1.0 - v } else { v })
            .collect();
        images.push(img);
        labels.push((k + 1) as i64);
    }
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_have_the_requested_shape_and_labels() {
        let (images, labels) = synthetic_digits(40, 8, 0.05, 1);
        assert_eq!(images.len(), 40);
        assert_eq!(images[0].len(), 64);
        assert!(labels.iter().all(|&l| (1..=10).contains(&l)));
        assert!(images.iter().flatten().all(|&p| p == 0.0 || p == 1.0));
        // Noise is small, so images of the same class are more alike than
        // images of different classes.
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).filter(|(x, y)| x != y).count() as f64
        };
        let same = dist(&images[0], &images[10]);
        let diff = dist(&images[0], &images[5]);
        assert!(same < diff, "{same} vs {diff}");
    }

    #[test]
    fn regression_helpers_produce_consistent_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = covariates(&mut rng, 30, 0.0, 1.0);
        let y = linear_response(&mut rng, std::slice::from_ref(&x), 1.0, &[2.0], 0.5);
        assert_eq!(y.len(), 30);
        let z = logit_response(&mut rng, &[x], -0.5, &[1.5]);
        assert!(z.iter().all(|&v| v == 0 || v == 1));
    }
}
