//! Stochastic variational inference with explicit DeepStan guides
//! (Section 5.1) and jointly trained neural networks (Sections 5.2–5.3).
//!
//! The ELBO is the standard reparameterized estimate
//! `E_q[ log p(x, z) − log q(z; φ) ]`: the compiled guide is executed in
//! reparameterized-sampling mode (gradients flow from the guide parameters φ
//! into the sampled `z`), its score is `log q`, and the compiled model is
//! scored against the resulting trace to obtain `log p`. Learnable network
//! parameters (e.g. the VAE encoder/decoder weights) are appended to φ and
//! optimized jointly, exactly as Pyro's `SVI` does.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gprob::eval::EvalCtx;
use gprob::interp::{Interp, Mode};
use gprob::value::{lift_env, Env, Value};
use inference::cancel::CancelToken;
use inference::svi::{svi_optimize_draws_cancellable, AdamConfig};
use minidiff::{grad, tape, Var};
use probdist::Constraint;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::{env_of, CompiledProgram, InferenceError, Posterior};
use crate::networks::NetworkRegistry;
use crate::nn::MlpSpec;

/// SVI settings.
#[derive(Debug, Clone)]
pub struct SviSettings {
    /// Number of Adam steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cooperative cancellation, polled once per Adam step. The default
    /// token never cancels; a fired token stops the optimization with the
    /// parameters from the last completed step.
    pub cancel: CancelToken,
}

impl Default for SviSettings {
    fn default() -> Self {
        SviSettings {
            steps: 2000,
            lr: 0.05,
            seed: 0,
            cancel: CancelToken::new(),
        }
    }
}

/// One learnable scalar slot in the flat φ vector.
#[derive(Debug, Clone)]
struct PhiSlot {
    name: String,
    size: usize,
    offset: usize,
    constraint: Constraint,
    /// True when the slot belongs to a guide parameter (inserted into the
    /// guide environment); false for network weights (pushed into the
    /// registry).
    is_guide_param: bool,
}

/// The result of fitting a guide with SVI.
#[derive(Debug, Clone)]
pub struct VariationalFit {
    /// Names of the guide parameters, in declaration order.
    pub guide_param_names: Vec<String>,
    /// Fitted (constrained) guide parameter values, flattened per name.
    pub guide_params: HashMap<String, Vec<f64>>,
    /// Fitted learnable network parameters (VAE encoder/decoder weights).
    pub network_params: HashMap<String, Vec<f64>>,
    /// Smoothed ELBO trace.
    pub elbo_trace: Vec<f64>,
    /// True when the optimization stopped early because
    /// [`SviSettings::cancel`] fired; the fitted values then reflect the
    /// last completed step.
    pub cancelled: bool,
}

impl CompiledProgram {
    /// Fits the program's explicit guide with SVI.
    ///
    /// `networks` lists the architectures of every network declared in the
    /// program's `networks` block (empty when the program uses none).
    ///
    /// # Errors
    /// Fails if the program has no guide, if a network declaration has no
    /// registered architecture, or if evaluation fails.
    pub fn svi(
        &self,
        data: &[(&str, Value<f64>)],
        networks: &[MlpSpec],
        settings: &SviSettings,
    ) -> Result<VariationalFit, InferenceError> {
        let program = &self.comprehensive;
        let guide_body = program.guide_body.clone().ok_or_else(|| {
            InferenceError::Usage("this program has no guide block; SVI needs one".to_string())
        })?;
        for decl in &program.networks {
            if !networks.iter().any(|s| s.name == decl.name) {
                return Err(InferenceError::Usage(format!(
                    "network `{}` is declared but no architecture was supplied",
                    decl.name
                )));
            }
        }

        let data_env: Env<f64> = env_of(data);
        // Which network parameters are lifted (declared in `parameters`)?
        let lifted: Vec<String> = program.params.iter().map(|p| p.name.clone()).collect();

        // Lay out the flat φ vector: guide parameters first, then learnable
        // network parameters.
        let ctx_f64: EvalCtx<f64> = EvalCtx::empty();
        let mut slots: Vec<PhiSlot> = Vec::new();
        let mut offset = 0usize;
        for d in &program.guide_params {
            let mut size = 1usize;
            for dim in &d.dims {
                size *= gprob::eval::eval_expr(dim, &data_env, &ctx_f64)?
                    .as_int()?
                    .max(0) as usize;
            }
            if let stan_frontend::ast::BaseType::Vector(n) = &d.ty {
                size *= gprob::eval::eval_expr(n, &data_env, &ctx_f64)?
                    .as_int()?
                    .max(0) as usize;
            }
            let lower = match &d.constraint.lower {
                Some(e) => Some(gprob::eval::eval_expr(e, &data_env, &ctx_f64)?.as_real()?),
                None => None,
            };
            let upper = match &d.constraint.upper {
                Some(e) => Some(gprob::eval::eval_expr(e, &data_env, &ctx_f64)?.as_real()?),
                None => None,
            };
            slots.push(PhiSlot {
                name: d.name.clone(),
                size,
                offset,
                constraint: Constraint::from_bounds(lower, upper),
                is_guide_param: true,
            });
            offset += size;
        }
        for spec in networks {
            for (pname, shape) in spec.parameter_shapes() {
                if lifted.contains(&pname) {
                    continue; // Bayesian: sampled by the guide, not learned directly.
                }
                let size: usize = shape.iter().product();
                slots.push(PhiSlot {
                    name: pname,
                    size,
                    offset,
                    constraint: Constraint::None,
                    is_guide_param: false,
                });
                offset += size;
            }
        }

        // Initialization: zeros for guide parameters, small random values for
        // network weights.
        let mut init = vec![0.0; offset];
        let mut init_rng = StdRng::seed_from_u64(settings.seed.wrapping_add(17));
        for slot in &slots {
            if !slot.is_guide_param {
                let fan = (slot.size as f64).sqrt().max(1.0);
                for i in 0..slot.size {
                    init[slot.offset + i] =
                        probdist::sampling::standard_normal(&mut init_rng) / fan;
                }
            }
        }

        let model_body = program.body.clone();
        let functions = program.functions.clone();
        let fn_table = gprob::eval::FnTable::new(&functions);
        let specs: Vec<MlpSpec> = networks.to_vec();
        let guide_params_meta = program.guide_params.clone();

        let objective = |phi: &[f64], rng: &mut StdRng| -> (f64, Vec<f64>) {
            tape::reset();
            let vars: Vec<Var> = phi.iter().map(|&x| Var::new(x)).collect();

            // Split φ into guide-parameter bindings and network weights.
            let mut registry: NetworkRegistry<Var> = NetworkRegistry::new();
            for spec in &specs {
                registry.register(spec.clone());
            }
            let mut guide_env: Env<Var> = lift_env(&data_env);
            for slot in &slots {
                let values: Vec<Var> = (0..slot.size)
                    .map(|i| slot.constraint.to_constrained(vars[slot.offset + i]))
                    .collect();
                if slot.is_guide_param {
                    let value = if slot.size == 1 && !slot.name.contains('.') {
                        Value::Real(values[0])
                    } else {
                        Value::Vector(values.clone())
                    };
                    guide_env.insert(slot.name.clone(), value);
                } else {
                    registry.set_learnable(slot.name.clone(), values);
                }
            }

            let ctx = EvalCtx::with_table(&functions, &fn_table).externals(&registry);

            // 1. Run the guide with reparameterized sampling: score = log q.
            let seed: u64 = rand::Rng::gen(rng);
            let guide_rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
            let mut guide_interp = Interp::new(&ctx, Mode::Reparam(guide_rng));
            let mut genv = guide_env.clone();
            let guide_run = match guide_interp.run(&guide_body, &mut genv) {
                Ok(r) => r,
                Err(_) => return (f64::NEG_INFINITY, vec![0.0; phi.len()]),
            };
            let log_q = guide_run.score;

            // 2. Score the model against the guide's trace: score = log p.
            let mut model_env: Env<Var> = lift_env(&data_env);
            let mut model_interp = Interp::new(&ctx, Mode::Trace(&guide_run.trace));
            let log_p = match model_interp.run(&model_body, &mut model_env) {
                Ok(r) => r.score,
                Err(_) => return (f64::NEG_INFINITY, vec![0.0; phi.len()]),
            };

            let elbo = log_p - log_q;
            if !elbo.value().is_finite() {
                return (elbo.value(), vec![0.0; phi.len()]);
            }
            let g = grad(elbo, &vars);
            (elbo.value(), g)
        };

        let mut multi_draw = |phi: &[f64], _draws: usize, rng: &mut StdRng| -> (f64, Vec<f64>) {
            objective(phi, rng)
        };
        let result = svi_optimize_draws_cancellable(
            &mut multi_draw,
            init,
            settings.steps,
            1,
            AdamConfig {
                lr: settings.lr,
                ..Default::default()
            },
            settings.seed,
            &settings.cancel,
        );

        // Unpack the optimized φ into named, constrained values.
        let mut guide_params = HashMap::new();
        let mut network_params = HashMap::new();
        for slot in &slots {
            let values: Vec<f64> = (0..slot.size)
                .map(|i| {
                    slot.constraint
                        .to_constrained(result.params[slot.offset + i])
                })
                .collect();
            if slot.is_guide_param {
                guide_params.insert(slot.name.clone(), values);
            } else {
                network_params.insert(slot.name.clone(), values);
            }
        }

        Ok(VariationalFit {
            guide_param_names: guide_params_meta.iter().map(|d| d.name.clone()).collect(),
            guide_params,
            network_params,
            elbo_trace: result.elbo_trace,
            cancelled: result.cancelled,
        })
    }

    /// Draws posterior samples from a fitted guide (the variational
    /// approximation of the model parameters).
    ///
    /// # Errors
    /// Fails if the program has no guide or evaluation fails.
    pub fn sample_guide(
        &self,
        data: &[(&str, Value<f64>)],
        fit: &VariationalFit,
        networks: &[MlpSpec],
        n: usize,
        seed: u64,
    ) -> Result<Posterior, InferenceError> {
        let program = &self.comprehensive;
        let guide_body = program
            .guide_body
            .clone()
            .ok_or_else(|| InferenceError::Usage("this program has no guide block".to_string()))?;
        let data_env: Env<f64> = env_of(data);

        let mut registry: NetworkRegistry<f64> = NetworkRegistry::new();
        for spec in networks {
            registry.register(spec.clone());
        }
        for (name, values) in &fit.network_params {
            registry.set_learnable(name.clone(), values.clone());
        }

        let ctx = EvalCtx::with_functions(&program.functions).externals(&registry);
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));

        // Component names follow the model's parameter layout.
        let gmodel = gprob::GModel::new(program.clone(), data_env.clone())?;
        let names = gmodel.component_names();

        let mut draws = Vec::with_capacity(n);
        for _ in 0..n {
            let mut env: Env<f64> = data_env.clone();
            for (k, v) in &fit.guide_params {
                let value = if v.len() == 1 {
                    Value::Real(v[0])
                } else {
                    Value::Vector(v.clone())
                };
                env.insert(k.clone(), value);
            }
            let mut interp = Interp::new(&ctx, Mode::Prior(rng.clone()));
            let run = interp.run(&guide_body, &mut env)?;
            let mut flat = Vec::new();
            for slot in gmodel.slots() {
                // A site the guide did not sample contributes `slot.size`
                // NaNs so the flat row stays aligned with the names.
                match run.trace.get(&slot.name) {
                    Some(value) => flat.extend(value.as_real_vec()?),
                    None => flat.extend(std::iter::repeat_n(f64::NAN, slot.size)),
                }
            }
            draws.push(flat);
        }
        Ok(Posterior::from_constrained(names, draws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DeepStan;

    /// The multimodal model and custom guide of Figure 10.
    const MULTIMODAL: &str = r#"
        parameters { real cluster; real theta; }
        model {
          real mu;
          cluster ~ normal(0, 1);
          if (cluster > 0) mu = 20;
          else mu = 0;
          theta ~ normal(mu, 1);
        }
        guide parameters {
          real m1; real m2;
          real<lower=0> s1; real<lower=0> s2;
        }
        guide {
          cluster ~ normal(0, 1);
          if (cluster > 0) theta ~ normal(m1, s1);
          else theta ~ normal(m2, s2);
        }
    "#;

    #[test]
    fn svi_finds_both_modes_of_the_multimodal_example() {
        let program = DeepStan::compile(MULTIMODAL).unwrap();
        let fit = program
            .svi(
                &[],
                &[],
                &SviSettings {
                    steps: 3000,
                    lr: 0.05,
                    seed: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        let m1 = fit.guide_params["m1"][0];
        let m2 = fit.guide_params["m2"][0];
        // One mean should land near 20, the other near 0 (the guide assigns
        // m1 to the positive-cluster branch, m2 to the negative one).
        let (hi, lo) = if m1 > m2 { (m1, m2) } else { (m2, m1) };
        assert!((hi - 20.0).abs() < 3.0, "hi mode {hi}");
        assert!(lo.abs() < 3.0, "lo mode {lo}");

        // Drawing from the fitted guide produces a bimodal theta sample.
        let posterior = program.sample_guide(&[], &fit, &[], 1000, 7).unwrap();
        let theta = posterior.component("theta").unwrap();
        let near_zero = theta.iter().filter(|&&t| t.abs() < 5.0).count();
        let near_twenty = theta.iter().filter(|&&t| (t - 20.0).abs() < 5.0).count();
        assert!(near_zero > 100, "{near_zero}");
        assert!(near_twenty > 100, "{near_twenty}");
    }

    #[test]
    fn svi_requires_a_guide() {
        let program =
            DeepStan::compile("parameters { real mu; } model { mu ~ normal(0,1); }").unwrap();
        let err = program.svi(&[], &[], &SviSettings::default()).unwrap_err();
        assert!(matches!(err, InferenceError::Usage(_)));
    }

    #[test]
    fn svi_fits_a_conjugate_gaussian_posterior() {
        // y_i ~ N(theta, 1), theta ~ N(0, 1): posterior N(sum(y)/(n+1), 1/(n+1)).
        let src = r#"
            data { int N; real y[N]; }
            parameters { real theta; }
            model { theta ~ normal(0, 1); y ~ normal(theta, 1); }
            guide parameters { real m; real<lower=0> s; }
            guide { theta ~ normal(m, s); }
        "#;
        let program = DeepStan::compile(src).unwrap();
        let y = vec![1.2, 0.8, 1.5, 0.9];
        let data = vec![("N", Value::Int(4)), ("y", Value::Vector(y.clone()))];
        let fit = program
            .svi(
                &data,
                &[],
                &SviSettings {
                    steps: 4000,
                    lr: 0.02,
                    seed: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        let post_mean = y.iter().sum::<f64>() / 5.0;
        let post_sd = (1.0f64 / 5.0).sqrt();
        assert!(
            (fit.guide_params["m"][0] - post_mean).abs() < 0.12,
            "{}",
            fit.guide_params["m"][0]
        );
        assert!(
            (fit.guide_params["s"][0] - post_sd).abs() < 0.2,
            "{}",
            fit.guide_params["s"][0]
        );
        // ELBO improves over training.
        assert!(fit.elbo_trace.last().unwrap() > fit.elbo_trace.first().unwrap());
    }
}
