//! A small dense neural-network library — the PyTorch stand-in of Section 5.
//!
//! Networks are described by an [`MlpSpec`] (a stack of linear layers with
//! element-wise activations). Parameters are *external* to the spec: the
//! forward pass receives a map from parameter names (`"mlp.l1.weight"`,
//! `"mlp.l1.bias"`, ...) to flat value vectors, which is exactly what both
//! use cases need:
//!
//! * **Learnable networks** (VAE encoder/decoder): parameter vectors are the
//!   optimization variables of SVI.
//! * **Lifted / Bayesian networks** (Section 5.3): parameter vectors come
//!   from the model trace, i.e. they are random variables sampled by the
//!   inference algorithm — the `pyro.random_module` behaviour.

use std::collections::HashMap;

use minidiff::Real;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no activation).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Softplus `ln(1 + e^x)`.
    Softplus,
}

impl Activation {
    fn apply<T: Real>(self, x: T) -> T {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max_real(T::from_f64(0.0)),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Softplus => x.softplus(),
        }
    }
}

/// One dense layer: `output = activation(W · input + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Input width.
    pub input: usize,
    /// Output width.
    pub output: usize,
    /// Activation applied to the affine output.
    pub activation: Activation,
}

/// A multi-layer perceptron with named parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSpec {
    /// Network name (the name declared in the DeepStan `networks` block).
    pub name: String,
    /// Layers, applied in order.
    pub layers: Vec<LayerSpec>,
}

impl MlpSpec {
    /// Builds an MLP from layer widths, with the given hidden activation and
    /// an identity output layer.
    pub fn new(name: impl Into<String>, widths: &[usize], hidden: Activation) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| LayerSpec {
                input: w[0],
                output: w[1],
                activation: if i + 2 == widths.len() {
                    Activation::Identity
                } else {
                    hidden
                },
            })
            .collect();
        MlpSpec {
            name: name.into(),
            layers,
        }
    }

    /// Sets the activation of the final layer (e.g. sigmoid for a Bernoulli
    /// decoder).
    pub fn with_output_activation(mut self, act: Activation) -> Self {
        if let Some(last) = self.layers.last_mut() {
            last.activation = act;
        }
        self
    }

    /// Parameter names and shapes in PyTorch convention:
    /// `name.l<k>.weight` of shape `[output, input]` and `name.l<k>.bias` of
    /// shape `[output]`.
    pub fn parameter_shapes(&self) -> Vec<(String, Vec<usize>)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push((
                format!("{}.l{}.weight", self.name, i + 1),
                vec![layer.output, layer.input],
            ));
            out.push((format!("{}.l{}.bias", self.name, i + 1), vec![layer.output]));
        }
        out
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.parameter_shapes()
            .iter()
            .map(|(_, s)| s.iter().product::<usize>())
            .sum()
    }

    /// Forward pass. `params` maps parameter names to flat (row-major) value
    /// vectors; `input` is the flat input vector.
    ///
    /// # Errors
    /// Returns a message if a parameter is missing or has the wrong length.
    pub fn forward<T: Real>(
        &self,
        params: &HashMap<String, Vec<T>>,
        input: &[T],
    ) -> Result<Vec<T>, String> {
        let mut activation: Vec<T> = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            if activation.len() != layer.input {
                return Err(format!(
                    "{}: layer {} expects input width {}, got {}",
                    self.name,
                    i + 1,
                    layer.input,
                    activation.len()
                ));
            }
            let wname = format!("{}.l{}.weight", self.name, i + 1);
            let bname = format!("{}.l{}.bias", self.name, i + 1);
            let w = params
                .get(&wname)
                .ok_or_else(|| format!("missing parameter {wname}"))?;
            let b = params
                .get(&bname)
                .ok_or_else(|| format!("missing parameter {bname}"))?;
            if w.len() != layer.input * layer.output || b.len() != layer.output {
                return Err(format!("parameter shape mismatch for layer {}", i + 1));
            }
            let mut next = Vec::with_capacity(layer.output);
            for o in 0..layer.output {
                let mut acc = b[o];
                let row = &w[o * layer.input..(o + 1) * layer.input];
                for (x, wi) in activation.iter().zip(row) {
                    acc = acc + *x * *wi;
                }
                next.push(layer.activation.apply(acc));
            }
            activation = next;
        }
        Ok(activation)
    }

    /// Glorot-style random initialization of all parameters as flat `f64`
    /// vectors.
    pub fn init_params(&self, rng: &mut impl rand::Rng) -> HashMap<String, Vec<f64>> {
        let mut out = HashMap::new();
        for (name, shape) in self.parameter_shapes() {
            let fan = shape.iter().sum::<usize>().max(1) as f64;
            let scale = (2.0 / fan).sqrt();
            let n: usize = shape.iter().product();
            let values = (0..n)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen();
                    scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            out.insert(name, values);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidiff::{grad, tape, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_params(spec: &MlpSpec) -> HashMap<String, Vec<f64>> {
        // 2-2 identity weight matrix with zero bias.
        let mut p = HashMap::new();
        p.insert(format!("{}.l1.weight", spec.name), vec![1.0, 0.0, 0.0, 1.0]);
        p.insert(format!("{}.l1.bias", spec.name), vec![0.0, 0.0]);
        p
    }

    #[test]
    fn parameter_naming_follows_pytorch_convention() {
        let spec = MlpSpec::new("mlp", &[784, 32, 10], Activation::Relu);
        let shapes = spec.parameter_shapes();
        assert_eq!(shapes[0].0, "mlp.l1.weight");
        assert_eq!(shapes[0].1, vec![32, 784]);
        assert_eq!(shapes[3].0, "mlp.l2.bias");
        assert_eq!(spec.parameter_count(), 784 * 32 + 32 + 32 * 10 + 10);
    }

    #[test]
    fn identity_network_reproduces_its_input() {
        let spec = MlpSpec::new("id", &[2, 2], Activation::Relu);
        let out = spec.forward(&identity_params(&spec), &[0.3, -0.7]).unwrap();
        // Output layer is Identity, so the negative value survives.
        assert_eq!(out, vec![0.3, -0.7]);
    }

    #[test]
    fn activations_are_applied() {
        let mut spec = MlpSpec::new("id", &[2, 2], Activation::Relu);
        spec = spec.with_output_activation(Activation::Relu);
        let out = spec.forward(&identity_params(&spec), &[0.3, -0.7]).unwrap();
        assert_eq!(out, vec![0.3, 0.0]);
        let sig = MlpSpec::new("id", &[2, 2], Activation::Relu)
            .with_output_activation(Activation::Sigmoid);
        let out = sig.forward(&identity_params(&sig), &[0.0, 0.0]).unwrap();
        assert!((out[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_or_misshaped_parameters_error() {
        let spec = MlpSpec::new("m", &[2, 3], Activation::Tanh);
        let err = spec.forward(&HashMap::new(), &[0.0, 0.0]).unwrap_err();
        assert!(err.contains("missing parameter"));
        let err = spec
            .forward(&spec.init_params(&mut StdRng::seed_from_u64(0)), &[0.0])
            .unwrap_err();
        assert!(err.contains("input width"));
    }

    #[test]
    fn gradients_flow_through_the_forward_pass() {
        tape::reset();
        let spec = MlpSpec::new("m", &[1, 1], Activation::Identity);
        let w = Var::new(2.0);
        let b = Var::new(0.5);
        let mut params = HashMap::new();
        params.insert("m.l1.weight".to_string(), vec![w]);
        params.insert("m.l1.bias".to_string(), vec![b]);
        let out = spec.forward(&params, &[Var::constant(3.0)]).unwrap();
        let g = grad(out[0], &[w, b]);
        assert_eq!(out[0].value(), 6.5);
        assert_eq!(g, vec![3.0, 1.0]);
    }

    #[test]
    fn init_params_have_the_right_sizes() {
        let spec = MlpSpec::new("net", &[4, 8, 2], Activation::Tanh);
        let p = spec.init_params(&mut StdRng::seed_from_u64(1));
        assert_eq!(p["net.l1.weight"].len(), 32);
        assert_eq!(p["net.l2.bias"].len(), 2);
        let out = spec.forward(&p, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(out.len(), 2);
    }
}
