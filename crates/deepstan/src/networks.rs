//! Bridging DeepStan `networks { ... }` declarations to executable forward
//! passes.
//!
//! A [`NetworkRegistry`] implements the runtime's [`ExternalFns`] hook: when
//! model or guide code calls a declared network (`decoder(z)`, `mlp(x)`), the
//! registry runs the corresponding [`MlpSpec`] forward pass. Parameters are
//! resolved per call, in this order:
//!
//! 1. the current environment — this covers *lifted* (Bayesian) networks
//!    whose parameters are declared in the `parameters` block and therefore
//!    bound by the inference algorithm (the `pyro.random_module` behaviour of
//!    Section 5.3);
//! 2. the registry's own learnable parameter store — this covers ordinary
//!    networks trained alongside the guide (the VAE encoder/decoder of
//!    Section 5.2).

use std::collections::HashMap;

use gprob::eval::ExternalFns;
use gprob::value::{EnvView, RuntimeError, Value};
use minidiff::Real;

use crate::nn::MlpSpec;

/// A set of declared networks and the values of their learnable parameters.
#[derive(Debug, Clone, Default)]
pub struct NetworkRegistry<T: Real> {
    specs: HashMap<String, MlpSpec>,
    learnable: HashMap<String, Vec<T>>,
}

impl<T: Real> NetworkRegistry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NetworkRegistry {
            specs: HashMap::new(),
            learnable: HashMap::new(),
        }
    }

    /// Registers a network architecture.
    pub fn register(&mut self, spec: MlpSpec) {
        self.specs.insert(spec.name.clone(), spec);
    }

    /// Returns the spec of a registered network.
    pub fn spec(&self, name: &str) -> Option<&MlpSpec> {
        self.specs.get(name)
    }

    /// All registered specs.
    pub fn specs(&self) -> impl Iterator<Item = &MlpSpec> {
        self.specs.values()
    }

    /// Sets the learnable (non-lifted) parameter values for one parameter
    /// name (e.g. `"decoder.l1.weight"`).
    pub fn set_learnable(&mut self, name: impl Into<String>, values: Vec<T>) {
        self.learnable.insert(name.into(), values);
    }

    /// Names and shapes of the learnable parameters of a network (everything
    /// not provided by the environment at call time).
    pub fn learnable_shapes(&self, network: &str) -> Vec<(String, Vec<usize>)> {
        self.specs
            .get(network)
            .map(|s| s.parameter_shapes())
            .unwrap_or_default()
    }

    fn gather_params(
        &self,
        spec: &MlpSpec,
        env: &dyn EnvView<T>,
    ) -> Result<HashMap<String, Vec<T>>, RuntimeError> {
        let mut params = HashMap::new();
        for (pname, shape) in spec.parameter_shapes() {
            let expected: usize = shape.iter().product();
            let values: Vec<T> = if let Some(v) = env.get_var(&pname) {
                v.as_real_vec()?
            } else if let Some(v) = self.learnable.get(&pname) {
                v.clone()
            } else {
                return Err(RuntimeError::new(format!(
                    "network parameter `{pname}` is neither lifted (in the parameters block) nor registered as learnable"
                )));
            };
            if values.len() != expected {
                return Err(RuntimeError::new(format!(
                    "network parameter `{pname}` has {} values, expected {expected}",
                    values.len()
                )));
            }
            params.insert(pname, values);
        }
        Ok(params)
    }
}

impl<T: Real> ExternalFns<T> for NetworkRegistry<T> {
    fn call(
        &self,
        name: &str,
        args: &[Value<T>],
        env: &dyn EnvView<T>,
    ) -> Option<Result<Value<T>, RuntimeError>> {
        let spec = self.specs.get(name)?;
        Some((|| {
            let input = args
                .first()
                .ok_or_else(|| RuntimeError::new(format!("network `{name}` needs an input")))?
                .as_real_vec()?;
            let params = self.gather_params(spec, env)?;
            let out = spec.forward(&params, &input).map_err(RuntimeError::new)?;
            Ok(Value::Vector(out))
        })())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;
    use gprob::value::Env;

    #[test]
    fn learnable_parameters_are_used_when_not_in_env() {
        let mut reg: NetworkRegistry<f64> = NetworkRegistry::new();
        reg.register(MlpSpec::new("net", &[1, 1], Activation::Identity));
        reg.set_learnable("net.l1.weight", vec![3.0]);
        reg.set_learnable("net.l1.bias", vec![1.0]);
        let out = reg
            .call("net", &[Value::Real(2.0)], &Env::new())
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::Vector(vec![7.0]));
    }

    #[test]
    fn environment_parameters_take_precedence_for_lifted_networks() {
        let mut reg: NetworkRegistry<f64> = NetworkRegistry::new();
        reg.register(MlpSpec::new("net", &[1, 1], Activation::Identity));
        reg.set_learnable("net.l1.weight", vec![3.0]);
        reg.set_learnable("net.l1.bias", vec![0.0]);
        let mut env = Env::new();
        env.insert("net.l1.weight".to_string(), Value::Vector(vec![10.0]));
        let out = reg.call("net", &[Value::Real(1.0)], &env).unwrap().unwrap();
        assert_eq!(out, Value::Vector(vec![10.0]));
    }

    #[test]
    fn unknown_networks_are_not_handled() {
        let reg: NetworkRegistry<f64> = NetworkRegistry::new();
        assert!(reg.call("nosuch", &[], &Env::new()).is_none());
    }

    #[test]
    fn missing_parameters_are_reported() {
        let mut reg: NetworkRegistry<f64> = NetworkRegistry::new();
        reg.register(MlpSpec::new("net", &[1, 1], Activation::Identity));
        let err = reg
            .call("net", &[Value::Real(1.0)], &Env::new())
            .unwrap()
            .unwrap_err();
        assert!(err.message().contains("net.l1.weight"));
    }
}
