//! The chain-first inference pipeline: [`Session`] → [`Fit`].
//!
//! This is the method-agnostic inference surface of the reproduction,
//! mirroring the chain-first `MCMC` API of Pyro / NumPyro that the paper
//! runs its evaluation through:
//!
//! ```text
//! CompiledProgram::session(&data)?      // bind once
//!     .scheme(Scheme::Comprehensive)    // compilation scheme (default Mixed)
//!     .chains(4)                        // chains run in parallel threads
//!     .seed(7)                          // chain c is seeded with seed + c
//!     .run(Method::Nuts(settings))?     // or Advi / Svi / Importance
//!     // -> Fit: per-chain draws, cross-chain split-R̂ / ESS, divergences
//! ```
//!
//! Chains shard over `std::thread::scope`: the bound model is shared
//! immutably while every chain owns a pooled `gprob` density workspace
//! ([`gprob::GradWorkspace`]), so sampling allocates nothing per gradient
//! evaluation and 4 chains cost close to 1 in wall time on a multicore
//! machine. The same [`Fit`] type carries every method's output — posterior
//! draws for NUTS/ADVI/importance, plus the fitted guide
//! ([`crate::svi::VariationalFit`]) for SVI — so downstream diagnostics and
//! reporting code is method-agnostic too.
//!
//! Since the tape-free density programs landed ([`gprob::dprog`]), binding a
//! model also lowers its density to a flat register program when the body
//! admits one; every chain's [`WorkspaceTarget`] then evaluates gradients
//! with no tape at all (NUTS, HMC and ADVI all drive the same
//! `log_density_and_grad_with` route). Models that decline — with a reason
//! readable via `GModel::dprog_decline` — keep the recorded-tape path,
//! byte-identical to the previous behavior.
//!
//! Compiled multi-chain NUTS runs take a different sharding: instead of one
//! thread per chain, all chains advance in *lockstep*
//! ([`inference::nuts::nuts_sample_lockstep`]) over one shared
//! [`WorkspaceTarget`], and every round's pending leapfrog evaluations are
//! scored together by the lane-widened density program — one
//! struct-of-arrays sweep per group of up to 8 chains. ADVI likewise batches
//! its per-step Monte-Carlo guide draws through the same surface. Per-chain
//! draws are bitwise identical to the threaded path either way; declined
//! models keep the thread-per-chain sharding.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use gprob::model::ParamSlot;
use gprob::value::Value;
use gprob::GModel;
use inference::advi::{advi_fit_batch, AdviConfig};
use inference::cancel::CancelToken;
use inference::diagnostics::{
    multi_ess, multi_split_rhat, rank_normalized_split_rhat, summarize, tail_ess, Summary,
};
use inference::importance::{likelihood_log_weights, resample_indices, weight_draws};
use inference::loo::{loo_compare, psis_loo, waic, CompareRow, ElpdEstimate};
use inference::nuts::{nuts_sample_lockstep, nuts_sample_mut, NutsConfig, NutsResult};
use inference::predictive::{draw_seed, stream_chains, GqTable};
use inference::target::{GradTargetBatch, GradTargetMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stan2gprob::Scheme;

use crate::api::{CompiledProgram, InferenceError, NutsSettings, Posterior, StanModelTarget};
use crate::nn::MlpSpec;
use crate::svi::{SviSettings, VariationalFit};

/// The inference method a [`Session`] runs. One enum, one pipeline: every
/// method goes through [`Session::run`] and produces a [`Fit`].
#[derive(Debug, Clone)]
pub enum Method {
    /// The No-U-Turn Sampler on the gradient of the compiled density.
    Nuts(NutsSettings),
    /// Mean-field ADVI (Stan's `variational`); `chains(n)` runs `n`
    /// independent restarts.
    Advi(AdviConfig),
    /// Stochastic variational inference with the program's explicit guide
    /// (requires a `guide` block; runs a single fit).
    Svi(SviSettings),
    /// Likelihood-weighting importance sampling from the program prior.
    Importance(ImportanceSettings),
}

/// Settings for the importance-sampling method.
#[derive(Debug, Clone)]
pub struct ImportanceSettings {
    /// Number of prior proposals to draw and weight.
    pub particles: usize,
}

impl Default for ImportanceSettings {
    fn default() -> Self {
        ImportanceSettings { particles: 1000 }
    }
}

/// How each chain picks its starting point.
#[derive(Debug, Clone)]
pub enum Init {
    /// Uniform in `[-radius, radius]` on the unconstrained scale per chain
    /// (Stan's default is radius 2).
    Random {
        /// Half-width of the uniform initialization interval.
        radius: f64,
    },
    /// A fixed unconstrained starting point shared by every chain.
    Value(Vec<f64>),
}

/// A compiled program bound to a data set, ready to run inference. Built by
/// [`CompiledProgram::session`]; configured with the builder methods; fired
/// with [`Session::run`]. The bound model is cached, so running several
/// methods on one session binds (and re-runs `transformed data`) only once
/// per scheme.
pub struct Session<'p> {
    program: &'p CompiledProgram,
    data: Vec<(String, Value<f64>)>,
    scheme: Scheme,
    chains: usize,
    seed: Option<u64>,
    init: Init,
    networks: Vec<MlpSpec>,
    reference: bool,
    guide_draws: usize,
    /// The bound model for the current scheme. Held behind an `Arc` so a
    /// serving layer can inject an already-bound model from a compiled-model
    /// cache ([`Session::with_bound_model`]) and share it across concurrent
    /// sessions with zero rebinding.
    model: Option<(Scheme, Arc<GModel>)>,
    reference_model: Option<stan_ref::StanModel>,
    /// Overrides the lockstep-vs-sequential multi-chain NUTS decision
    /// (`None` = the cost heuristic decides). Both paths produce bitwise
    /// identical draws; benches force each side to measure the other.
    lockstep: Option<bool>,
    /// Cross-request gradient-workspace pool ([`Session::workspace_pool`]):
    /// when set (and built over this session's model), chain targets check
    /// out pooled workspaces instead of allocating fresh ones per run.
    workspace_pool: Option<Arc<WorkspacePool>>,
    /// Cooperative cancellation for the run ([`Session::cancel`]): threaded
    /// into every method's outer loop, polled per draw / per step / per
    /// particle. The default token never cancels.
    cancel: CancelToken,
}

impl CompiledProgram {
    /// Opens an inference session on this program with the given data.
    ///
    /// # Errors
    /// Currently infallible, but typed fallible so future eager validation
    /// (shape checks, data completeness) stays source-compatible.
    pub fn session(&self, data: &[(&str, Value<f64>)]) -> Result<Session<'_>, InferenceError> {
        Ok(Session {
            program: self,
            data: data
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            scheme: Scheme::Mixed,
            chains: 1,
            seed: None,
            init: Init::Random { radius: 2.0 },
            networks: Vec::new(),
            reference: false,
            guide_draws: 1000,
            model: None,
            reference_model: None,
            lockstep: None,
            workspace_pool: None,
            cancel: CancelToken::new(),
        })
    }
}

impl Session<'_> {
    /// Selects the compilation scheme (default: mixed).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Number of chains to run (default 1). Chains beyond the first run on
    /// their own threads, each with its own density workspace.
    pub fn chains(mut self, chains: usize) -> Self {
        self.chains = chains.max(1);
        self
    }

    /// Master seed; chain `c` derives `seed + c`. Defaults to the seed
    /// carried by the method's own settings.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Chain initialization strategy (default: uniform in `[-2, 2]`).
    pub fn init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Network architectures for `networks { ... }` declarations (SVI).
    pub fn networks(mut self, networks: &[MlpSpec]) -> Self {
        self.networks = networks.to_vec();
        self
    }

    /// Runs inference on the baseline Stan-semantics interpreter instead of
    /// the compiled GProb runtime — the "Stan" column of the paper's tables.
    /// Only gradient-based methods (NUTS, ADVI) support this backend.
    pub fn reference(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    /// Number of posterior draws to pull from the fitted guide after SVI
    /// (default 1000).
    pub fn guide_draws(mut self, n: usize) -> Self {
        self.guide_draws = n.max(1);
        self
    }

    /// Forces lockstep (`true`) or one-thread-per-chain (`false`) multi-chain
    /// NUTS execution instead of letting the cost heuristic decide. Both
    /// paths produce bitwise identical per-chain draws; this exists for
    /// benchmarking the heuristic's two sides against each other.
    pub fn lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = Some(lockstep);
        self
    }

    /// Attaches a cooperative [`CancelToken`] to the run. Every method's
    /// outer loop polls it — per NUTS iteration, per ADVI/SVI step, per
    /// importance particle — and never inside a gradient evaluation, so
    /// the draws completed before the token fires are the bitwise prefix
    /// of an uncancelled same-seed run. A cancelled run returns a partial
    /// [`Fit`] with [`Fit::cancelled`] set instead of an error.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Injects an already-bound model (from a compiled-model cache) for the
    /// given scheme, so [`Session::run`] performs **zero** compile, resolve,
    /// or DProg-lowering work. The session's scheme is switched to match.
    ///
    /// The caller is responsible for handing in a model bound against the
    /// *same* program and data this session was opened with — the cache key
    /// of `serve`'s model cache (source hash + data fingerprint) guarantees
    /// exactly that.
    pub fn with_bound_model(mut self, scheme: Scheme, model: Arc<GModel>) -> Self {
        self.scheme = scheme;
        self.model = Some((scheme, model));
        self
    }

    /// Attaches a cross-request [`WorkspacePool`]: chain gradient targets
    /// check per-chain workspaces out of the pool and return them when the
    /// run finishes, so repeat traffic against one cached model reuses the
    /// same scratch buffers instead of allocating `chains` fresh workspaces
    /// per request. Ignored (fresh workspaces, exactly as without a pool)
    /// unless the pool was built over this session's bound model. Pooling
    /// never changes results — a workspace carries no cross-evaluation
    /// state, only scratch capacity.
    pub fn workspace_pool(mut self, pool: Arc<WorkspacePool>) -> Self {
        self.workspace_pool = Some(pool);
        self
    }

    /// Runs the chosen method and collects a [`Fit`].
    ///
    /// # Errors
    /// Propagates binding and runtime errors; misuse (e.g. SVI without a
    /// guide, importance sampling on the reference backend) reports
    /// [`InferenceError::Usage`].
    pub fn run(&mut self, method: Method) -> Result<Fit, InferenceError> {
        self.run_with_observer(method, &mut |_, _| {})
    }

    /// [`Session::run`] with a per-chain completion observer: `on_chain` is
    /// invoked with `(chain_index, &ChainResult)` as each chain's constrained
    /// draws become available, *before* the full [`Fit`] is assembled —
    /// serving layers flush per-chain response frames from here.
    ///
    /// Thread-per-chain NUTS runs invoke the observer incrementally in chain
    /// *completion* order while other chains are still sampling. Lockstep
    /// NUTS (all chains advance through one lane-batched gradient) and the
    /// other methods finish their chains together, so the observer fires for
    /// each chain in index order at completion. Either way every chain is
    /// observed exactly once and the returned fit is identical to
    /// [`Session::run`].
    ///
    /// # Errors
    /// Same as [`Session::run`].
    pub fn run_with_observer(
        &mut self,
        method: Method,
        on_chain: &mut dyn FnMut(usize, &ChainResult),
    ) -> Result<Fit, InferenceError> {
        let start = Instant::now();
        let mut fit = match method {
            Method::Nuts(settings) => self.run_nuts(&settings, on_chain)?,
            Method::Advi(config) => {
                let fit = self.run_advi(&config)?;
                for (c, chain) in fit.chains.iter().enumerate() {
                    on_chain(c, chain);
                }
                fit
            }
            Method::Svi(settings) => {
                let fit = self.run_svi(&settings)?;
                for (c, chain) in fit.chains.iter().enumerate() {
                    on_chain(c, chain);
                }
                fit
            }
            Method::Importance(settings) => {
                let fit = self.run_importance(&settings)?;
                for (c, chain) in fit.chains.iter().enumerate() {
                    on_chain(c, chain);
                }
                fit
            }
        };
        fit.wall_time = start.elapsed().as_secs_f64();
        Ok(fit)
    }

    fn data_refs(&self) -> Vec<(&str, Value<f64>)> {
        self.data
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect()
    }

    /// The bound compiled model for the current scheme (bound lazily,
    /// cached per scheme).
    fn model(&mut self) -> Result<&GModel, InferenceError> {
        let stale = self.model.as_ref().map(|(s, _)| *s) != Some(self.scheme);
        if stale {
            let model = self.program.bind_with(self.scheme, &self.data_refs())?;
            self.model = Some((self.scheme, Arc::new(model)));
        }
        Ok(&self.model.as_ref().expect("model bound above").1)
    }

    /// The bound reference-interpreter model (bound lazily, cached).
    fn ref_model(&mut self) -> Result<&stan_ref::StanModel, InferenceError> {
        if self.reference_model.is_none() {
            self.reference_model = Some(self.program.bind_reference(&self.data_refs())?);
        }
        Ok(self.reference_model.as_ref().expect("model bound above"))
    }

    fn run_nuts(
        &mut self,
        settings: &NutsSettings,
        on_chain: &mut dyn FnMut(usize, &ChainResult),
    ) -> Result<Fit, InferenceError> {
        let seed = self.seed.unwrap_or(settings.seed);
        let config = NutsConfig {
            warmup: settings.warmup,
            samples: settings.samples,
            max_depth: settings.max_depth,
            seed,
            cancel: self.cancel.clone(),
            ..Default::default()
        };
        let (chains, init, reference) = (self.chains, self.init.clone(), self.reference);
        let lockstep_override = self.lockstep;
        let pool_arc = self.workspace_pool.clone();
        if reference {
            let model = self.ref_model()?;
            let runs = run_nuts_chains(
                chains,
                seed,
                &config,
                &|| StanModelTarget(model),
                &|rng| init_point(&init, rng, model.dim()),
                &|theta| model.log_density_f64(theta).map(|_| ()),
            )?;
            return Ok(collect_nuts_fit(
                model.component_names(),
                model.slots(),
                runs,
                on_chain,
            ));
        }
        let model = self.model()?;
        // A workspace pool only applies when it was built over this exact
        // bound model (the serve cache guarantees that); any other pool is
        // ignored rather than risking a wrong-sized workspace.
        let pool = pool_arc
            .as_deref()
            .filter(|p| std::ptr::eq(p.model().as_ref() as *const GModel, model));
        let make_target = || match pool {
            Some(p) => WorkspaceTarget::pooled(p),
            None => WorkspaceTarget::new(model),
        };
        // Multi-chain runs over a compiled density program advance all
        // chains in lockstep so the lane-widened DProg scores every chain's
        // leapfrog state in one batched sweep; declined models — and
        // programs too small to amortize the lane dispatch
        // ([`lockstep_worthwhile`]) — keep the one-thread-per-chain
        // sharding. Both produce bitwise-identical per-chain draws.
        let lockstep = chains > 1
            && match model.dprog() {
                Some(dprog) => {
                    lockstep_override.unwrap_or_else(|| lockstep_worthwhile(model.dim(), dprog))
                }
                None => false,
            };
        if lockstep {
            let runs = run_nuts_chains_lockstep(
                chains,
                seed,
                &config,
                &make_target,
                &|rng| init_point(&init, rng, model.dim()),
                &|theta| model.log_density_f64(theta).map(|_| ()),
            )?;
            return Ok(collect_nuts_fit(
                model.component_names(),
                model.slots(),
                runs,
                on_chain,
            ));
        }
        // Thread-per-chain sharding streams: each chain's constrained draws
        // are handed to the observer as that chain finishes, while the
        // remaining chains keep sampling.
        let names = model.component_names();
        let slots = model.slots();
        let mut results: Vec<Option<ChainResult>> = (0..chains).map(|_| None).collect();
        let mut cancelled = false;
        run_nuts_chains_streaming(
            chains,
            seed,
            &config,
            &make_target,
            &|rng| init_point(&init, rng, model.dim()),
            &|theta| model.log_density_f64(theta).map(|_| ()),
            &mut |c, result, wall_time| {
                cancelled |= result.cancelled;
                let chain = ChainResult {
                    draws: constrain_chain(slots, result.draws),
                    divergences: result.divergences,
                    wall_time,
                    n_grad_evals: result.n_grad_evals,
                };
                on_chain(c, &chain);
                results[c] = Some(chain);
            },
        )?;
        Ok(Fit {
            method: FitMethod::Nuts,
            names,
            chains: results
                .into_iter()
                .map(|r| r.expect("every chain reported a result"))
                .collect(),
            wall_time: 0.0,
            variational: None,
            weights: None,
            gq: None,
            cancelled,
        })
    }

    fn run_advi(&mut self, config: &AdviConfig) -> Result<Fit, InferenceError> {
        let seed = self.seed.unwrap_or(config.seed);
        let mut config = config.clone();
        config.cancel = self.cancel.clone();
        let config = &config;
        let (chains, reference) = (self.chains, self.reference);
        if reference {
            let model = self.ref_model()?;
            model.log_density_f64(&vec![0.0; model.dim()])?;
            let runs = run_advi_chains(chains, seed, config, model.dim(), &|| {
                StanModelTarget(model)
            });
            return Ok(collect_advi_fit(
                model.component_names(),
                model.slots(),
                runs,
            ));
        }
        let pool_arc = self.workspace_pool.clone();
        let model = self.model()?;
        model.log_density_f64(&vec![0.0; model.dim()])?;
        let pool = pool_arc
            .as_deref()
            .filter(|p| std::ptr::eq(p.model().as_ref() as *const GModel, model));
        let runs = run_advi_chains(chains, seed, config, model.dim(), &|| match pool {
            Some(p) => WorkspaceTarget::pooled(p),
            None => WorkspaceTarget::new(model),
        });
        Ok(collect_advi_fit(
            model.component_names(),
            model.slots(),
            runs,
        ))
    }

    fn run_svi(&mut self, settings: &SviSettings) -> Result<Fit, InferenceError> {
        if self.reference {
            return Err(InferenceError::Usage(
                "SVI runs on the compiled runtime only".to_string(),
            ));
        }
        let seed = self.seed.unwrap_or(settings.seed);
        let mut settings = settings.clone();
        settings.seed = seed;
        settings.cancel = self.cancel.clone();
        let data = self.data_refs();
        let start = Instant::now();
        let variational = self.program.svi(&data, &self.networks, &settings)?;
        let cancelled = variational.cancelled;
        let posterior = self.program.sample_guide(
            &data,
            &variational,
            &self.networks,
            self.guide_draws,
            seed.wrapping_add(1),
        )?;
        Ok(Fit {
            method: FitMethod::Svi,
            names: posterior.names,
            chains: vec![ChainResult {
                draws: posterior.draws,
                divergences: 0,
                wall_time: start.elapsed().as_secs_f64(),
                n_grad_evals: 0,
            }],
            wall_time: 0.0,
            variational: Some(variational),
            weights: None,
            gq: None,
            cancelled,
        })
    }

    fn run_importance(&mut self, settings: &ImportanceSettings) -> Result<Fit, InferenceError> {
        if self.reference {
            return Err(InferenceError::Usage(
                "importance sampling runs on the compiled runtime only".to_string(),
            ));
        }
        let seed = self.seed.unwrap_or(0);
        let n = settings.particles.max(1);
        let pool_arc = self.workspace_pool.clone();
        let cancel = self.cancel.clone();
        let model = self.model()?;
        let start = Instant::now();
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
        let mut draws = Vec::with_capacity(n);
        let dim = model.dim();
        let mut cancelled = false;
        let log_weights = if model.dprog().is_some() && dim > 0 {
            // Batched route: proposals come from draw-only prior runs
            // (scoring skipped — RNG consumption is identical to the
            // weighted run), then ONE lane-batched sweep scores every
            // proposal's full unconstrained density, and the likelihood
            // weight is full − prior − log-Jacobian. Matches the per-draw
            // route up to constrain/unconstrain float round-trip (~1e-15).
            let mut us = Vec::with_capacity(n * dim);
            let mut priors = Vec::with_capacity(n);
            let mut jacs = Vec::with_capacity(n);
            for _ in 0..n {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                let (trace, prior_lp) = model.run_prior_draw(rng.clone())?;
                let flat = flatten_trace(model, &trace)?;
                let base = us.len();
                us.resize(base + dim, 0.0);
                let mut jac = 0.0;
                for slot in model.slots() {
                    for i in 0..slot.size {
                        let u = slot.constraint.to_unconstrained(flat[slot.offset + i]);
                        us[base + slot.offset + i] = u;
                        jac += slot.constraint.log_jacobian(u);
                    }
                }
                draws.push(flat);
                priors.push(prior_lp);
                jacs.push(jac);
            }
            let pool = pool_arc
                .as_deref()
                .filter(|p| std::ptr::eq(p.model().as_ref() as *const GModel, model));
            let mut target = match pool {
                Some(p) => WorkspaceTarget::pooled(p),
                None => WorkspaceTarget::new(model),
            };
            likelihood_log_weights(&mut target, &us, &priors, &jacs)
        } else {
            let mut log_weights = Vec::with_capacity(n);
            for _ in 0..n {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                let (trace, lw) = model.run_prior_weighted(rng.clone())?;
                draws.push(flatten_trace(model, &trace)?);
                log_weights.push(lw);
            }
            log_weights
        };
        // A run cancelled before its first particle has nothing to weight;
        // return an empty partial fit rather than a degeneracy error.
        if draws.is_empty() && cancelled {
            return Ok(Fit {
                method: FitMethod::Importance,
                names: model.component_names(),
                chains: vec![ChainResult {
                    draws: Vec::new(),
                    divergences: 0,
                    wall_time: start.elapsed().as_secs_f64(),
                    n_grad_evals: 0,
                }],
                wall_time: 0.0,
                variational: None,
                weights: None,
                gq: None,
                cancelled: true,
            });
        }
        // Particles completed before a cancellation point (all `n` when the
        // token never fired).
        let n_done = draws.len();
        let weighted = weight_draws(draws, log_weights);
        if !weighted.log_evidence.is_finite() || weighted.weights.iter().any(|w| !w.is_finite()) {
            return Err(InferenceError::Usage(format!(
                "importance sampling degenerated: all {n} prior proposals have zero likelihood"
            )));
        }
        // Resample into an unweighted draw set so Fit summaries are the
        // self-normalized importance estimates.
        let indices = resample_indices(&weighted.weights, n_done, seed.wrapping_add(1));
        let resampled: Vec<Vec<f64>> = indices.iter().map(|&i| weighted.draws[i].clone()).collect();
        Ok(Fit {
            method: FitMethod::Importance,
            names: model.component_names(),
            chains: vec![ChainResult {
                draws: resampled,
                divergences: 0,
                wall_time: start.elapsed().as_secs_f64(),
                n_grad_evals: 0,
            }],
            wall_time: 0.0,
            variational: None,
            weights: Some(weighted.weights),
            gq: None,
            cancelled,
        })
    }

    /// Streams every retained draw of a [`Fit`] through the program's
    /// resolved `generated quantities` block and merges the resulting
    /// [`GqTable`] into the fit (no-op if already attached).
    ///
    /// Chains shard over threads, each with its own pooled
    /// [`gprob::GqWorkspace`]; `_rng` statements run on deterministic
    /// per-(chain, draw) streams derived from the session seed, so results
    /// are reproducible regardless of chain scheduling order.
    ///
    /// # Errors
    /// [`InferenceError::Usage`] when the program has no block or the fit
    /// has no draws; runtime errors from GQ evaluation otherwise.
    pub fn generated_quantities(&mut self, fit: &mut Fit) -> Result<(), InferenceError> {
        if fit.gq.is_some() {
            return Ok(());
        }
        let seed = self.seed.unwrap_or(0);
        let model = self.model()?;
        if model.resolved_gq().is_none() {
            return Err(InferenceError::Usage(
                "the program has no generated quantities block".to_string(),
            ));
        }
        let first_draw = fit
            .chains
            .iter()
            .enumerate()
            .find_map(|(c, chain)| chain.draws.first().map(|d| (c, d)));
        let Some((name_chain, name_draw)) = first_draw else {
            return Err(InferenceError::Usage(
                "the fit has no draws to evaluate generated quantities on".to_string(),
            ));
        };
        let chains: Vec<&[Vec<f64>]> = fit.chains.iter().map(|c| c.draws.as_slice()).collect();
        let rows = stream_chains(&chains, seed, |_chain| {
            let mut ws = model.gq_workspace().expect("block checked above");
            move |_draw: usize, draw_rng_seed: u64, row: &[f64]| -> Result<Vec<f64>, String> {
                let mut out = Vec::new();
                model
                    .generated_quantities_into(&mut ws, row, true, draw_rng_seed, &mut out)
                    .map_err(|e| e.message().to_string())?;
                Ok(out)
            }
        })
        .map_err(|e| InferenceError::Runtime(gprob::RuntimeError::new(e.to_string())))?;
        // Column names come from the shapes one evaluated draw binds.
        let mut ws = model.gq_workspace().expect("block checked above");
        let mut sink = Vec::new();
        model.generated_quantities_into(
            &mut ws,
            name_draw,
            true,
            draw_seed(seed, name_chain as u64, 0),
            &mut sink,
        )?;
        let names = model.gq_component_names(&ws)?;
        fit.gq = Some(GqTable {
            names,
            chains: rows,
        });
        Ok(())
    }

    /// Pooled posterior-predictive draws of one generated quantity: ensures
    /// the GQ table is attached to the fit, then returns the draws ×
    /// components matrix of every `name[...]` column (or the scalar
    /// `name`).
    ///
    /// # Errors
    /// Usage errors when the program has no block or no such quantity.
    pub fn posterior_predictive(
        &mut self,
        fit: &mut Fit,
        name: &str,
    ) -> Result<Vec<Vec<f64>>, InferenceError> {
        self.generated_quantities(fit)?;
        fit.posterior_predictive(name)
            .ok_or_else(|| InferenceError::Usage(format!("no generated quantity named `{name}`")))
    }

    /// The pooled pointwise log-likelihood matrix (draws × observations)
    /// from the fit's `log_lik` generated quantity, attaching the GQ table
    /// first if needed.
    ///
    /// # Errors
    /// Usage errors when the program's block defines no `log_lik`.
    pub fn log_lik(&mut self, fit: &mut Fit) -> Result<Vec<Vec<f64>>, InferenceError> {
        self.generated_quantities(fit)?;
        fit.log_lik().ok_or_else(|| {
            InferenceError::Usage("the generated quantities block defines no `log_lik`".to_string())
        })
    }

    /// PSIS-LOO model criticism over the fit's `log_lik` matrix (attaching
    /// generated quantities first if needed).
    ///
    /// # Errors
    /// Same as [`Session::log_lik`].
    pub fn loo(&mut self, fit: &mut Fit) -> Result<ElpdEstimate, InferenceError> {
        self.generated_quantities(fit)?;
        fit.loo()
    }

    /// WAIC over the fit's `log_lik` matrix (attaching generated quantities
    /// first if needed).
    ///
    /// # Errors
    /// Same as [`Session::log_lik`].
    pub fn waic(&mut self, fit: &mut Fit) -> Result<ElpdEstimate, InferenceError> {
        self.generated_quantities(fit)?;
        fit.waic()
    }

    /// Prior-predictive simulation: draws `draws` parameter sets from the
    /// program prior and streams each through the `generated quantities`
    /// block, returning the resulting table (one chain). Seeded by the
    /// session seed.
    ///
    /// # Errors
    /// Usage errors when the program has no block; runtime errors from the
    /// prior run or GQ evaluation.
    pub fn prior_predictive(&mut self, draws: usize) -> Result<GqTable, InferenceError> {
        let seed = self.seed.unwrap_or(0);
        let draws = draws.max(1);
        let model = self.model()?;
        let Some(_) = model.resolved_gq() else {
            return Err(InferenceError::Usage(
                "the program has no generated quantities block".to_string(),
            ));
        };
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
        let mut ws = model.gq_workspace().expect("block checked above");
        let mut rows = Vec::with_capacity(draws);
        for d in 0..draws {
            let (trace, _) = model.run_prior_weighted(rng.clone())?;
            let flat = flatten_trace(model, &trace)?;
            let mut out = Vec::new();
            model.generated_quantities_into(
                &mut ws,
                &flat,
                true,
                draw_seed(seed, 0, d as u64),
                &mut out,
            )?;
            rows.push(out);
        }
        let names = model.gq_component_names(&ws)?;
        Ok(GqTable {
            names,
            chains: vec![rows],
        })
    }
}

/// Ranks named PSIS-LOO estimates (best first) with paired difference
/// standard errors — re-exported convenience over
/// [`inference::loo::loo_compare`].
pub fn compare_by_loo(models: &[(&str, &ElpdEstimate)]) -> Vec<CompareRow> {
    loo_compare(models)
}

/// Flattens a prior-run trace frame into the constrained flat-row layout of
/// [`GModel::component_names`]: each parameter read straight out of the
/// frame by its slot (no string-keyed environment). A slot a data-dependent
/// branch skipped contributes `slot.size` NaNs so the row stays aligned with
/// the component names.
fn flatten_trace(
    model: &GModel,
    trace: &gprob::Frame<f64>,
) -> Result<Vec<f64>, gprob::RuntimeError> {
    let mut flat = Vec::new();
    for (slot, &frame_slot) in model.slots().iter().zip(model.param_frame_slots()) {
        match trace.get(frame_slot) {
            Some(value) => flat.extend(value.as_real_vec()?),
            None => flat.extend(std::iter::repeat_n(f64::NAN, slot.size)),
        }
    }
    Ok(flat)
}

fn init_point(init: &Init, rng: &mut StdRng, dim: usize) -> Vec<f64> {
    match init {
        Init::Random { radius } => {
            let r = *radius;
            if r > 0.0 {
                (0..dim).map(|_| rng.gen_range(-r..r)).collect()
            } else {
                // Radius 0 (or below) means "start every chain at the
                // origin" rather than an empty-range panic.
                vec![0.0; dim]
            }
        }
        Init::Value(v) => v.clone(),
    }
}

/// A cross-request pool of gradient workspaces for one bound model, shared
/// by every [`Session`] serving that model (see
/// [`Session::workspace_pool`]). A chain target checks a workspace out on
/// construction ([`WorkspaceTarget::pooled`]) and returns it on drop, so a
/// long-lived server answering repeat traffic against a cached model
/// allocates each chain workspace once and then recycles it, instead of
/// paying `chains` fresh allocations per request.
///
/// Workspaces carry scratch capacity only — no state survives between
/// evaluations — so pooling cannot change any result. The pool retains at
/// most [`WorkspacePool::MAX_IDLE`] idle workspaces; beyond that, returned
/// workspaces are simply dropped.
pub struct WorkspacePool {
    model: Arc<GModel>,
    free: Mutex<Vec<gprob::GradWorkspace>>,
    created: AtomicU64,
}

impl WorkspacePool {
    /// Idle workspaces retained; returns beyond this are dropped.
    pub const MAX_IDLE: usize = 64;

    /// An empty pool over one bound model.
    pub fn new(model: Arc<GModel>) -> Self {
        WorkspacePool {
            model,
            free: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
        }
    }

    /// The model this pool allocates workspaces for.
    pub fn model(&self) -> &Arc<GModel> {
        &self.model
    }

    /// Workspaces allocated over the pool's lifetime (i.e. acquire misses).
    /// A server test asserts this stops growing once traffic repeats.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Workspaces currently checked in and idle.
    pub fn idle(&self) -> usize {
        // Poison recovery: a panic elsewhere while holding the lock leaves
        // the workspace list intact (push/pop never leave it mid-edit), so
        // later callers keep working instead of cascading the panic.
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn acquire(&self) -> gprob::GradWorkspace {
        if let Some(ws) = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            // Checked out: one fewer idle workspace process-wide.
            obs::gauge("workspace.idle").add(-1.0);
            return ws;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        obs::counter("workspace.created").inc();
        self.model.grad_workspace()
    }

    fn release(&self, ws: gprob::GradWorkspace) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < Self::MAX_IDLE {
            free.push(ws);
            obs::gauge("workspace.idle").add(1.0);
        }
    }
}

/// A [`GradTargetMut`] over a compiled model with a pooled per-chain
/// workspace: each gradient evaluation reuses the chain's scratch state.
/// When the model compiled a tape-free density program (`GModel::dprog`),
/// this is the target that runs it — one forward pass over the op array and
/// one analytic reverse sweep per leapfrog step, no tape recording;
/// declined models evaluate through the recorded tape exactly as before.
/// Evaluation errors surface as `-inf` plateaus, exactly as the
/// closure-based wiring did.
pub struct WorkspaceTarget<'m> {
    model: &'m GModel,
    /// `Some` until drop; taken back by the pool (when pooled) on drop.
    ws: Option<gprob::GradWorkspace>,
    pool: Option<&'m WorkspacePool>,
}

impl<'m> WorkspaceTarget<'m> {
    /// Builds a target (and a fresh workspace) for one chain.
    pub fn new(model: &'m GModel) -> Self {
        WorkspaceTarget {
            ws: Some(model.grad_workspace()),
            model,
            pool: None,
        }
    }

    /// Builds a target over the pool's model, checking its workspace out of
    /// the pool (allocating only when the pool is empty) and returning it
    /// when the target drops.
    pub fn pooled(pool: &'m WorkspacePool) -> Self {
        WorkspaceTarget {
            model: pool.model.as_ref(),
            ws: Some(pool.acquire()),
            pool: Some(pool),
        }
    }

    fn ws(&mut self) -> &mut gprob::GradWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for WorkspaceTarget<'_> {
    fn drop(&mut self) {
        if let (Some(pool), Some(ws)) = (self.pool, self.ws.take()) {
            pool.release(ws);
        }
    }
}

impl GradTargetMut for WorkspaceTarget<'_> {
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
        let model = self.model;
        match model.log_density_and_grad_with(self.ws(), q, grad) {
            Ok(lp) => lp,
            Err(_) => {
                grad.fill(0.0);
                f64::NEG_INFINITY
            }
        }
    }
}

/// Batched evaluation: models with a compiled density program score the
/// whole batch in struct-of-arrays lane groups (one forward and one reverse
/// sweep per group of up to 8 points); declined models loop the single-point
/// entry, preserving the `Err` → `-inf` plateau mapping point by point. Both
/// routes are bitwise identical per point to [`GradTargetMut::logp_grad_into`].
impl GradTargetBatch for WorkspaceTarget<'_> {
    fn logp_grad_batch(&mut self, qs: &[f64], logps: &mut [f64], grads: &mut [f64]) {
        let n = logps.len();
        if n == 0 {
            return;
        }
        let model = self.model;
        if model.dprog().is_some()
            && model
                .log_density_and_grad_batch_with(self.ws(), qs, logps, grads)
                .is_ok()
        {
            return;
        }
        let dim = qs.len() / n;
        for (i, lp) in logps.iter_mut().enumerate() {
            *lp = self.logp_grad_into(
                &qs[i * dim..(i + 1) * dim],
                &mut grads[i * dim..(i + 1) * dim],
            );
        }
    }
}

/// Runs `chains` NUTS chains, in parallel threads beyond the first, each on
/// its own freshly built target (one workspace per chain). Chain `c` uses
/// seed `base_seed + c` for both its starting point and its sampler.
///
/// Before each chain samples, its own starting point is checked with
/// `check` (a plain density evaluation), so a runtime error on *any*
/// chain's init surfaces as an error rather than a silent `-inf` plateau
/// that would pool a frozen chain into the summaries.
fn run_nuts_chains<T, F, G, C>(
    chains: usize,
    base_seed: u64,
    config: &NutsConfig,
    make_target: &F,
    make_init: &G,
    check: &C,
) -> Result<Vec<(NutsResult, f64)>, InferenceError>
where
    T: GradTargetMut,
    F: Fn() -> T + Sync,
    G: Fn(&mut StdRng) -> Vec<f64> + Sync,
    C: Fn(&[f64]) -> Result<(), gprob::RuntimeError> + Sync,
{
    let run_one = |c: usize| -> Result<(NutsResult, f64), InferenceError> {
        let mut chain_cfg = config.clone();
        chain_cfg.seed = base_seed.wrapping_add(c as u64);
        let mut rng = StdRng::seed_from_u64(chain_cfg.seed);
        let init = make_init(&mut rng);
        check(&init)?;
        let start = Instant::now();
        let mut target = make_target();
        let result = nuts_sample_mut(&mut target, init, &chain_cfg);
        Ok((result, start.elapsed().as_secs_f64()))
    };
    if chains <= 1 {
        return Ok(vec![run_one(0)?]);
    }
    std::thread::scope(|s| {
        let run_one = &run_one;
        let handles: Vec<_> = (0..chains).map(|c| s.spawn(move || run_one(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("NUTS chain thread panicked"))
            .collect()
    })
}

/// [`run_nuts_chains`], streaming: chain results are funneled through an
/// mpsc channel to the calling thread, which invokes `on_chain` in chain
/// *completion* order while the remaining chains keep sampling — the
/// incremental flush point of `serve`'s streaming responses. Per-chain
/// seeding is identical to [`run_nuts_chains`], so draws are bitwise equal.
/// If any chain fails its init check the first error (in completion order)
/// is returned after all chains finish.
fn run_nuts_chains_streaming<T, F, G, C>(
    chains: usize,
    base_seed: u64,
    config: &NutsConfig,
    make_target: &F,
    make_init: &G,
    check: &C,
    on_chain: &mut dyn FnMut(usize, NutsResult, f64),
) -> Result<(), InferenceError>
where
    T: GradTargetMut,
    F: Fn() -> T + Sync,
    G: Fn(&mut StdRng) -> Vec<f64> + Sync,
    C: Fn(&[f64]) -> Result<(), gprob::RuntimeError> + Sync,
{
    let run_one = |c: usize| -> Result<(NutsResult, f64), InferenceError> {
        let mut chain_cfg = config.clone();
        chain_cfg.seed = base_seed.wrapping_add(c as u64);
        let mut rng = StdRng::seed_from_u64(chain_cfg.seed);
        let init = make_init(&mut rng);
        check(&init)?;
        let start = Instant::now();
        let mut target = make_target();
        let result = nuts_sample_mut(&mut target, init, &chain_cfg);
        Ok((result, start.elapsed().as_secs_f64()))
    };
    if chains <= 1 {
        let (result, wall) = run_one(0)?;
        on_chain(0, result, wall);
        return Ok(());
    }
    std::thread::scope(|s| {
        let run_one = &run_one;
        let (tx, rx) = mpsc::channel();
        for c in 0..chains {
            let tx = tx.clone();
            s.spawn(move || {
                // The receiver outlives every sender inside the scope, so a
                // send only fails if the main thread panicked.
                let _ = tx.send((c, run_one(c)));
            });
        }
        drop(tx);
        let mut first_err = None;
        for (c, outcome) in rx {
            match outcome {
                Ok((result, wall)) if first_err.is_none() => on_chain(c, result, wall),
                Ok(_) => {}
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// Lockstep multi-chain NUTS pays a fixed per-round dispatch cost (lane-file
/// preparation, operand re-resolution, chain bookkeeping) that a density
/// program must amortize: on dim-1 toy programs with near-empty bodies the
/// PR 6 benches measured lockstep at 0.88x of thread-per-chain (`coin`),
/// while every real model gained 1.37-1.48x. Fall back to sequential chain
/// execution below a dimension/cost floor; both paths produce bitwise
/// identical draws, so the heuristic is purely a scheduling decision.
fn lockstep_worthwhile(dim: usize, dprog: &gprob::dprog::DProg) -> bool {
    const MIN_DIM: usize = 2;
    const MIN_COST: usize = 48;
    dim >= MIN_DIM && dprog.cost_estimate() >= MIN_COST
}

/// [`run_nuts_chains`] in lockstep over a single shared batched target:
/// every round, all chains' pending leapfrog evaluations go through one
/// `logp_grad_batch` call, which a lane-widened density program scores with
/// one struct-of-arrays sweep per lane group. Chain `c` still seeds its
/// starting point and sampler from `base_seed + c` and consumes its RNG in
/// sequential order, so its draws are bitwise identical to the threaded
/// path. Wall time cannot be attributed per chain here, so each chain
/// reports an equal share of the batch's elapsed time.
fn run_nuts_chains_lockstep<T, F, G, C>(
    chains: usize,
    base_seed: u64,
    config: &NutsConfig,
    make_target: &F,
    make_init: &G,
    check: &C,
) -> Result<Vec<(NutsResult, f64)>, InferenceError>
where
    T: GradTargetBatch,
    F: Fn() -> T,
    G: Fn(&mut StdRng) -> Vec<f64>,
    C: Fn(&[f64]) -> Result<(), gprob::RuntimeError>,
{
    let mut configs = Vec::with_capacity(chains);
    let mut inits = Vec::with_capacity(chains);
    for c in 0..chains {
        let mut chain_cfg = config.clone();
        chain_cfg.seed = base_seed.wrapping_add(c as u64);
        let mut rng = StdRng::seed_from_u64(chain_cfg.seed);
        let init = make_init(&mut rng);
        check(&init)?;
        configs.push(chain_cfg);
        inits.push(init);
    }
    let start = Instant::now();
    let mut target = make_target();
    let results = nuts_sample_lockstep(&mut target, inits, &configs);
    let per_chain = start.elapsed().as_secs_f64() / chains.max(1) as f64;
    Ok(results.into_iter().map(|r| (r, per_chain)).collect())
}

/// Runs `chains` independent ADVI restarts (seeded `base_seed + c`), in
/// parallel threads beyond the first. Each restart fits through
/// [`advi_fit_batch`], so every optimization step's Monte-Carlo guide draws
/// score in one batched call — one lane-widened sweep per step on compiled
/// models, a plain per-draw loop (bitwise identical to `advi_fit_mut`)
/// otherwise.
fn run_advi_chains<T, F>(
    chains: usize,
    base_seed: u64,
    config: &AdviConfig,
    dim: usize,
    make_target: &F,
) -> Vec<(inference::advi::AdviResult, f64)>
where
    T: GradTargetBatch,
    F: Fn() -> T + Sync,
{
    let run_one = |c: usize| {
        let mut chain_cfg = config.clone();
        chain_cfg.seed = base_seed.wrapping_add(c as u64);
        let start = Instant::now();
        let mut target = make_target();
        let result = advi_fit_batch(&mut target, dim, &chain_cfg);
        (result, start.elapsed().as_secs_f64())
    };
    if chains <= 1 {
        return vec![run_one(0)];
    }
    std::thread::scope(|s| {
        let run_one = &run_one;
        let handles: Vec<_> = (0..chains).map(|c| s.spawn(move || run_one(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ADVI chain thread panicked"))
            .collect()
    })
}

/// Pushes a chain's unconstrained draws through the constraint transforms
/// (the same mapping [`Posterior::from_unconstrained`] uses).
fn constrain_chain(slots: &[ParamSlot], draws_u: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    crate::api::constrain_draws(slots, draws_u)
}

fn collect_nuts_fit(
    names: Vec<String>,
    slots: &[ParamSlot],
    runs: Vec<(NutsResult, f64)>,
    on_chain: &mut dyn FnMut(usize, &ChainResult),
) -> Fit {
    let cancelled = runs.iter().any(|(result, _)| result.cancelled);
    let chains: Vec<ChainResult> = runs
        .into_iter()
        .map(|(result, wall_time)| ChainResult {
            draws: constrain_chain(slots, result.draws),
            divergences: result.divergences,
            wall_time,
            n_grad_evals: result.n_grad_evals,
        })
        .collect();
    for (c, chain) in chains.iter().enumerate() {
        on_chain(c, chain);
    }
    Fit {
        method: FitMethod::Nuts,
        names,
        chains,
        wall_time: 0.0,
        variational: None,
        weights: None,
        gq: None,
        cancelled,
    }
}

fn collect_advi_fit(
    names: Vec<String>,
    slots: &[ParamSlot],
    runs: Vec<(inference::advi::AdviResult, f64)>,
) -> Fit {
    let cancelled = runs.iter().any(|(result, _)| result.cancelled);
    let chains = runs
        .into_iter()
        .map(|(result, wall_time)| ChainResult {
            draws: constrain_chain(slots, result.draws),
            divergences: 0,
            wall_time,
            n_grad_evals: 0,
        })
        .collect();
    Fit {
        method: FitMethod::Advi,
        names,
        chains,
        wall_time: 0.0,
        variational: None,
        weights: None,
        gq: None,
        cancelled,
    }
}

/// Which method produced a [`Fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitMethod {
    /// The No-U-Turn Sampler.
    Nuts,
    /// Mean-field ADVI.
    Advi,
    /// SVI with an explicit guide.
    Svi,
    /// Likelihood-weighting importance sampling.
    Importance,
}

/// One chain's output: constrained draws plus sampler accounting.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Constrained draws, one component vector per draw.
    pub draws: Vec<Vec<f64>>,
    /// Divergent transitions after warmup (NUTS only).
    pub divergences: usize,
    /// Wall-clock seconds this chain ran for.
    pub wall_time: f64,
    /// Gradient evaluations this chain performed (NUTS only).
    pub n_grad_evals: usize,
}

/// The unified result of a [`Session::run`]: per-chain posterior draws on
/// the constrained scale, cross-chain convergence diagnostics, and
/// method-specific extras (the fitted guide for SVI, importance weights for
/// likelihood weighting).
#[derive(Debug, Clone)]
pub struct Fit {
    /// The method that produced this fit.
    pub method: FitMethod,
    /// Flat component names (`mu`, `theta[1]`, ...).
    pub names: Vec<String>,
    /// Per-chain results.
    pub chains: Vec<ChainResult>,
    /// Total wall-clock seconds for the whole run (all chains).
    pub wall_time: f64,
    /// The fitted guide (SVI only).
    pub variational: Option<VariationalFit>,
    /// Normalized importance weights of the pre-resampling proposals
    /// (importance sampling only).
    pub weights: Option<Vec<f64>>,
    /// The generated-quantities table, attached by
    /// [`Session::generated_quantities`] (posterior-predictive draws,
    /// pointwise log-likelihoods, ...).
    pub gq: Option<GqTable>,
    /// True when the run stopped early because the session's
    /// [`CancelToken`] fired ([`Session::cancel`]). The chains then hold
    /// the partial prefix completed before the cancellation point — for
    /// NUTS, bitwise identical to the same-seed prefix of a full run.
    pub cancelled: bool,
}

impl Fit {
    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    /// Total divergent transitions across chains.
    pub fn divergences(&self) -> usize {
        self.chains.iter().map(|c| c.divergences).sum()
    }

    /// Total gradient evaluations across chains.
    pub fn n_grad_evals(&self) -> usize {
        self.chains.iter().map(|c| c.n_grad_evals).sum()
    }

    /// All chains' draws pooled, in chain order.
    pub fn pooled_draws(&self) -> Vec<Vec<f64>> {
        self.chains.iter().flat_map(|c| c.draws.clone()).collect()
    }

    /// A human-readable performance profile: this fit's per-chain table
    /// (draws, divergences, gradient evaluations, wall time, gradient
    /// throughput) followed by the inference/compile sections of the
    /// process-wide [`obs`] registry — compile/bind phase timings, DProg
    /// and JIT decline counters, NUTS leapfrog/tree-depth/divergence
    /// telemetry, ADVI/SVI step timings, and workspace-pool gauges.
    ///
    /// The registry sections are *process totals* (every fit and cached
    /// bind since startup), so compare deltas across calls when profiling
    /// one run among many. Remote users get the same registry text over
    /// the wire through the serve tier's `stats` frame.
    pub fn profile(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fit profile — method {:?}, {} chain(s), {:.3}s wall",
            self.method,
            self.chains.len(),
            self.wall_time
        );
        for (index, chain) in self.chains.iter().enumerate() {
            let rate = if chain.wall_time > 0.0 {
                chain.n_grad_evals as f64 / chain.wall_time
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  chain {index}: {} draws, {} divergences, {} grad evals, {:.3}s ({:.0} grads/s)",
                chain.draws.len(),
                chain.divergences,
                chain.n_grad_evals,
                chain.wall_time,
                rate
            );
        }
        let snapshot = obs::global().snapshot().filtered(&[
            "compile.",
            "bind.",
            "dprog.",
            "jit.",
            "nuts.",
            "advi.",
            "svi.",
            "workspace.",
        ]);
        out.push_str("process telemetry (registry totals since startup):\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name} = {value}");
        }
        for (name, hist) in &snapshot.histograms {
            if hist.count == 0 {
                continue;
            }
            // Span histograms record nanoseconds; report them as ms.
            if name.ends_with("_ns") {
                let ms = 1e6;
                let _ = writeln!(
                    out,
                    "  {name}: n={} p50={:.3}ms p90={:.3}ms p99={:.3}ms max={:.3}ms",
                    hist.count,
                    hist.p50() / ms,
                    hist.p90() / ms,
                    hist.p99() / ms,
                    hist.max as f64 / ms
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.2} p50={:.0} p99={:.0} max={}",
                    hist.count,
                    hist.mean(),
                    hist.p50(),
                    hist.p99(),
                    hist.max
                );
            }
        }
        out
    }

    /// Index of a component by exact name (`"mu"`, `"theta[2]"`).
    fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Pooled chain of one component across all chains.
    pub fn component(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.index_of(name)?;
        Some(
            self.chains
                .iter()
                .flat_map(|c| c.draws.iter().map(move |d| d[idx]))
                .collect(),
        )
    }

    /// Per-chain series of one component.
    pub fn component_chains(&self, name: &str) -> Option<Vec<Vec<f64>>> {
        let idx = self.index_of(name)?;
        Some(
            self.chains
                .iter()
                .map(|c| c.draws.iter().map(|d| d[idx]).collect())
                .collect(),
        )
    }

    /// Cross-chain split-R̂ of one component (near 1 at convergence).
    pub fn split_rhat(&self, name: &str) -> Option<f64> {
        let chains = self.component_chains(name)?;
        let views: Vec<&[f64]> = chains.iter().map(|c| c.as_slice()).collect();
        Some(multi_split_rhat(&views))
    }

    /// The worst (largest) cross-chain split-R̂ over all components.
    pub fn max_split_rhat(&self) -> f64 {
        self.names
            .iter()
            .filter_map(|n| self.split_rhat(n))
            .fold(f64::NAN, f64::max)
    }

    /// Effective sample size of one component, pooled over chains.
    pub fn ess(&self, name: &str) -> Option<f64> {
        let chains = self.component_chains(name)?;
        let views: Vec<&[f64]> = chains.iter().map(|c| c.as_slice()).collect();
        Some(multi_ess(&views))
    }

    /// Rank-normalized split-R̂ of one component (Vehtari et al. 2021): the
    /// maximum of the bulk and folded rank-normalized statistics, robust to
    /// heavy tails and non-normal marginals. Recommended threshold: 1.01.
    pub fn rank_normalized_split_rhat(&self, name: &str) -> Option<f64> {
        let chains = self.component_chains(name)?;
        let views: Vec<&[f64]> = chains.iter().map(|c| c.as_slice()).collect();
        Some(rank_normalized_split_rhat(&views))
    }

    /// The worst (largest) rank-normalized split-R̂ over all components.
    pub fn max_rank_normalized_split_rhat(&self) -> f64 {
        self.names
            .iter()
            .filter_map(|n| self.rank_normalized_split_rhat(n))
            .fold(f64::NAN, f64::max)
    }

    /// Tail effective sample size of one component (Vehtari et al. 2021):
    /// the minimum ESS of the 5% and 95% quantile estimates. Low values
    /// flag unreliable credible-interval endpoints even when the bulk ESS
    /// looks healthy.
    pub fn tail_ess(&self, name: &str) -> Option<f64> {
        let chains = self.component_chains(name)?;
        let views: Vec<&[f64]> = chains.iter().map(|c| c.as_slice()).collect();
        Some(tail_ess(&views))
    }

    /// Per-component posterior summaries over the pooled draws.
    pub fn summaries(&self) -> Vec<(String, Summary)> {
        self.names
            .iter()
            .cloned()
            .zip(summarize(&self.pooled_draws()))
            .collect()
    }

    /// Summary of one component over the pooled draws. Computed from the
    /// single pooled column — no full draw-matrix copy per call.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let col = self.component(name)?;
        let n = col.len() as f64;
        if col.is_empty() {
            return Some(Summary {
                mean: f64::NAN,
                stddev: f64::NAN,
            });
        }
        let mean = col.iter().sum::<f64>() / n;
        let var = if col.len() > 1 {
            col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Summary {
            mean,
            stddev: var.sqrt(),
        })
    }

    /// Means of every component, in component order.
    pub fn means(&self) -> Vec<f64> {
        summarize(&self.pooled_draws())
            .into_iter()
            .map(|s| s.mean)
            .collect()
    }

    /// Standard deviations of every component, in component order.
    pub fn stddevs(&self) -> Vec<f64> {
        summarize(&self.pooled_draws())
            .into_iter()
            .map(|s| s.stddev)
            .collect()
    }

    /// Effective sample size of the importance weights, `1 / Σ w²`
    /// (importance sampling only).
    pub fn importance_ess(&self) -> Option<f64> {
        let weights = self.weights.as_ref()?;
        Some(
            1.0 / weights
                .iter()
                .map(|w| w * w)
                .sum::<f64>()
                .max(f64::MIN_POSITIVE),
        )
    }

    /// The attached generated-quantities table, if
    /// [`Session::generated_quantities`] has run on this fit.
    pub fn gq(&self) -> Option<&GqTable> {
        self.gq.as_ref()
    }

    /// Pooled posterior-predictive draws of one generated quantity: the
    /// draws × components matrix of every `name[...]` column (or the scalar
    /// `name`). `None` until the GQ table is attached or when no column
    /// matches.
    pub fn posterior_predictive(&self, name: &str) -> Option<Vec<Vec<f64>>> {
        self.gq.as_ref()?.matrix(name)
    }

    /// The pooled pointwise log-likelihood matrix (draws × observations)
    /// from the `log_lik` generated quantity, by the Stan convention.
    /// `None` until the GQ table is attached or when the block defines no
    /// `log_lik`.
    pub fn log_lik(&self) -> Option<Vec<Vec<f64>>> {
        self.gq.as_ref()?.matrix("log_lik")
    }

    /// PSIS-LOO over the attached `log_lik` matrix: `elpd_loo`, its
    /// standard error, `p_loo`, and per-observation Pareto-`k̂`
    /// diagnostics.
    ///
    /// # Errors
    /// [`InferenceError::Usage`] when no GQ table is attached (run
    /// [`Session::generated_quantities`] or [`Session::loo`]) or the block
    /// defines no `log_lik`.
    pub fn loo(&self) -> Result<ElpdEstimate, InferenceError> {
        Ok(psis_loo(&self.require_log_lik()?))
    }

    /// WAIC over the attached `log_lik` matrix.
    ///
    /// # Errors
    /// Same as [`Fit::loo`].
    pub fn waic(&self) -> Result<ElpdEstimate, InferenceError> {
        Ok(waic(&self.require_log_lik()?))
    }

    fn require_log_lik(&self) -> Result<Vec<Vec<f64>>, InferenceError> {
        let ll = self.log_lik().ok_or_else(|| {
            InferenceError::Usage(
                "no pointwise log-likelihood: attach generated quantities and define `log_lik` \
                 in the generated quantities block"
                    .to_string(),
            )
        })?;
        if ll.is_empty() {
            return Err(InferenceError::Usage(
                "the fit has no draws to criticize".to_string(),
            ));
        }
        Ok(ll)
    }

    /// Flattens the fit into the legacy [`Posterior`] shape (pooled draws,
    /// total divergences) for reporting code that predates chain-first
    /// fits.
    pub fn to_posterior(&self) -> Posterior {
        Posterior {
            names: self.names.clone(),
            draws: self.pooled_draws(),
            divergences: self.divergences(),
            wall_time: self.wall_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DeepStan;

    const COIN: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
    "#;

    fn coin_data() -> Vec<(&'static str, Value<f64>)> {
        vec![
            ("N", Value::Int(10)),
            ("x", Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1])),
        ]
    }

    #[test]
    fn multi_chain_nuts_recovers_the_conjugate_posterior() {
        let program = DeepStan::compile(COIN).unwrap();
        let fit = program
            .session(&coin_data())
            .unwrap()
            .chains(4)
            .seed(3)
            .run(Method::Nuts(NutsSettings {
                warmup: 200,
                samples: 300,
                ..Default::default()
            }))
            .unwrap();
        assert_eq!(fit.n_chains(), 4);
        assert_eq!(fit.chains[0].draws.len(), 300);
        // Posterior is Beta(8, 4): mean 2/3.
        let s = fit.summary("z").unwrap();
        assert!((s.mean - 2.0 / 3.0).abs() < 0.05, "{}", s.mean);
        let rhat = fit.split_rhat("z").unwrap();
        assert!(rhat < 1.05, "rhat {rhat}");
        assert!(fit.ess("z").unwrap() > 100.0);
        // Chains differ (different seeds) but agree in distribution.
        assert_ne!(fit.chains[0].draws[0], fit.chains[1].draws[0]);
    }

    #[test]
    fn single_chain_matches_across_backends_and_methods() {
        let program = DeepStan::compile(COIN).unwrap();
        let settings = NutsSettings {
            warmup: 200,
            samples: 400,
            seed: 3,
            ..Default::default()
        };
        let compiled = program
            .session(&coin_data())
            .unwrap()
            .run(Method::Nuts(settings.clone()))
            .unwrap();
        let reference = program
            .session(&coin_data())
            .unwrap()
            .reference(true)
            .run(Method::Nuts(settings))
            .unwrap();
        for fit in [&compiled, &reference] {
            let s = fit.summary("z").unwrap();
            assert!((s.mean - 2.0 / 3.0).abs() < 0.05, "{}", s.mean);
        }
        let advi = program
            .session(&coin_data())
            .unwrap()
            .seed(9)
            .run(Method::Advi(AdviConfig {
                steps: 800,
                ..Default::default()
            }))
            .unwrap();
        let s = advi.summary("z").unwrap();
        assert!((s.mean - 2.0 / 3.0).abs() < 0.15, "{}", s.mean);
    }

    #[test]
    fn importance_sampling_weights_the_prior() {
        let program = DeepStan::compile(COIN).unwrap();
        let fit = program
            .session(&coin_data())
            .unwrap()
            .seed(5)
            .scheme(Scheme::Generative)
            .run(Method::Importance(ImportanceSettings { particles: 4000 }))
            .unwrap();
        assert_eq!(fit.method, FitMethod::Importance);
        let s = fit.summary("z").unwrap();
        assert!((s.mean - 2.0 / 3.0).abs() < 0.05, "{}", s.mean);
        assert!(fit.importance_ess().unwrap() > 100.0);
        let w = fit.weights.as_ref().unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sessions_rebind_on_scheme_change_and_cache_otherwise() {
        let program = DeepStan::compile(COIN).unwrap();
        let mut session = program.session(&coin_data()).unwrap().seed(1);
        let settings = NutsSettings {
            warmup: 100,
            samples: 100,
            ..Default::default()
        };
        let a = session.run(Method::Nuts(settings.clone())).unwrap();
        let b = session
            .run(Method::Importance(ImportanceSettings { particles: 200 }))
            .unwrap();
        assert_eq!(a.names, b.names);
        let mut session = session.scheme(Scheme::Comprehensive);
        let c = session.run(Method::Nuts(settings)).unwrap();
        assert_eq!(c.names, a.names);
    }

    const COIN_GQ: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
        generated quantities {
          vector[N] log_lik;
          int x_rep[N];
          for (i in 1:N) log_lik[i] = bernoulli_lpmf(x[i] | z);
          for (i in 1:N) x_rep[i] = bernoulli_rng(z);
        }
    "#;

    #[test]
    fn generated_quantities_stream_over_the_fit_and_support_loo() {
        let program = DeepStan::compile(COIN_GQ).unwrap();
        let mut session = program.session(&coin_data()).unwrap().chains(2).seed(4);
        let mut fit = session
            .run(Method::Nuts(NutsSettings {
                warmup: 150,
                samples: 200,
                ..Default::default()
            }))
            .unwrap();
        session.generated_quantities(&mut fit).unwrap();
        let gq = fit.gq().unwrap();
        assert_eq!(gq.chains.len(), 2);
        assert_eq!(gq.n_draws(), 400);
        assert!(gq.names.contains(&"log_lik[1]".to_string()));
        assert!(gq.names.contains(&"x_rep[10]".to_string()));
        // Posterior-predictive draws are 0/1 coin flips whose mean tracks z.
        let x_rep = fit.posterior_predictive("x_rep").unwrap();
        assert_eq!(x_rep.len(), 400);
        let flat_mean: f64 = x_rep.iter().flat_map(|row| row.iter()).sum::<f64>()
            / (x_rep.len() * x_rep[0].len()) as f64;
        assert!((flat_mean - 2.0 / 3.0).abs() < 0.1, "{flat_mean}");
        // log_lik matches the analytic bernoulli pointwise terms.
        let ll = fit.log_lik().unwrap();
        assert_eq!(ll[0].len(), 10);
        // LOO and WAIC agree with the analytic leave-one-out posterior
        // predictive: p(x_i = 1 | x_{-i}) = (heads_{-i} + 1) / (N - 1 + 2).
        let xs = [1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0];
        let heads: f64 = xs.iter().sum();
        let exact: f64 = xs
            .iter()
            .map(|&x| {
                let p1 = (heads - x + 1.0) / 11.0;
                if x == 1.0 {
                    p1.ln()
                } else {
                    (1.0 - p1).ln()
                }
            })
            .sum();
        let loo = fit.loo().unwrap();
        let w = fit.waic().unwrap();
        assert!((loo.elpd - exact).abs() < 0.35, "{} vs {exact}", loo.elpd);
        assert!((w.elpd - exact).abs() < 0.35, "{} vs {exact}", w.elpd);
        assert!(loo.max_khat() < 0.7, "khat {}", loo.max_khat());
        assert!(loo.p_eff > 0.0 && loo.se > 0.0);
    }

    #[test]
    fn gq_streams_are_reproducible_per_chain_and_draw() {
        let program = DeepStan::compile(COIN_GQ).unwrap();
        let settings = NutsSettings {
            warmup: 100,
            samples: 80,
            ..Default::default()
        };
        let mut s1 = program.session(&coin_data()).unwrap().chains(2).seed(9);
        let mut fit1 = s1.run(Method::Nuts(settings.clone())).unwrap();
        s1.generated_quantities(&mut fit1).unwrap();
        // A fresh session with the same seed reproduces the table exactly.
        let mut s2 = program.session(&coin_data()).unwrap().chains(2).seed(9);
        let mut fit2 = s2.run(Method::Nuts(settings)).unwrap();
        s2.generated_quantities(&mut fit2).unwrap();
        assert_eq!(fit1.gq, fit2.gq);
        // Re-evaluating chain 1's draws alone (chain coordinate preserved in
        // the driver's seeding) gives the same rows as the sharded run: the
        // per-(chain,draw) streams are independent of scheduling.
        let model = program.bind(&coin_data()).unwrap();
        let mut ws = model.gq_workspace().unwrap();
        let mut row = Vec::new();
        model
            .generated_quantities_into(
                &mut ws,
                &fit1.chains[1].draws[5],
                true,
                inference::predictive::draw_seed(9, 1, 5),
                &mut row,
            )
            .unwrap();
        assert_eq!(row, fit1.gq.as_ref().unwrap().chains[1][5]);
    }

    #[test]
    fn prior_predictive_simulates_from_the_prior() {
        let program = DeepStan::compile(COIN_GQ).unwrap();
        let mut session = program.session(&coin_data()).unwrap().seed(11);
        let table = session.prior_predictive(200).unwrap();
        assert_eq!(table.chains.len(), 1);
        assert_eq!(table.n_draws(), 200);
        // Under the uniform prior on z, replicated flips are fair on
        // average.
        let m = table.matrix("x_rep").unwrap();
        let mean: f64 = m.iter().flat_map(|r| r.iter()).sum::<f64>() / (m.len() as f64 * 10.0);
        assert!((mean - 0.5).abs() < 0.1, "{mean}");
    }

    #[test]
    fn predictive_api_misuse_reports_usage_errors() {
        // No GQ block.
        let program = DeepStan::compile(COIN).unwrap();
        let mut session = program.session(&coin_data()).unwrap().seed(1);
        let mut fit = session
            .run(Method::Importance(ImportanceSettings { particles: 50 }))
            .unwrap();
        assert!(matches!(
            session.generated_quantities(&mut fit),
            Err(InferenceError::Usage(_))
        ));
        assert!(matches!(fit.loo(), Err(InferenceError::Usage(_))));
        // GQ block without log_lik: posterior predictive works, loo does
        // not.
        let src = r#"
            data { int N; int<lower=0,upper=1> x[N]; }
            parameters { real<lower=0,upper=1> z; }
            model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
            generated quantities { real odds; odds = z / (1 - z); }
        "#;
        let program = DeepStan::compile(src).unwrap();
        let mut session = program.session(&coin_data()).unwrap().seed(1);
        let mut fit = session
            .run(Method::Importance(ImportanceSettings { particles: 50 }))
            .unwrap();
        let odds = session.posterior_predictive(&mut fit, "odds").unwrap();
        assert_eq!(odds.len(), 50);
        assert!(matches!(
            session.loo(&mut fit),
            Err(InferenceError::Usage(_))
        ));
    }

    #[test]
    fn svi_without_a_guide_is_a_usage_error() {
        let program = DeepStan::compile(COIN).unwrap();
        let err = program
            .session(&coin_data())
            .unwrap()
            .run(Method::Svi(SviSettings::default()))
            .unwrap_err();
        assert!(matches!(err, InferenceError::Usage(_)));
    }
}
