//! The high-level DeepStan API: compile once, bind data, run inference
//! through the chain-first [`Session`](crate::session::Session) pipeline.

use std::fmt;
use std::sync::{Arc, OnceLock};

use gprob::model::ParamSlot;
use gprob::value::{Env, RuntimeError, Value};
use gprob::GModel;
use inference::diagnostics::{summarize, Summary};
use inference::target::{GradTarget, GradTargetMut};
use stan2gprob::{compile, CompileError, Scheme};
use stan_frontend::ast::Program;
use stan_frontend::FrontendError;
use stan_ref::StanModel;

/// Process-wide count of front-end compiles ([`DeepStan::compile`] /
/// [`DeepStan::compile_named`]), the parse-and-translate half of the work a
/// compiled-model cache amortizes (the bind half is counted by
/// [`gprob::model::bind_count`]). Lives in the [`obs`] registry as the
/// counter `compile.count`; monotone; compare deltas.
fn compile_counter() -> &'static obs::Counter {
    static COUNTER: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| obs::counter("compile.count"))
}

/// Number of front-end compiles performed by this process so far (the
/// `compile.count` registry counter).
pub fn compile_count() -> u64 {
    compile_counter().get()
}

/// Any error the end-to-end pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceError {
    /// Lexing, parsing, or semantic checking failed.
    Frontend(FrontendError),
    /// Compilation to GProb failed.
    Compile(CompileError),
    /// The runtime failed while evaluating the model.
    Runtime(RuntimeError),
    /// Misuse of the API (missing guide, wrong scheme, ...).
    Usage(String),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::Frontend(e) => write!(f, "{e}"),
            InferenceError::Compile(e) => write!(f, "{e}"),
            InferenceError::Runtime(e) => write!(f, "{e}"),
            InferenceError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<FrontendError> for InferenceError {
    fn from(e: FrontendError) -> Self {
        InferenceError::Frontend(e)
    }
}
impl From<CompileError> for InferenceError {
    fn from(e: CompileError) -> Self {
        InferenceError::Compile(e)
    }
}
impl From<RuntimeError> for InferenceError {
    fn from(e: RuntimeError) -> Self {
        InferenceError::Runtime(e)
    }
}

/// Entry point: compiles DeepStan source into a [`CompiledProgram`].
pub struct DeepStan;

impl DeepStan {
    /// Parses, checks and compiles a program with all three schemes.
    ///
    /// # Errors
    /// Returns the first frontend or compilation error. A failure of the
    /// *generative* scheme is not an error (most models are non-generative);
    /// it is recorded as `None`.
    pub fn compile(source: &str) -> Result<CompiledProgram, InferenceError> {
        Self::compile_named("model", source)
    }

    /// Like [`DeepStan::compile`] with an explicit model name (used in code
    /// generation and reports).
    ///
    /// # Errors
    /// Same as [`DeepStan::compile`].
    pub fn compile_named(name: &str, source: &str) -> Result<CompiledProgram, InferenceError> {
        compile_counter().inc();
        let ast = {
            let _span = obs::Span::enter("compile.parse");
            stan_frontend::compile_frontend(source)?
        };
        let _span = obs::Span::enter("compile.translate");
        let comprehensive = compile(&ast, Scheme::Comprehensive)?;
        let mixed = compile(&ast, Scheme::Mixed)?;
        let generative = compile(&ast, Scheme::Generative).ok();
        Ok(CompiledProgram {
            name: name.to_string(),
            ast,
            comprehensive,
            mixed,
            generative,
        })
    }
}

/// A fully compiled program: the checked AST plus the GProb translation under
/// each scheme.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Model name.
    pub name: String,
    /// The type-checked source AST.
    pub ast: Program,
    /// Comprehensive-scheme translation (always available).
    pub comprehensive: gprob::GProbProgram,
    /// Mixed-scheme translation (always available).
    pub mixed: gprob::GProbProgram,
    /// Generative-scheme translation, when the model is generative.
    pub generative: Option<gprob::GProbProgram>,
}

/// Settings for a NUTS run, the payload of
/// [`Method::Nuts`](crate::session::Method::Nuts).
#[derive(Debug, Clone)]
pub struct NutsSettings {
    /// Warmup iterations.
    pub warmup: usize,
    /// Kept draws.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for NutsSettings {
    fn default() -> Self {
        NutsSettings {
            warmup: 500,
            samples: 500,
            seed: 0,
            max_depth: 10,
        }
    }
}

impl CompiledProgram {
    /// Names of the model parameters.
    pub fn parameter_names(&self) -> Vec<String> {
        self.ast.parameters.iter().map(|d| d.name.clone()).collect()
    }

    /// The GProb translation for a scheme, if available.
    pub fn scheme(&self, scheme: Scheme) -> Option<&gprob::GProbProgram> {
        match scheme {
            Scheme::Comprehensive => Some(&self.comprehensive),
            Scheme::Mixed => Some(&self.mixed),
            Scheme::Generative => self.generative.as_ref(),
        }
    }

    /// Pyro source code for the mixed-scheme translation.
    pub fn to_pyro(&self) -> String {
        stan2gprob::to_pyro(&self.mixed, &self.name)
    }

    /// NumPyro source code for the mixed-scheme translation.
    pub fn to_numpyro(&self) -> String {
        stan2gprob::to_numpyro(&self.mixed, &self.name)
    }

    /// Binds data to the mixed-scheme translation, producing a runnable
    /// [`GModel`].
    ///
    /// # Errors
    /// Fails if shapes or constraint bounds cannot be evaluated.
    pub fn bind(&self, data: &[(&str, Value<f64>)]) -> Result<GModel, InferenceError> {
        self.bind_with(Scheme::Mixed, data)
    }

    /// Binds data to the translation under a specific scheme.
    ///
    /// # Errors
    /// Fails if the scheme is unavailable or shapes cannot be evaluated.
    pub fn bind_with(
        &self,
        scheme: Scheme,
        data: &[(&str, Value<f64>)],
    ) -> Result<GModel, InferenceError> {
        let program = self
            .scheme(scheme)
            .ok_or_else(|| {
                InferenceError::Usage(format!(
                    "the {} scheme is unavailable for this model",
                    scheme.name()
                ))
            })?
            .clone();
        Ok(GModel::new(program, env_of(data))?)
    }

    /// Binds data to the translation under a specific scheme *without*
    /// sweep lowering or batched scoring ([`GModel::new_scalar`]): every
    /// observation evaluates element by element. This is the comparison
    /// configuration used by the sweep differential suite and the
    /// `sweep-vs-scalar` benchmark rows; inference should use
    /// [`CompiledProgram::bind_with`].
    ///
    /// # Errors
    /// Same as [`CompiledProgram::bind_with`].
    pub fn bind_scalar_with(
        &self,
        scheme: Scheme,
        data: &[(&str, Value<f64>)],
    ) -> Result<GModel, InferenceError> {
        let program = self
            .scheme(scheme)
            .ok_or_else(|| {
                InferenceError::Usage(format!(
                    "the {} scheme is unavailable for this model",
                    scheme.name()
                ))
            })?
            .clone();
        Ok(GModel::new_scalar(program, env_of(data))?)
    }

    /// Binds data to the baseline Stan-semantics interpreter.
    ///
    /// # Errors
    /// Fails if shapes cannot be evaluated.
    pub fn bind_reference(&self, data: &[(&str, Value<f64>)]) -> Result<StanModel, InferenceError> {
        Ok(StanModel::new(&self.ast, env_of(data))?)
    }
}

/// [`GradTarget`] adapter for the slot-resolved GProb runtime (allocating
/// path; chains built by a `Session` use the workspace-pooled
/// [`WorkspaceTarget`](crate::session::WorkspaceTarget) instead).
/// Evaluation errors surface as `-inf` plateaus.
pub struct GModelTarget<'a>(pub &'a GModel);

impl GradTarget for GModelTarget<'_> {
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
        self.0
            .log_density_and_grad(q)
            .unwrap_or_else(|_| (f64::NEG_INFINITY, vec![0.0; q.len()]))
    }
}

/// [`GradTarget`] adapter for the baseline Stan-semantics interpreter.
pub struct StanModelTarget<'a>(pub &'a StanModel);

impl GradTarget for StanModelTarget<'_> {
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
        self.0
            .log_density_and_grad(q)
            .unwrap_or_else(|_| (f64::NEG_INFINITY, vec![0.0; q.len()]))
    }
}

/// The reference interpreter has no pooled workspace; its buffered target
/// simply forwards to the allocating path.
impl GradTargetMut for StanModelTarget<'_> {
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
        match self.0.log_density_and_grad(q) {
            Ok((lp, g)) => {
                grad.copy_from_slice(&g);
                lp
            }
            Err(_) => {
                grad.fill(0.0);
                f64::NEG_INFINITY
            }
        }
    }
}

/// No batched backend either: the default per-point loop keeps the
/// reference interpreter usable from batch-driven samplers, bitwise
/// identically to the single-point path.
impl inference::target::GradTargetBatch for StanModelTarget<'_> {}

/// Converts a data slice into an environment.
pub fn env_of(data: &[(&str, Value<f64>)]) -> Env<f64> {
    data.iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// A posterior sample over the model parameters, reported on the constrained
/// scale.
#[derive(Debug, Clone)]
pub struct Posterior {
    /// Flat component names (`mu`, `theta[1]`, ...).
    pub names: Vec<String>,
    /// Constrained draws, one vector of components per draw.
    pub draws: Vec<Vec<f64>>,
    /// Number of divergent transitions (NUTS only).
    pub divergences: usize,
    /// Wall-clock inference time in seconds.
    pub wall_time: f64,
}

/// Pushes unconstrained draws through each parameter's constraint
/// transform — the single implementation shared by [`Posterior`] and the
/// chain-first `Fit` collection.
pub fn constrain_draws(slots: &[ParamSlot], draws_u: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    draws_u
        .into_iter()
        .map(|d| {
            let mut c = Vec::with_capacity(d.len());
            for slot in slots {
                for i in 0..slot.size {
                    c.push(slot.constraint.to_constrained(d[slot.offset + i]));
                }
            }
            c
        })
        .collect()
}

impl Posterior {
    /// Builds a posterior from unconstrained draws by pushing every component
    /// through its constraint transform.
    pub fn from_unconstrained(
        names: Vec<String>,
        slots: &[ParamSlot],
        draws_u: Vec<Vec<f64>>,
        divergences: usize,
        wall_time: f64,
    ) -> Self {
        Posterior {
            names,
            draws: constrain_draws(slots, draws_u),
            divergences,
            wall_time,
        }
    }

    /// Builds a posterior directly from constrained draws.
    pub fn from_constrained(names: Vec<String>, draws: Vec<Vec<f64>>) -> Self {
        Posterior {
            names,
            draws,
            divergences: 0,
            wall_time: 0.0,
        }
    }

    /// Per-component posterior summaries in component order.
    pub fn summaries(&self) -> Vec<(String, Summary)> {
        self.names
            .iter()
            .cloned()
            .zip(summarize(&self.draws))
            .collect()
    }

    /// Summary of one component by exact name (`"mu"`, `"theta[2]"`).
    pub fn summary(&self, name: &str) -> Option<Summary> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(summarize(&self.draws)[idx].clone())
    }

    /// The chain of one component.
    pub fn component(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(self.draws.iter().map(|d| d[idx]).collect())
    }

    /// Means of every component, in component order.
    pub fn means(&self) -> Vec<f64> {
        summarize(&self.draws).into_iter().map(|s| s.mean).collect()
    }

    /// Standard deviations of every component, in component order.
    pub fn stddevs(&self) -> Vec<f64> {
        summarize(&self.draws)
            .into_iter()
            .map(|s| s.stddev)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COIN: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
    "#;

    fn coin_data() -> Vec<(&'static str, Value<f64>)> {
        vec![
            ("N", Value::Int(10)),
            ("x", Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1])),
        ]
    }

    #[test]
    fn end_to_end_coin_posterior_matches_conjugate_answer() {
        use crate::session::Method;
        let program = DeepStan::compile(COIN).unwrap();
        let settings = NutsSettings {
            warmup: 200,
            samples: 400,
            seed: 3,
            ..Default::default()
        };
        // Posterior is Beta(8, 4): mean 2/3, sd ~ 0.1307.
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let fit = program
                .session(&coin_data())
                .unwrap()
                .scheme(scheme)
                .run(Method::Nuts(settings.clone()))
                .unwrap();
            let s = fit.summary("z").unwrap();
            assert!((s.mean - 2.0 / 3.0).abs() < 0.05, "{scheme:?}: {}", s.mean);
            assert!((s.stddev - 0.1307).abs() < 0.05, "{scheme:?}: {}", s.stddev);
        }
        let reference = program
            .session(&coin_data())
            .unwrap()
            .reference(true)
            .run(Method::Nuts(settings))
            .unwrap();
        let s = reference.summary("z").unwrap();
        assert!((s.mean - 2.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn python_backends_are_exposed() {
        let program = DeepStan::compile(COIN).unwrap();
        assert!(program.to_pyro().contains("pyro.sample"));
        assert!(program.to_numpyro().contains("numpyro"));
        assert!(program.generative.is_some());
        assert_eq!(program.parameter_names(), vec!["z"]);
    }

    #[test]
    fn compile_errors_are_propagated() {
        let err = DeepStan::compile("data { int N; }").unwrap_err();
        assert!(matches!(err, InferenceError::Frontend(_)));
        let err = DeepStan::compile("parameters { real s; } model { s ~ normal(0,1) T[0,]; }")
            .unwrap_err();
        assert!(matches!(err, InferenceError::Compile(_)));
    }

    #[test]
    fn runtime_errors_surface_from_nuts() {
        // cov_exp_quad is in the type checker's table but not the runtime —
        // the same class of failure as accel_gp/gp_regr in the paper.
        let src = r#"
            data { int N; real y[N]; }
            parameters { real mu; }
            model {
              real k;
              k = sum(cov_exp_quad(y, 1.0, 1.0));
              y ~ normal(mu + k, 1);
            }
        "#;
        let program = DeepStan::compile(src).unwrap();
        let data = vec![("N", Value::Int(2)), ("y", Value::Vector(vec![0.0, 1.0]))];
        let err = program
            .session(&data)
            .unwrap()
            .run(crate::session::Method::Nuts(NutsSettings::default()))
            .unwrap_err();
        assert!(matches!(err, InferenceError::Runtime(_)));
    }

    #[test]
    fn advi_runs_on_the_coin_model() {
        let program = DeepStan::compile(COIN).unwrap();
        let fit = program
            .session(&coin_data())
            .unwrap()
            .run(crate::session::Method::Advi(inference::advi::AdviConfig {
                steps: 800,
                seed: 9,
                ..Default::default()
            }))
            .unwrap();
        let s = fit.summary("z").unwrap();
        assert!((s.mean - 2.0 / 3.0).abs() < 0.15, "{}", s.mean);
    }
}
