//! `deepstan` — the user-facing API of the reproduction, and the DeepStan
//! extensions of Section 5 of the paper.
//!
//! The [`DeepStan`] type ties the whole pipeline together: parse and check a
//! Stan (or DeepStan) program, compile it with any of the three schemes, bind
//! data, and run inference — NUTS through either runtime (compiled GProb, or
//! the baseline Stan-semantics interpreter), stochastic variational inference
//! with an explicit guide, or mean-field ADVI.
//!
//! The DeepStan extensions are implemented here:
//!
//! * [`nn`] — a small dense neural-network library (the PyTorch stand-in),
//!   with named parameters following the `mlp.l1.weight` convention of
//!   Section 5.3.
//! * [`networks`] — the bridge that makes `networks { ... }` declarations
//!   callable from model and guide code, for both *lifted* (Bayesian) and
//!   *learnable* networks (the `pyro.random_module` analog).
//! * [`svi`] — the model/guide ELBO used for explicit variational guides
//!   (Section 5.1), the VAE (Section 5.2) and Bayesian neural networks
//!   (Section 5.3).
//!
//! # Quick start
//!
//! ```
//! use deepstan::DeepStan;
//! use gprob::value::Value;
//!
//! let program = DeepStan::compile(r#"
//!     data { int N; int<lower=0,upper=1> x[N]; }
//!     parameters { real<lower=0,upper=1> z; }
//!     model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
//! "#).unwrap();
//! let data = vec![
//!     ("N", Value::Int(10)),
//!     ("x", Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1])),
//! ];
//! let settings = deepstan::NutsSettings { warmup: 150, samples: 300, seed: 1, ..Default::default() };
//! let posterior = program.nuts(&data, &settings).unwrap();
//! let z = posterior.summary("z").unwrap();
//! assert!((z.mean - 8.0 / 12.0).abs() < 0.1); // Beta(8, 4) posterior mean
//! ```

pub mod api;
pub mod networks;
pub mod nn;
pub mod svi;

pub use api::{CompiledProgram, DeepStan, InferenceError, NutsSettings, Posterior};
pub use networks::NetworkRegistry;
pub use nn::{Activation, LayerSpec, MlpSpec};
pub use svi::{SviSettings, VariationalFit};
