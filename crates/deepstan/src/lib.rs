//! `deepstan` — the user-facing API of the reproduction, and the DeepStan
//! extensions of Section 5 of the paper.
//!
//! The [`DeepStan`] type ties the whole pipeline together: parse and check a
//! Stan (or DeepStan) program, compile it with any of the three schemes, and
//! open an inference [`Session`] on it. Sessions are chain-first and
//! method-agnostic, mirroring the `MCMC` API of Pyro / NumPyro the paper
//! runs its evaluation through: one builder configures the compilation
//! scheme, chain count, seeding and initialization, and a single
//! [`Session::run`] call executes NUTS, mean-field ADVI, guide-based SVI, or
//! likelihood-weighting importance sampling. Every method returns the same
//! [`Fit`] type — per-chain posterior draws, cross-chain split-R̂ / ESS,
//! divergence counts and wall time — and chains shard over threads, each
//! with its own pooled `gprob` density workspace.
//!
//! The DeepStan extensions are implemented here:
//!
//! * [`nn`] — a small dense neural-network library (the PyTorch stand-in),
//!   with named parameters following the `mlp.l1.weight` convention of
//!   Section 5.3.
//! * [`networks`] — the bridge that makes `networks { ... }` declarations
//!   callable from model and guide code, for both *lifted* (Bayesian) and
//!   *learnable* networks (the `pyro.random_module` analog).
//! * [`svi`] — the model/guide ELBO used for explicit variational guides
//!   (Section 5.1), the VAE (Section 5.2) and Bayesian neural networks
//!   (Section 5.3), reachable through `Method::Svi`.
//!
//! # Quick start
//!
//! ```
//! use deepstan::{DeepStan, Method, NutsSettings};
//! use gprob::value::Value;
//!
//! let program = DeepStan::compile(r#"
//!     data { int N; int<lower=0,upper=1> x[N]; }
//!     parameters { real<lower=0,upper=1> z; }
//!     model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
//! "#).unwrap();
//! let data = vec![
//!     ("N", Value::Int(10)),
//!     ("x", Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1])),
//! ];
//! let settings = NutsSettings { warmup: 150, samples: 300, seed: 1, ..Default::default() };
//! let fit = program
//!     .session(&data)
//!     .unwrap()
//!     .chains(2)
//!     .run(Method::Nuts(settings))
//!     .unwrap();
//! let z = fit.summary("z").unwrap();
//! assert!((z.mean - 8.0 / 12.0).abs() < 0.1); // Beta(8, 4) posterior mean
//! assert!(fit.split_rhat("z").unwrap() < 1.1); // chains agree
//! ```

pub mod api;
pub mod networks;
pub mod nn;
pub mod session;
pub mod svi;

pub use api::{CompiledProgram, DeepStan, InferenceError, NutsSettings, Posterior};
pub use networks::NetworkRegistry;
pub use nn::{Activation, LayerSpec, MlpSpec};
pub use session::{
    compare_by_loo, ChainResult, Fit, FitMethod, ImportanceSettings, Init, Method, Session,
    WorkspacePool, WorkspaceTarget,
};
pub use svi::{SviSettings, VariationalFit};
