//! Shared harness code for the benchmark binaries that regenerate the
//! paper's tables and figures.
//!
//! The binaries in `src/bin/` print the same rows/series as the paper:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_features`   | Table 1 — prevalence of non-generative features |
//! | `table2_generality` | Table 2 — successful 1-iteration inference runs |
//! | `table3_posteriordb`| Table 3 — accuracy ✓/❍/✗, durations, speedups |
//! | `table4_accuracy`   | Table 4 — mean relative error per model/scheme |
//! | `table5_speed`      | Table 5 — mean(std) duration over seeded runs |
//! | `fig10_multimodal`  | Figure 10 — posterior histograms (NUTS, VI, ADVI) |
//! | `rq5_vae`           | Section 6.2 — VAE pairwise-F1 clustering |
//! | `rq5_bnn`           | Section 6.2 — Bayesian MLP accuracy & agreement |
//!
//! Iteration counts are scaled by the `DEEPSTAN_SCALE` environment variable
//! (default 1.0); use e.g. `DEEPSTAN_SCALE=0.2` for a quick smoke run.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use deepstan::{DeepStan, Method, NutsSettings, Posterior};
use gprob::value::Value;
use inference::diagnostics::accuracy_pass;
use model_zoo::{ExpectedFailure, ModelEntry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stan2gprob::Scheme;

/// A backend configuration evaluated in the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Baseline: Stan semantics interpreter (the paper's "Stan" column).
    StanRef,
    /// GProb runtime, comprehensive scheme (the paper's NumPyro Compr.).
    GProbComprehensive,
    /// GProb runtime, mixed scheme.
    GProbMixed,
    /// GProb runtime, generative scheme (when available).
    GProbGenerative,
}

impl BackendKind {
    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::StanRef => "Stan(ref)",
            BackendKind::GProbComprehensive => "Compr.",
            BackendKind::GProbMixed => "Mixed",
            BackendKind::GProbGenerative => "Gener.",
        }
    }

    /// All backends, in table order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::StanRef,
            BackendKind::GProbComprehensive,
            BackendKind::GProbMixed,
            BackendKind::GProbGenerative,
        ]
    }
}

/// Result of running one backend on one model.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Whether sampling completed.
    pub ok: bool,
    /// Error message when it did not.
    pub error: Option<String>,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Posterior (when sampling completed).
    pub posterior: Option<Posterior>,
}

/// Global iteration scaling from the `DEEPSTAN_SCALE` environment variable.
pub fn scale() -> f64 {
    std::env::var("DEEPSTAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales an iteration count, keeping a sensible minimum.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(20)
}

/// NUTS settings used for the backend columns.
pub fn backend_settings(seed: u64, cost: u32) -> NutsSettings {
    let divisor = cost.max(1) as usize;
    NutsSettings {
        warmup: scaled(300 / divisor + 50),
        samples: scaled(600 / divisor + 100),
        seed,
        max_depth: 10,
    }
}

/// NUTS settings used to build the reference posterior (longer run, like the
/// PosteriorDB references).
pub fn reference_settings(seed: u64, cost: u32) -> NutsSettings {
    let s = backend_settings(seed, cost);
    NutsSettings {
        warmup: s.warmup * 2,
        samples: s.samples * 2,
        seed: seed + 1000,
        ..s
    }
}

/// Runs one backend on one corpus model.
pub fn run_backend(entry: &ModelEntry, backend: BackendKind, seed: u64) -> RunOutcome {
    let start = Instant::now();
    let result = (|| -> Result<Posterior, String> {
        let program =
            DeepStan::compile_named(entry.name, entry.source).map_err(|e| e.to_string())?;
        let data = entry.dataset(seed);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let settings = if backend == BackendKind::StanRef {
            reference_settings(seed, entry.cost)
        } else {
            backend_settings(seed, entry.cost)
        };
        let mut session = program.session(&data_refs).map_err(|e| e.to_string())?;
        session = match backend {
            BackendKind::StanRef => session.reference(true),
            BackendKind::GProbComprehensive => session.scheme(Scheme::Comprehensive),
            BackendKind::GProbMixed => session.scheme(Scheme::Mixed),
            BackendKind::GProbGenerative => session.scheme(Scheme::Generative),
        };
        session
            .run(Method::Nuts(settings))
            .map(|fit| fit.to_posterior())
            .map_err(|e| e.to_string())
    })();
    let seconds = start.elapsed().as_secs_f64();
    match result {
        Ok(p) => RunOutcome {
            ok: true,
            error: None,
            seconds,
            posterior: Some(p),
        },
        Err(e) => RunOutcome {
            ok: false,
            error: Some(e),
            seconds,
            posterior: None,
        },
    }
}

/// Compares a posterior against a reference with the paper's criterion; the
/// returned pair is `(all components pass, mean relative error)`.
pub fn accuracy_vs_reference(posterior: &Posterior, reference: &Posterior) -> (bool, f64) {
    let means = posterior.means();
    let ref_means = reference.means();
    let ref_sds = reference.stddevs();
    let mut pass = true;
    let mut rel = 0.0;
    let n = means.len().min(ref_means.len());
    for i in 0..n {
        if !accuracy_pass(means[i], ref_means[i], ref_sds[i]) {
            pass = false;
        }
        rel += (means[i] - ref_means[i]).abs() / ref_sds[i].max(1e-12);
    }
    (pass, rel / n.max(1) as f64)
}

/// The cheap "does one inference transition run" check behind Table 2.
pub fn one_iteration_runs(entry: &ModelEntry, scheme: Scheme, interpreted: bool) -> bool {
    let Ok(program) = DeepStan::compile_named(entry.name, entry.source) else {
        return false;
    };
    if program.scheme(scheme).is_none() {
        return false;
    }
    let data = entry.dataset(11);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    if interpreted {
        // "Pyro analog": one generative run through the tree-walking
        // interpreter plus one density evaluation.
        let Ok(model) = program.bind_with(scheme, &data_refs) else {
            return false;
        };
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(1)));
        if model.run_prior(rng).is_err() {
            return false;
        }
        model
            .log_density_f64(&vec![0.1; model.dim()])
            .map(|lp| lp.is_finite() || lp == f64::NEG_INFINITY)
            .unwrap_or(false)
    } else {
        // "NumPyro analog": one NUTS transition (gradient path).
        let settings = NutsSettings {
            warmup: 1,
            samples: 1,
            seed: 1,
            max_depth: 5,
        };
        program
            .session(&data_refs)
            .and_then(|mut s| {
                s = s.scheme(scheme);
                s.run(Method::Nuts(settings))
            })
            .is_ok()
    }
}

/// Geometric mean of a set of positive ratios.
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Formats a duration in the paper's `hh:mm:ss` style.
pub fn fmt_duration(seconds: f64) -> String {
    let total = seconds.round() as u64;
    format!(
        "{:02}:{:02}:{:05.2}",
        total / 3600,
        (total % 3600) / 60,
        seconds % 60.0
    )
}

/// Expected-failure helper for the tables.
pub fn expected_failure_mark(e: Option<ExpectedFailure>) -> &'static str {
    match e {
        Some(_) => "✗ (expected)",
        None => "",
    }
}

// ---------------------------------------------------------------------------
// Clustering / classification metrics for the RQ5 experiments.
// ---------------------------------------------------------------------------

/// Plain k-means over row vectors; returns the cluster index of every row.
pub fn kmeans(points: &[Vec<f64>], k: usize, iterations: usize, seed: u64) -> Vec<usize> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = points.first().map(|p| p.len()).unwrap_or(0);
    let mut centers: Vec<Vec<f64>> = (0..k)
        .map(|_| points[rng.gen_range(0..points.len())].clone())
        .collect();
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iterations {
        for (i, p) in points.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, center) in centers.iter().enumerate() {
                let d: f64 = p.iter().zip(center).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            assignment[i] = best.1;
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for j in 0..dim {
                sums[a][j] += p[j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centers[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
    }
    assignment
}

/// Pairwise precision / recall / F1 of a clustering against true labels — the
/// VAE metric of Section 6.2.
pub fn pairwise_f1(clusters: &[usize], labels: &[i64]) -> (f64, f64, f64) {
    let n = clusters.len();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            let same_cluster = clusters[i] == clusters[j];
            let same_label = labels[i] == labels[j];
            match (same_cluster, same_label) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_constant_ratios() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_f1_perfect_and_degenerate() {
        let labels = vec![1, 1, 2, 2];
        let perfect = vec![0, 0, 1, 1];
        let (_, _, f1) = pairwise_f1(&perfect, &labels);
        assert!((f1 - 1.0).abs() < 1e-12);
        let all_one = vec![0, 0, 0, 0];
        let (p, r, _) = pairwise_f1(&all_one, &labels);
        assert!(r > 0.99 && p < 0.5);
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + (i % 3) as f64 * 0.01, 0.0]);
            points.push(vec![5.0 + (i % 3) as f64 * 0.01, 5.0]);
        }
        let assign = kmeans(&points, 2, 20, 1);
        // All even indices (first blob) share a cluster distinct from odds.
        let first = assign[0];
        assert!(assign.iter().step_by(2).all(|&a| a == first));
        assert!(assign.iter().skip(1).step_by(2).all(|&a| a != first));
    }

    #[test]
    fn table2_check_accepts_the_coin_model() {
        let entry = model_zoo::find("coin").unwrap();
        assert!(one_iteration_runs(&entry, Scheme::Comprehensive, true));
        assert!(one_iteration_runs(&entry, Scheme::Mixed, false));
        let truncated = model_zoo::find("truncated_normal").unwrap();
        assert!(!one_iteration_runs(&truncated, Scheme::Comprehensive, true));
    }

    #[test]
    fn accuracy_comparison_detects_mismatches() {
        let a = Posterior::from_constrained(vec!["x".into()], vec![vec![1.0], vec![1.2]]);
        let b = Posterior::from_constrained(vec!["x".into()], vec![vec![1.05], vec![1.15]]);
        let (ok, rel) = accuracy_vs_reference(&a, &b);
        assert!(ok);
        assert!(rel < 0.3);
        let far = Posterior::from_constrained(vec!["x".into()], vec![vec![9.0], vec![9.1]]);
        let (ok, _) = accuracy_vs_reference(&far, &b);
        assert!(!ok);
    }
}
