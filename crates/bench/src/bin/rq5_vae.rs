//! RQ5 (Section 6.2) — the Variational Auto-Encoder experiment.
//!
//! A VAE written in DeepStan (Figure 8, flattened to a pixel vector) is
//! trained with SVI on the synthetic digits data set. The latent code of each
//! test image is clustered with k-means (k = 10) and the clustering is scored
//! with the pairwise-F1 metric, as in the paper (which reports F1 ≈ 0.41 for
//! hand-written Pyro and 0.43 for DeepStan).

use deepstan::{Activation, DeepStan, MlpSpec, SviSettings};
use deepstan_bench::{kmeans, pairwise_f1, scaled};
use gprob::value::Value;
use model_zoo::{synthetic_digits, VAE_SOURCE};

fn main() {
    let side = 8usize;
    let npix = side * side;
    let nz = 5usize;
    let n_train = scaled(60).min(200);
    let n_test = scaled(120).min(400);
    let (train, _) = synthetic_digits(n_train, side, 0.05, 1);
    let (test, test_labels) = synthetic_digits(n_test, side, 0.05, 2);

    let decoder = MlpSpec::new("decoder", &[nz, 16, npix], Activation::Tanh);
    let encoder = MlpSpec::new("encoder", &[npix, 16, 2 * nz], Activation::Tanh);
    let networks = vec![decoder.clone(), encoder.clone()];

    let program = DeepStan::compile_named("vae", VAE_SOURCE).expect("vae compiles");

    // Train on each image in turn (stochastic over the data set): carry the
    // learnable network parameters from one image to the next.
    println!("training VAE on {n_train} synthetic digits ({npix} pixels, latent dim {nz})...");
    let mut fit = None;
    let steps_per_image = scaled(40).max(10);
    for (i, img) in train.iter().enumerate() {
        let data = vec![
            ("nz", Value::Int(nz as i64)),
            ("npix", Value::Int(npix as i64)),
            (
                "x",
                Value::IntArray(img.iter().map(|&p| p as i64).collect()),
            ),
        ];
        let settings = SviSettings {
            steps: steps_per_image,
            lr: 0.01,
            seed: 10 + i as u64,
            ..Default::default()
        };
        let mut this_fit = program.svi(&data, &networks, &settings).expect("svi step");
        if let Some(prev) = fit {
            // Keep the freshly updated parameters (svi starts from scratch per
            // call, so warm-start by averaging toward the previous fit).
            let prev: deepstan::VariationalFit = prev;
            for (name, values) in this_fit.network_params.iter_mut() {
                if let Some(old) = prev.network_params.get(name) {
                    for (v, o) in values.iter_mut().zip(old) {
                        *v = 0.5 * *v + 0.5 * *o;
                    }
                }
            }
        }
        fit = Some(this_fit);
    }
    let fit = fit.expect("at least one training image");

    // Encode the test images with the trained encoder and cluster.
    let mut latents = Vec::with_capacity(test.len());
    let mut params = std::collections::HashMap::new();
    for (name, values) in &fit.network_params {
        params.insert(name.clone(), values.clone());
    }
    for img in &test {
        let encoded = encoder.forward(&params, img).expect("encoder forward");
        latents.push(encoded[..nz].to_vec());
    }
    let clusters = kmeans(&latents, 10, 50, 7);
    let (precision, recall, f1) = pairwise_f1(&clusters, &test_labels);

    println!("\nRQ5 (VAE): pairwise clustering quality of the latent space");
    println!("  precision = {precision:.2}, recall = {recall:.2}, F1 = {f1:.2}");
    println!("  paper: Pyro F1 = 0.41, DeepStan F1 = 0.43 (MNIST, latent dim 5, KMeans k=10)");

    // Sanity check the shape of the result: better than random assignment.
    let random: Vec<usize> = (0..test_labels.len()).map(|i| i % 10).collect();
    let (_, _, f1_random) = pairwise_f1(&random, &test_labels);
    println!("  random-assignment baseline F1 = {f1_random:.2}");
}
