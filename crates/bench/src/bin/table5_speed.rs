//! Table 5 (appendix) — mean (std) inference duration over several seeded
//! runs, per model and backend.

use deepstan_bench::{run_backend, BackendKind};

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let m = xs.iter().sum::<f64>() / n;
    let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    (m, v.sqrt())
}

fn main() {
    let runs: u64 = std::env::var("DEEPSTAN_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let corpus = model_zoo::corpus();
    println!(
        "{:<28} {:>16} {:>16} {:>16} {:>16}",
        "Model", "Stan(ref)", "Compr.", "Mixed", "Gener."
    );
    for entry in corpus
        .iter()
        .filter(|e| e.should_run() && e.name != "multimodal_guide")
    {
        let mut cells = Vec::new();
        for backend in BackendKind::all() {
            let mut times = Vec::new();
            let mut failed = false;
            for seed in 0..runs {
                let outcome = run_backend(entry, backend, 100 + seed);
                if outcome.ok {
                    times.push(outcome.seconds);
                } else {
                    failed = true;
                    break;
                }
            }
            cells.push(if failed || times.is_empty() {
                "✗".to_string()
            } else {
                let (m, s) = mean_std(&times);
                format!("{m:.2}s ({s:.2})")
            });
        }
        println!(
            "{:<28} {:>16} {:>16} {:>16} {:>16}",
            entry.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nDurations are wall-clock seconds, mean (std) over {runs} seeded runs.");
}
