//! Telemetry overhead guard: the gradient evaluation path must cost the
//! same with telemetry live as with it disabled.
//!
//! The `obs` contract says the per-eval path carries **no**
//! instrumentation — inference loops accumulate locally and flush once
//! per chain — so flipping [`obs::set_enabled`] must not move the pinned
//! `gprob_grad_dprog_jit`-style eval rate. This guard measures exactly
//! that: interleaved rounds of a fixed gradient-eval batch with telemetry
//! on and off (alternating order within each round to cancel thermal and
//! scheduler drift), compared by median round time. It exits nonzero when
//! the medians differ by more than 3%, which catches any future change
//! that sneaks an `Instant::now` or atomic into the hot loop.
//!
//! ```text
//! cargo run --release -p deepstan_bench --bin obs_overhead
//! ```

use std::process::ExitCode;
use std::time::Instant;

use deepstan::DeepStan;
use gprob::value::Value;

const ROUNDS: usize = 31;
const EVALS_PER_ROUND: usize = 4_000;
const TOLERANCE: f64 = 0.03;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() -> ExitCode {
    let entry = model_zoo::find("eight_schools_centered").expect("corpus model");
    let program = DeepStan::compile_named(entry.name, entry.source).expect("compile");
    let data = entry.dataset(5);
    let data_refs: Vec<(&str, Value<f64>)> =
        data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let gmodel = program.bind(&data_refs).expect("bind");
    let theta = vec![0.1; gmodel.dim()];
    let mut ws = gmodel.grad_workspace();
    let mut g = vec![0.0; gmodel.dim()];

    let mut run_batch = |enabled: bool| -> f64 {
        obs::set_enabled(enabled);
        // Exercise the surrounding telemetry surface while timing the
        // evals, so "enabled" is a realistic live-registry state.
        if enabled {
            obs::counter("obs_overhead.rounds").inc();
        }
        let start = Instant::now();
        for _ in 0..EVALS_PER_ROUND {
            gmodel
                .log_density_and_grad_with(&mut ws, std::hint::black_box(&theta), &mut g)
                .expect("grad eval");
            std::hint::black_box(&g);
        }
        start.elapsed().as_secs_f64()
    };

    // Warm up caches and the JIT'd code path before measuring.
    run_batch(true);
    run_batch(false);

    let mut on = Vec::with_capacity(ROUNDS);
    let mut off = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which mode goes first so drift hits both equally.
        if round % 2 == 0 {
            on.push(run_batch(true));
            off.push(run_batch(false));
        } else {
            off.push(run_batch(false));
            on.push(run_batch(true));
        }
    }
    obs::set_enabled(true);

    let on_med = median(&mut on);
    let off_med = median(&mut off);
    let per_eval_ns = |secs: f64| secs / EVALS_PER_ROUND as f64 * 1e9;
    let ratio = on_med / off_med;
    println!(
        "obs_overhead: gprob_grad_dprog_jit eval, {EVALS_PER_ROUND} evals x {ROUNDS} rounds\n\
         telemetry on : {:.1} ns/eval (median round {:.4}s)\n\
         telemetry off: {:.1} ns/eval (median round {:.4}s)\n\
         ratio on/off : {ratio:.4}",
        per_eval_ns(on_med),
        on_med,
        per_eval_ns(off_med),
        off_med,
    );
    if (ratio - 1.0).abs() > TOLERANCE {
        eprintln!(
            "obs_overhead: FAIL - telemetry moved the gradient path by more than {:.0}%",
            TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("obs_overhead: OK (within {:.0}%)", TOLERANCE * 100.0);
    ExitCode::SUCCESS
}
