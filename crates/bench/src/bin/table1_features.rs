//! Table 1 — prevalence of the non-generative Stan features over the corpus.

use stan2gprob::features::{analyze_features, FeatureStats};

fn main() {
    let corpus = model_zoo::corpus();
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    for entry in &corpus {
        match stan_frontend::parse_program(entry.source) {
            Ok(ast) => {
                let report = analyze_features(&ast);
                rows.push((entry.name, report.clone()));
                reports.push(report);
            }
            Err(e) => println!("{:32} parse error: {e}", entry.name),
        }
    }
    let stats = FeatureStats::from_reports(&reports);

    println!(
        "Table 1: Stan features that defy generative translation (corpus of {} models)\n",
        stats.total
    );
    println!("{:<22} {:>8} {:>8}", "Feature", "models", "%");
    println!(
        "{:<22} {:>8} {:>7.0}%",
        "Left expression",
        stats.with_left_expression,
        stats.pct_left_expression()
    );
    println!(
        "{:<22} {:>8} {:>7.0}%",
        "Multiple updates",
        stats.with_multiple_updates,
        stats.pct_multiple_updates()
    );
    println!(
        "{:<22} {:>8} {:>7.0}%",
        "Implicit prior",
        stats.with_implicit_prior,
        stats.pct_implicit_prior()
    );
    println!(
        "{:<22} {:>8} {:>7.0}%",
        "Any (non-generative)",
        stats.non_generative,
        100.0 * stats.non_generative as f64 / stats.total.max(1) as f64
    );
    println!("\nPaper (531 example-models): left expression 15%, multiple updates 8%, implicit prior 58%.\n");

    println!("Per-model detail:");
    for (name, report) in rows {
        let mut tags = Vec::new();
        if !report.left_expressions.is_empty() {
            tags.push("left-expr");
        }
        if !report.multiple_updates.is_empty() {
            tags.push("multi-update");
        }
        if !report.implicit_priors.is_empty() {
            tags.push("implicit-prior");
        }
        if report.uses_target_increment {
            tags.push("target+=");
        }
        println!(
            "  {:32} {}",
            name,
            if tags.is_empty() {
                "—".to_string()
            } else {
                tags.join(", ")
            }
        );
    }
}
