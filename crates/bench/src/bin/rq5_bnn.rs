//! RQ5 (Section 6.2) — the Bayesian multi-layer perceptron experiment.
//!
//! The Figure 9 program lifts all MLP weights to random variables, trains the
//! mean-field guide with SVI on the synthetic digits data set, draws an
//! ensemble of concrete networks from the fitted posterior, and reports the
//! ensemble's classification accuracy and the agreement between two
//! independently trained models — plus the prior-widening ablation
//! (normal(0,1) → normal(0,10)) discussed in the paper.

use std::collections::HashMap;

use deepstan::{Activation, DeepStan, MlpSpec, SviSettings, VariationalFit};
use deepstan_bench::scaled;
use gprob::value::Value;
use model_zoo::{synthetic_digits, BAYESIAN_MLP_SOURCE};

fn build_data(
    images: &[Vec<f64>],
    labels: &[i64],
    nx: usize,
    nh: usize,
    ny: usize,
) -> Vec<(&'static str, Value<f64>)> {
    vec![
        ("batch_size", Value::Int(images.len() as i64)),
        ("nx", Value::Int(nx as i64)),
        ("nh", Value::Int(nh as i64)),
        ("ny", Value::Int(ny as i64)),
        (
            "imgs",
            Value::Array(images.iter().map(|i| Value::Vector(i.clone())).collect()),
        ),
        ("labels", Value::IntArray(labels.to_vec())),
    ]
}

/// Predicts labels with an ensemble of posterior draws of the network
/// parameters (drawn from the fitted mean-field guide).
fn ensemble_predict(
    fit: &VariationalFit,
    spec: &MlpSpec,
    images: &[Vec<f64>],
    ensemble: usize,
    seed: u64,
) -> Vec<i64> {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pairs = [
        ("mlp.l1.weight", "w1_mu", "w1_sigma"),
        ("mlp.l1.bias", "b1_mu", "b1_sigma"),
        ("mlp.l2.weight", "w2_mu", "w2_sigma"),
        ("mlp.l2.bias", "b2_mu", "b2_sigma"),
    ];
    let mut votes = vec![[0usize; 10]; images.len()];
    for _ in 0..ensemble {
        let mut params: HashMap<String, Vec<f64>> = HashMap::new();
        for (target, mu_name, sigma_name) in pairs {
            let mu = &fit.guide_params[mu_name];
            let sigma = &fit.guide_params[sigma_name];
            let values: Vec<f64> = mu
                .iter()
                .zip(sigma)
                .map(|(m, s)| {
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen();
                    m + s.exp().min(5.0)
                        * (-2.0 * u1.ln()).sqrt()
                        * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            params.insert(target.to_string(), values);
        }
        for (i, img) in images.iter().enumerate() {
            let logits = spec.forward(&params, img).expect("forward");
            let best = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(k, _)| k)
                .unwrap_or(0);
            votes[i][best] += 1;
        }
    }
    votes
        .iter()
        .map(|v| (v.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0 + 1) as i64)
        .collect()
}

fn train(
    prior_sd_label: &str,
    steps: usize,
    seed: u64,
    data: &[(&str, Value<f64>)],
    networks: &[MlpSpec],
) -> VariationalFit {
    let source = if prior_sd_label == "wide" {
        BAYESIAN_MLP_SOURCE.replace("normal(0, 1)", "normal(0, 10)")
    } else {
        BAYESIAN_MLP_SOURCE.to_string()
    };
    let program = DeepStan::compile_named("bayes_mlp", &source).expect("mlp compiles");
    program
        .svi(
            data,
            networks,
            &SviSettings {
                steps,
                lr: 0.02,
                seed,
                ..Default::default()
            },
        )
        .expect("svi")
}

fn accuracy(pred: &[i64], truth: &[i64]) -> f64 {
    pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

fn main() {
    let side = 6usize;
    let (nx, nh, ny) = (side * side, 12usize, 10usize);
    let n_train = scaled(60).min(200);
    let n_test = scaled(100).min(300);
    let (train_imgs, train_labels) = synthetic_digits(n_train, side, 0.03, 1);
    let (test_imgs, test_labels) = synthetic_digits(n_test, side, 0.03, 2);

    let mlp = MlpSpec::new("mlp", &[nx, nh, ny], Activation::Tanh);
    let networks = vec![mlp.clone()];
    let data = build_data(&train_imgs, &train_labels, nx, nh, ny);

    let steps = scaled(400).max(100);
    println!("training two Bayesian MLPs ({nx}-{nh}-{ny}) with SVI, {steps} steps each...");
    let fit_a = train("narrow", steps, 3, &data, &networks);
    let fit_b = train("narrow", steps, 4, &data, &networks);

    let pred_a = ensemble_predict(&fit_a, &mlp, &test_imgs, 100, 11);
    let pred_b = ensemble_predict(&fit_b, &mlp, &test_imgs, 100, 12);
    let acc_a = accuracy(&pred_a, &test_labels);
    let acc_b = accuracy(&pred_b, &test_labels);
    let agreement =
        pred_a.iter().zip(&pred_b).filter(|(a, b)| a == b).count() as f64 / pred_a.len() as f64;

    println!("\nRQ5 (Bayesian MLP): ensemble of 100 posterior networks");
    println!("  model A test accuracy  = {acc_a:.2}");
    println!("  model B test accuracy  = {acc_b:.2}");
    println!("  agreement between A, B = {agreement:.2}");
    println!("  paper: accuracy 0.92 for both models, agreement > 0.95 (MNIST)");

    // Prior-widening ablation: normal(0,1) → normal(0,10).
    let fit_wide = train("wide", steps, 5, &data, &networks);
    let pred_wide = ensemble_predict(&fit_wide, &mlp, &test_imgs, 100, 13);
    let acc_wide = accuracy(&pred_wide, &test_labels);
    println!("\nAblation (prior width): normal(0,1) accuracy = {acc_a:.2}, normal(0,10) accuracy = {acc_wide:.2}");
    println!("  paper: widening the prior raised accuracy from 0.92 to 0.96");
}
