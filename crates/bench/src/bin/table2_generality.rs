//! Table 2 — number of corpus models with a successful one-iteration
//! inference run, per compilation scheme and backend flavour.
//!
//! The "Pyro" row is the tree-walking interpreted runtime; the "NumPyro" row
//! is the gradient path (one NUTS transition), which additionally requires
//! the model to be differentiable end to end — mirroring the JAX-induced
//! restrictions of the paper's NumPyro backend.

use deepstan_bench::one_iteration_runs;
use stan2gprob::Scheme;

fn main() {
    let corpus = model_zoo::corpus();
    let schemes = [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative];
    println!(
        "Table 2: successful inference runs over {} corpus models\n",
        corpus.len()
    );
    println!("{:<10} {:>8} {:>8} {:>8}", "", "Compr.", "Mixed", "Gener.");
    for (label, interpreted) in [("Pyro", true), ("NumPyro", false)] {
        let mut counts = [0usize; 3];
        for (i, scheme) in schemes.iter().enumerate() {
            for entry in &corpus {
                if one_iteration_runs(entry, *scheme, interpreted) {
                    counts[i] += 1;
                }
            }
        }
        println!(
            "{:<10} {:>8} {:>8} {:>8}",
            label, counts[0], counts[1], counts[2]
        );
    }
    println!("\nPaper (98 PosteriorDB pairs): Pyro 87/87/36, NumPyro 83/83/35.");
    println!("Expected failures in this corpus: truncated_normal, ordered_mixture (compile), censored_lccdf (runtime).");
}
