//! Figure 10 — posterior histograms of the multimodal example under
//! Stan NUTS (reference interpreter), DeepStan NUTS (compiled backend),
//! DeepStan VI with the custom guide, and Stan ADVI (mean-field).
//!
//! NUTS chains struggle to mix between the two modes and mean-field ADVI
//! collapses onto one mode, while the custom guide recovers both — the
//! qualitative result of the paper's RQ4.

use deepstan::{DeepStan, Method, NutsSettings, SviSettings};
use deepstan_bench::scaled;
use inference::advi::AdviConfig;
use inference::diagnostics::histogram;

fn print_histogram(label: &str, values: &[f64]) {
    let bins = 40;
    let counts = histogram(values, -5.0, 25.0, bins);
    let max = *counts.iter().max().unwrap_or(&1) as f64;
    println!("\n{label} (n = {}):", values.len());
    for (i, &c) in counts.iter().enumerate() {
        let lo = -5.0 + 30.0 * i as f64 / bins as f64;
        let bar = "#".repeat(((c as f64 / max.max(1.0)) * 50.0).round() as usize);
        println!("  {lo:>6.1} | {bar} {c}");
    }
    let near_zero = values.iter().filter(|&&v| v.abs() < 5.0).count();
    let near_twenty = values.iter().filter(|&&v| (v - 20.0).abs() < 5.0).count();
    println!("  mass near 0: {near_zero}, mass near 20: {near_twenty}");
}

fn main() {
    let entry = model_zoo::find("multimodal_guide").expect("corpus model");
    let program = DeepStan::compile_named(entry.name, entry.source).expect("compiles");

    // 1. Stan (reference interpreter) with NUTS.
    let nuts_cfg = NutsSettings {
        warmup: scaled(400),
        samples: scaled(1000),
        seed: 1,
        max_depth: 10,
    };
    let stan_nuts = program
        .session(&[])
        .expect("session")
        .reference(true)
        .run(Method::Nuts(nuts_cfg.clone()))
        .expect("stan nuts");
    print_histogram("Stan (NUTS)", &stan_nuts.component("theta").unwrap());

    // 2. DeepStan (compiled backend) with NUTS.
    let deepstan_nuts = program
        .session(&[])
        .expect("session")
        .run(Method::Nuts(nuts_cfg))
        .expect("deepstan nuts");
    print_histogram(
        "DeepStan (NUTS)",
        &deepstan_nuts.component("theta").unwrap(),
    );

    // 3. DeepStan VI with the explicit guide of Figure 10.
    let svi_fit = program
        .session(&[])
        .expect("session")
        .guide_draws(scaled(1000))
        .run(Method::Svi(SviSettings {
            steps: scaled(3000),
            lr: 0.05,
            seed: 2,
            ..Default::default()
        }))
        .expect("svi");
    print_histogram(
        "DeepStan (VI, custom guide)",
        &svi_fit.component("theta").unwrap(),
    );
    let guide = svi_fit.variational.as_ref().expect("fitted guide");
    println!(
        "  fitted guide means: m1 = {:.2}, m2 = {:.2}",
        guide.guide_params["m1"][0], guide.guide_params["m2"][0]
    );

    // 4. Stan ADVI (mean-field) baseline.
    let advi = program
        .session(&[])
        .expect("session")
        .run(Method::Advi(AdviConfig {
            steps: scaled(2000),
            output_samples: scaled(1000),
            seed: 4,
            ..Default::default()
        }))
        .expect("advi");
    print_histogram("Stan (ADVI, mean-field)", &advi.component("theta").unwrap());

    println!("\nExpected shape (paper Figure 10): NUTS misses the relative mode weights,");
    println!(
        "mean-field ADVI collapses to a single mode, VI with the custom guide finds both modes."
    );
}
