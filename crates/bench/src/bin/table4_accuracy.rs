//! Table 4 (appendix) — mean relative error of every backend against the
//! reference posterior, for every corpus model.

use deepstan_bench::{accuracy_vs_reference, run_backend, BackendKind};

fn main() {
    let corpus = model_zoo::corpus();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "Model", "Stan(ref)", "Compr.", "Mixed", "Gener."
    );
    for entry in corpus.iter().filter(|e| e.name != "multimodal_guide") {
        if !entry.should_run() {
            println!(
                "{:<28} {:>10} {:>10} {:>10} {:>10}",
                entry.name, "✗", "✗", "✗", "✗"
            );
            continue;
        }
        let reference = run_backend(entry, BackendKind::StanRef, 42);
        let Some(ref_post) = reference.posterior.as_ref() else {
            println!("{:<28} reference failed", entry.name);
            continue;
        };
        // Self-error of a second reference run with a different seed, the
        // analogue of the paper's "Stan" error column.
        let second = run_backend(entry, BackendKind::StanRef, 43);
        let self_err = second
            .posterior
            .as_ref()
            .map(|p| accuracy_vs_reference(p, ref_post).1);
        let mut row = vec![self_err
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "✗".to_string())];
        for backend in [
            BackendKind::GProbComprehensive,
            BackendKind::GProbMixed,
            BackendKind::GProbGenerative,
        ] {
            let outcome = run_backend(entry, backend, 7);
            row.push(match &outcome.posterior {
                Some(p) => format!("{:.2}", accuracy_vs_reference(p, ref_post).1),
                None => "✗".to_string(),
            });
        }
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10}",
            entry.name, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "\nErrors are mean |mean - mean_ref| / stddev_ref; the paper's pass threshold is 0.3."
    );
}
