//! Compilation-speed benchmark (Section 6.1: the paper reports ~0.3 s per
//! model for the new backends vs ~10.5 s for Stan's C++ toolchain).

use criterion::{criterion_group, criterion_main, Criterion};
use stan2gprob::{compile, Scheme};

fn bench_compile(c: &mut Criterion) {
    let corpus = model_zoo::corpus();
    let mut group = c.benchmark_group("compile_speed");
    group.sample_size(20);
    group.bench_function("frontend_parse_corpus", |b| {
        b.iter(|| {
            for entry in &corpus {
                let _ = stan_frontend::parse_program(std::hint::black_box(entry.source));
            }
        })
    });
    group.bench_function("compile_comprehensive_corpus", |b| {
        b.iter(|| {
            for entry in &corpus {
                if let Ok(ast) = stan_frontend::parse_program(entry.source) {
                    let _ = compile(&ast, Scheme::Comprehensive);
                }
            }
        })
    });
    group.bench_function("compile_all_schemes_coin", |b| {
        let coin = model_zoo::find("coin").unwrap();
        let ast = stan_frontend::parse_program(coin.source).unwrap();
        b.iter(|| {
            for scheme in [Scheme::Generative, Scheme::Comprehensive, Scheme::Mixed] {
                let _ = compile(std::hint::black_box(&ast), scheme);
            }
        })
    });
    group.bench_function("codegen_pyro_numpyro_corpus", |b| {
        let compiled: Vec<_> = corpus
            .iter()
            .filter_map(|e| {
                stan_frontend::parse_program(e.source)
                    .ok()
                    .and_then(|ast| compile(&ast, Scheme::Mixed).ok())
            })
            .collect();
        b.iter(|| {
            for p in &compiled {
                let _ = stan2gprob::to_pyro(std::hint::black_box(p), "m");
                let _ = stan2gprob::to_numpyro(std::hint::black_box(p), "m");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
