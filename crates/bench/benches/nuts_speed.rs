//! Short end-to-end NUTS runs per backend — the sampling-throughput shape
//! behind Table 3 and Table 5.

use criterion::{criterion_group, criterion_main, Criterion};
use deepstan::{DeepStan, NutsSettings};
use gprob::value::Value;

fn bench_nuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("nuts_speed");
    group.sample_size(10);
    let settings = NutsSettings {
        warmup: 50,
        samples: 50,
        seed: 1,
        max_depth: 8,
    };
    for name in ["coin", "kidscore_momhs", "eight_schools_centered"] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        group.bench_function(format!("{name}/stan_ref"), |b| {
            b.iter(|| program.nuts_reference(&data_refs, &settings).unwrap())
        });
        group.bench_function(format!("{name}/gprob_mixed"), |b| {
            b.iter(|| program.nuts(&data_refs, &settings).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nuts);
criterion_main!(benches);
