//! Short end-to-end NUTS runs per backend — the sampling-throughput shape
//! behind Table 3 and Table 5.
//!
//! `gprob_mixed` runs the slot-resolved frame runtime through the
//! chain-first `Session` API (one pooled density workspace per chain);
//! `gprob_string_baseline` drives the same NUTS engine through the retained
//! `HashMap<String, _>` density path, isolating the end-to-end effect of
//! compile-time name resolution. `gprob_mixed_4chain_parallel` runs four
//! chains sharded over threads (each with its own workspace) — on a
//! multicore machine its wall time should stay well under 2× the
//! single-chain row.
//!
//! The `gprob_jit_target` / `gprob_dprog_target` pair drives one identical
//! NUTS harness (`nuts_sample_mut`) through the routed gradient entry
//! (native code when the platform JITs the density program) vs the entry
//! pinned to the interpreted DProg — the end-to-end effect of
//! `gprob::dprog::jit` on sampling wall time, with everything else held
//! fixed. `gprob_mixed` (the `Session` route) should track
//! `gprob_jit_target`.

use criterion::{criterion_group, criterion_main, Criterion};
use deepstan::{DeepStan, Method, NutsSettings};
use gprob::eval::NoExternals;
use gprob::value::Value;
use inference::nuts::{nuts_sample, NutsConfig};
use minidiff::{grad, tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_nuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("nuts_speed");
    group.sample_size(10);
    let settings = NutsSettings {
        warmup: 50,
        samples: 50,
        seed: 1,
        max_depth: 8,
    };
    for name in [
        "coin",
        "kidscore_momhs",
        "eight_schools_centered",
        "garch11",
    ] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        group.bench_function(format!("{name}/stan_ref"), |b| {
            b.iter(|| {
                program
                    .session(&data_refs)
                    .unwrap()
                    .reference(true)
                    .run(Method::Nuts(settings.clone()))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_mixed"), |b| {
            b.iter(|| {
                program
                    .session(&data_refs)
                    .unwrap()
                    .run(Method::Nuts(settings.clone()))
                    .unwrap()
            })
        });
        // The same single-chain NUTS run driven through the retained
        // `Var`/tape gradient path: `gprob_mixed` vs this row is the
        // end-to-end effect of the tape-free density programs within one
        // capture.
        group.bench_function(format!("{name}/gprob_tape_target"), |b| {
            b.iter(|| {
                let model = program.bind(&data_refs).unwrap();
                let mut rng = StdRng::seed_from_u64(settings.seed);
                let init = model.initial_unconstrained(&mut rng);
                let mut ws = model.grad_workspace();
                struct TapeTarget<'m> {
                    model: &'m gprob::GModel,
                    ws: &'m mut gprob::GradWorkspace,
                }
                impl inference::GradTargetMut for TapeTarget<'_> {
                    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
                        match self.model.log_density_and_grad_tape_with(self.ws, q, grad) {
                            Ok(lp) => lp,
                            Err(_) => {
                                grad.fill(0.0);
                                f64::NEG_INFINITY
                            }
                        }
                    }
                }
                let config = NutsConfig {
                    warmup: settings.warmup,
                    samples: settings.samples,
                    seed: settings.seed,
                    max_depth: settings.max_depth,
                    ..Default::default()
                };
                let mut target = TapeTarget {
                    model: &model,
                    ws: &mut ws,
                };
                inference::nuts::nuts_sample_mut(&mut target, init, &config)
            })
        });
        // The same NUTS harness over the two density-program entries:
        // routed (JIT-first) vs pinned interpreted. One bound model per
        // iteration keeps the shape identical to `gprob_tape_target`.
        struct DpTarget<'m> {
            model: &'m gprob::GModel,
            ws: &'m mut gprob::GradWorkspace,
            jit: bool,
        }
        impl inference::GradTargetMut for DpTarget<'_> {
            fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
                let r = if self.jit {
                    self.model.log_density_and_grad_with(self.ws, q, grad)
                } else {
                    self.model.log_density_and_grad_dprog_with(self.ws, q, grad)
                };
                match r {
                    Ok(lp) => lp,
                    Err(_) => {
                        grad.fill(0.0);
                        f64::NEG_INFINITY
                    }
                }
            }
        }
        for (row, jit) in [("gprob_jit_target", true), ("gprob_dprog_target", false)] {
            group.bench_function(format!("{name}/{row}"), |b| {
                b.iter(|| {
                    let model = program.bind(&data_refs).unwrap();
                    let mut rng = StdRng::seed_from_u64(settings.seed);
                    let init = model.initial_unconstrained(&mut rng);
                    let mut ws = model.grad_workspace();
                    let config = NutsConfig {
                        warmup: settings.warmup,
                        samples: settings.samples,
                        seed: settings.seed,
                        max_depth: settings.max_depth,
                        ..Default::default()
                    };
                    let mut target = DpTarget {
                        model: &model,
                        ws: &mut ws,
                        jit,
                    };
                    inference::nuts::nuts_sample_mut(&mut target, init, &config)
                })
            });
        }
        // Multi-chain rows. `_parallel` is the Session default: the
        // dim/cost heuristic picks lane-lockstep for real models and falls
        // back to thread-per-chain for tiny densities (the dim-1 coin,
        // where lane bookkeeping dwarfs the density itself). The two forced
        // rows pin each side of that decision — `_parallel` must track the
        // better of the two on every model, which is the acceptance bound
        // for the heuristic.
        group.bench_function(format!("{name}/gprob_mixed_4chain_parallel"), |b| {
            b.iter(|| {
                program
                    .session(&data_refs)
                    .unwrap()
                    .chains(4)
                    .run(Method::Nuts(settings.clone()))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_mixed_4chain_lockstep_forced"), |b| {
            b.iter(|| {
                program
                    .session(&data_refs)
                    .unwrap()
                    .chains(4)
                    .lockstep(true)
                    .run(Method::Nuts(settings.clone()))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_mixed_4chain_threads_forced"), |b| {
            b.iter(|| {
                program
                    .session(&data_refs)
                    .unwrap()
                    .chains(4)
                    .lockstep(false)
                    .run(Method::Nuts(settings.clone()))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_string_baseline"), |b| {
            b.iter(|| {
                let model = program.bind(&data_refs).unwrap();
                let mut rng = StdRng::seed_from_u64(settings.seed);
                let init = model.initial_unconstrained(&mut rng);
                let target = |q: &[f64]| {
                    tape::reset();
                    let vars: Vec<Var> = q.iter().map(|&x| Var::new(x)).collect();
                    match model.log_density_baseline(&vars, &NoExternals) {
                        Ok(lp) => (lp.value(), grad(lp, &vars)),
                        Err(_) => (f64::NEG_INFINITY, vec![0.0; q.len()]),
                    }
                };
                let config = NutsConfig {
                    warmup: settings.warmup,
                    samples: settings.samples,
                    max_depth: settings.max_depth,
                    seed: settings.seed,
                    ..Default::default()
                };
                nuts_sample(&target, init, &config)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nuts);
criterion_main!(benches);
