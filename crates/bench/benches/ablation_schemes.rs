//! Ablation over the compilation schemes (the design choice of Section 4):
//! density-evaluation cost of the comprehensive vs mixed vs generative
//! translation of the same model.

use criterion::{criterion_group, criterion_main, Criterion};
use deepstan::DeepStan;
use gprob::value::Value;
use stan2gprob::Scheme;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schemes");
    group.sample_size(20);
    for name in ["coin", "kidscore_mom_work"] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        for scheme in [Scheme::Comprehensive, Scheme::Mixed, Scheme::Generative] {
            let Ok(model) = program.bind_with(scheme, &data_refs) else {
                continue;
            };
            let theta = vec![0.1; model.dim()];
            group.bench_function(format!("{name}/{}", scheme.name()), |b| {
                b.iter(|| {
                    model
                        .log_density_and_grad(std::hint::black_box(&theta))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
