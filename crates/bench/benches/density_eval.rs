//! Log-density (and gradient) evaluation throughput: baseline Stan-semantics
//! interpreter vs the compiled GProb runtime — the per-evaluation cost that
//! drives the end-to-end speed comparison of Table 3.
//!
//! The `gprob_*` rows run the slot-resolved frame runtime; the
//! `gprob_*_string_baseline` rows run the retained `HashMap<String, _>`
//! evaluation path on the *same* compiled program, isolating the speedup of
//! compile-time name resolution. The `gprob_*_workspace` rows evaluate
//! through a pooled `DensityWorkspace` / `GradWorkspace` on the `Var`/tape
//! interpreter path (pinned explicitly via `log_density_and_grad_tape_with`
//! since the DProg backend landed). Since the sweep-lowering pass, the
//! workspace rows score element-wise observation loops and vectorized `~`
//! statements through the fused batch kernels; the
//! `gprob_*_scalar_workspace` rows bind the same program *without* lowering
//! (`bind_scalar_with`), isolating the sweep win over the element-by-element
//! configuration those rows used to measure.
//!
//! The `gprob_{grad,value}_dprog` rows evaluate the same workspace
//! configuration through the *interpreted* tape-free density program
//! (`gprob::dprog`, pinned via `log_density_and_grad_dprog_with` since the
//! native backend landed). `gprob_grad_dprog` vs `gprob_grad_workspace` is
//! therefore the tape-free-vs-tape ratio on identical programs.
//!
//! The `gprob_{grad,value}_dprog_jit` rows run the routed entry — the
//! density program JIT-compiled to native x86_64 code
//! (`gprob::dprog::jit`), the route `Session` samplers actually take when
//! the platform compiles it. `gprob_grad_dprog_jit` vs `gprob_grad_dprog`
//! is the native-vs-interpreted ratio the PR 8 acceptance gates on
//! (geomean ≥ 1.3x, scalar-heavy recurrence models ≥ 1.5x).
//!
//! The `gprob_grad_dprog_lanes{2,4,8}` rows score a batch of L distinct
//! unconstrained points through the struct-of-arrays lane evaluator
//! (`GModel::log_density_and_grad_batch_with`) in ONE forward + ONE reverse
//! sweep. Each iteration evaluates the whole batch, so the per-state cost is
//! the reported time divided by L; per-state throughput vs the single-lane
//! `gprob_grad_dprog` row is the lane-scaling ratio the PR 6 acceptance
//! gates on. The `advi_step_{batched,sequential}` rows run the same short
//! ADVI fit through `advi_fit_batch` (all K Monte-Carlo guide draws per step
//! in one multi-lane pass) vs the per-draw `advi_fit_mut` loop.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use deepstan::DeepStan;
use gprob::eval::NoExternals;
use gprob::value::Value;
use minidiff::{grad, tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stan2gprob::Scheme;

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_eval");
    group.sample_size(20);
    for name in [
        "kidscore_momhs",
        "eight_schools_centered",
        "arK",
        "nes_logit",
        "garch11",
        "arma11",
    ] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let gmodel = program.bind(&data_refs).unwrap();
        let scalar_model = program.bind_scalar_with(Scheme::Mixed, &data_refs).unwrap();
        let smodel = program.bind_reference(&data_refs).unwrap();
        let theta = vec![0.1; gmodel.dim()];
        assert!(
            gmodel.dprog().is_some(),
            "{name}: expected a compiled density program"
        );

        group.bench_function(format!("{name}/gprob_grad_dprog"), |b| {
            let mut ws = gmodel.grad_workspace();
            let mut g = vec![0.0; gmodel.dim()];
            b.iter(|| {
                gmodel
                    .log_density_and_grad_dprog_with(&mut ws, std::hint::black_box(&theta), &mut g)
                    .unwrap()
            })
        });
        if gmodel.jit().is_some() {
            group.bench_function(format!("{name}/gprob_grad_dprog_jit"), |b| {
                let mut ws = gmodel.grad_workspace();
                let mut g = vec![0.0; gmodel.dim()];
                b.iter(|| {
                    gmodel
                        .log_density_and_grad_with(&mut ws, std::hint::black_box(&theta), &mut g)
                        .unwrap()
                })
            });
            group.bench_function(format!("{name}/gprob_value_dprog_jit"), |b| {
                let mut ws = gmodel.workspace::<f64>();
                b.iter(|| {
                    gmodel
                        .log_density_f64_with(&mut ws, std::hint::black_box(&theta))
                        .unwrap()
                })
            });
        }
        for lanes in [2usize, 4, 8] {
            group.bench_function(format!("{name}/gprob_grad_dprog_lanes{lanes}"), |b| {
                let dim = gmodel.dim();
                let mut ws = gmodel.grad_workspace();
                // L distinct points spread around the probe point, so every
                // lane does real (and slightly different) constraint work.
                let mut thetas = Vec::with_capacity(lanes * dim);
                for l in 0..lanes {
                    for (i, &t) in theta.iter().enumerate() {
                        thetas.push(t + 0.01 * ((l * 7 + i * 3) % 5) as f64);
                    }
                }
                let mut values = vec![0.0; lanes];
                let mut grads = vec![0.0; lanes * dim];
                b.iter(|| {
                    gmodel
                        .log_density_and_grad_batch_with(
                            &mut ws,
                            std::hint::black_box(&thetas),
                            &mut values,
                            &mut grads,
                        )
                        .unwrap()
                })
            });
        }
        group.bench_function(format!("{name}/gprob_value_dprog"), |b| {
            let mut ws = gmodel.workspace::<f64>();
            b.iter(|| {
                gmodel
                    .log_density_f64_dprog_with(&mut ws, std::hint::black_box(&theta))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/stan_ref_grad"), |b| {
            b.iter(|| {
                smodel
                    .log_density_and_grad(std::hint::black_box(&theta))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_grad"), |b| {
            b.iter(|| {
                gmodel
                    .log_density_and_grad(std::hint::black_box(&theta))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_grad_workspace"), |b| {
            let mut ws = gmodel.grad_workspace();
            let mut g = vec![0.0; gmodel.dim()];
            b.iter(|| {
                gmodel
                    .log_density_and_grad_tape_with(&mut ws, std::hint::black_box(&theta), &mut g)
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_grad_scalar_workspace"), |b| {
            let mut ws = scalar_model.grad_workspace();
            let mut g = vec![0.0; scalar_model.dim()];
            b.iter(|| {
                scalar_model
                    .log_density_and_grad_tape_with(&mut ws, std::hint::black_box(&theta), &mut g)
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_grad_string_baseline"), |b| {
            b.iter(|| {
                tape::reset();
                let vars: Vec<Var> = std::hint::black_box(&theta)
                    .iter()
                    .map(|&x| Var::new(x))
                    .collect();
                let lp = gmodel.log_density_baseline(&vars, &NoExternals).unwrap();
                grad(lp, &vars)
            })
        });
        group.bench_function(format!("{name}/gprob_value_only"), |b| {
            b.iter(|| {
                gmodel
                    .log_density_f64(std::hint::black_box(&theta))
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_value_workspace"), |b| {
            let mut ws = gmodel.workspace::<f64>();
            b.iter(|| {
                gmodel
                    .log_density_with(&mut ws, std::hint::black_box(&theta), &NoExternals)
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_value_scalar_workspace"), |b| {
            let mut ws = scalar_model.workspace::<f64>();
            b.iter(|| {
                scalar_model
                    .log_density_with(&mut ws, std::hint::black_box(&theta), &NoExternals)
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/gprob_value_string_baseline"), |b| {
            b.iter(|| {
                gmodel
                    .log_density_f64_baseline(std::hint::black_box(&theta))
                    .unwrap()
            })
        });
        // Short ADVI fits, identical config and RNG stream: the batched
        // entry scores all `grad_samples` guide draws per step through one
        // multi-lane pass, the sequential entry loops them one by one.
        let advi_cfg = inference::AdviConfig {
            steps: 25,
            grad_samples: 8,
            lr: 0.05,
            output_samples: 4,
            seed: 11,
            ..Default::default()
        };
        group.bench_function(format!("{name}/advi_step_batched"), |b| {
            let mut target = DProgTarget {
                model: &gmodel,
                ws: gmodel.grad_workspace(),
            };
            b.iter(|| {
                inference::advi_fit_batch(
                    &mut target,
                    gmodel.dim(),
                    std::hint::black_box(&advi_cfg),
                )
            })
        });
        group.bench_function(format!("{name}/advi_step_sequential"), |b| {
            let mut target = DProgTarget {
                model: &gmodel,
                ws: gmodel.grad_workspace(),
            };
            b.iter(|| {
                inference::advi_fit_mut(&mut target, gmodel.dim(), std::hint::black_box(&advi_cfg))
            })
        });
    }
    group.finish();
}

/// Minimal inference target over a bound [`gprob::GModel`] for the ADVI step
/// rows: batched evaluation routes through the struct-of-arrays lane
/// evaluator, sequential evaluation through the single-lane DProg entry.
struct DProgTarget<'m> {
    model: &'m gprob::GModel,
    ws: gprob::GradWorkspace,
}

impl inference::GradTargetMut for DProgTarget<'_> {
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
        match self.model.log_density_and_grad_with(&mut self.ws, q, grad) {
            Ok(lp) => lp,
            Err(_) => {
                grad.fill(0.0);
                f64::NEG_INFINITY
            }
        }
    }
}

impl inference::GradTargetBatch for DProgTarget<'_> {
    fn logp_grad_batch(&mut self, qs: &[f64], logps: &mut [f64], grads: &mut [f64]) {
        if self
            .model
            .log_density_and_grad_batch_with(&mut self.ws, qs, logps, grads)
            .is_err()
        {
            logps.fill(f64::NEG_INFINITY);
            grads.fill(0.0);
        }
    }
}

/// Generated-quantities throughput, per posterior draw: the slot-resolved
/// streaming path (`gq_resolved`, pooled `GqWorkspace`, sweep-lowered rows)
/// vs the same program without lowering (`gq_resolved_scalar`) vs the
/// retained string-keyed statement interpreter (`gq_string_baseline`, which
/// clones the data environment per draw). Acceptance for the predictive
/// engine is `gq_resolved` ≥ 1.5x `gq_string_baseline`.
fn bench_gq(c: &mut Criterion) {
    let mut group = c.benchmark_group("gq_eval");
    group.sample_size(20);
    for name in ["kidscore_momhs", "eight_schools_centered", "seeds_binomial"] {
        let entry = model_zoo::find(name).unwrap();
        let program = DeepStan::compile_named(name, entry.source).unwrap();
        let data = entry.dataset(5);
        let data_refs: Vec<(&str, Value<f64>)> =
            data.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let gmodel = program.bind(&data_refs).unwrap();
        let scalar_model = program.bind_scalar_with(Scheme::Mixed, &data_refs).unwrap();
        let theta = vec![0.1; gmodel.dim()];

        group.bench_function(format!("{name}/gq_resolved"), |b| {
            let mut ws = gmodel.gq_workspace().unwrap();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                gmodel
                    .generated_quantities_into(
                        &mut ws,
                        std::hint::black_box(&theta),
                        false,
                        7,
                        &mut out,
                    )
                    .unwrap();
                out.len()
            })
        });
        group.bench_function(format!("{name}/gq_resolved_scalar"), |b| {
            let mut ws = scalar_model.gq_workspace().unwrap();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                scalar_model
                    .generated_quantities_into(
                        &mut ws,
                        std::hint::black_box(&theta),
                        false,
                        7,
                        &mut out,
                    )
                    .unwrap();
                out.len()
            })
        });
        group.bench_function(format!("{name}/gq_string_baseline"), |b| {
            b.iter(|| {
                gmodel
                    .generated_quantities(
                        std::hint::black_box(&theta),
                        Rc::new(RefCell::new(StdRng::seed_from_u64(7))),
                    )
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_density, bench_gq);
criterion_main!(benches);
