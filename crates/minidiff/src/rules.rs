//! Shared scalar differentiation rules: primal formulas and analytic local
//! partial derivatives for the unary special functions the workspace
//! differentiates.
//!
//! Historically each rule lived twice: once inside the corresponding [`Var`]
//! method (tape recording) and once wherever an analytic reverse pass needed
//! the same partial (batched density kernels, and now the tape-free density
//! programs of `gprob::dprog`). This module is the single home: [`Var`]'s
//! unary methods and every tape-free reverse sweep read the same
//! [`UnFn::value`] / [`UnFn::partial`] tables, so the two backends cannot
//! drift apart.
//!
//! [`Var`]: crate::Var

use crate::special;

/// A differentiable unary scalar function with an analytic derivative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnFn {
    /// Negation.
    Neg,
    /// Natural logarithm.
    Ln,
    /// `ln(1 + x)`.
    Ln1p,
    /// Exponential.
    Exp,
    /// Square root.
    Sqrt,
    /// Absolute value (sub-gradient 0 at 0).
    Abs,
    /// Hyperbolic tangent.
    Tanh,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Logistic sigmoid.
    Sigmoid,
    /// `ln(1 + e^x)` (softplus).
    Softplus,
    /// Log-gamma.
    Lgamma,
    /// Reciprocal.
    Recip,
    /// Integer power with a constant exponent.
    Powi(i32),
    /// Real power with a constant exponent.
    Powf(f64),
}

impl UnFn {
    /// The primal value `f(x)`.
    #[inline]
    pub fn value(self, x: f64) -> f64 {
        match self {
            UnFn::Neg => -x,
            UnFn::Ln => x.ln(),
            UnFn::Ln1p => x.ln_1p(),
            UnFn::Exp => x.exp(),
            UnFn::Sqrt => x.sqrt(),
            UnFn::Abs => x.abs(),
            UnFn::Tanh => x.tanh(),
            UnFn::Sin => x.sin(),
            UnFn::Cos => x.cos(),
            UnFn::Sigmoid => special::sigmoid(x),
            UnFn::Softplus => special::softplus(x),
            UnFn::Lgamma => special::lgamma(x),
            UnFn::Recip => 1.0 / x,
            UnFn::Powi(n) => x.powi(n),
            UnFn::Powf(p) => x.powf(p),
        }
    }

    /// The local partial `∂f/∂x` at `x`, given the already-computed primal
    /// `fx = f(x)` (several rules reuse it: `exp`, `tanh`, `sqrt`, ...).
    #[inline]
    pub fn partial(self, x: f64, fx: f64) -> f64 {
        match self {
            UnFn::Neg => -1.0,
            UnFn::Ln => 1.0 / x,
            UnFn::Ln1p => 1.0 / (1.0 + x),
            UnFn::Exp => fx,
            UnFn::Sqrt => 0.5 / fx,
            UnFn::Abs => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnFn::Tanh => 1.0 - fx * fx,
            UnFn::Sin => x.cos(),
            UnFn::Cos => -x.sin(),
            UnFn::Sigmoid => fx * (1.0 - fx),
            UnFn::Softplus => special::sigmoid(x),
            UnFn::Lgamma => special::digamma(x),
            UnFn::Recip => -1.0 / (x * x),
            UnFn::Powi(n) => f64::from(n) * x.powi(n - 1),
            UnFn::Powf(p) => p * x.powf(p - 1.0),
        }
    }
}

/// A differentiable binary scalar function with analytic partial
/// derivatives. As with [`UnFn`], both the tape ([`crate::Var`]'s operator
/// impls) and the tape-free reverse sweeps read this one table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinFn {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Pairwise maximum; the sub-gradient follows the winner, ties favor
    /// the left operand.
    Max,
    /// Pairwise minimum; ties favor the left operand.
    Min,
}

impl BinFn {
    /// The primal value `f(a, b)`.
    #[inline]
    pub fn value(self, a: f64, b: f64) -> f64 {
        match self {
            BinFn::Add => a + b,
            BinFn::Sub => a - b,
            BinFn::Mul => a * b,
            BinFn::Div => a / b,
            BinFn::Max => {
                if a >= b {
                    a
                } else {
                    b
                }
            }
            BinFn::Min => {
                if a <= b {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// The local partials `(∂f/∂a, ∂f/∂b)` at `(a, b)`.
    #[inline]
    pub fn partials(self, a: f64, b: f64) -> (f64, f64) {
        match self {
            BinFn::Add => (1.0, 1.0),
            BinFn::Sub => (1.0, -1.0),
            BinFn::Mul => (b, a),
            BinFn::Div => (1.0 / b, -a / (b * b)),
            BinFn::Max => {
                if a >= b {
                    (1.0, 0.0)
                } else {
                    (0.0, 1.0)
                }
            }
            BinFn::Min => {
                if a <= b {
                    (1.0, 0.0)
                } else {
                    (0.0, 1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_partials_match_finite_differences() {
        for f in [
            BinFn::Add,
            BinFn::Sub,
            BinFn::Mul,
            BinFn::Div,
            BinFn::Max,
            BinFn::Min,
        ] {
            for &(a, b) in &[(0.7, 1.9), (2.2, 0.4), (-1.1, 0.8)] {
                let h = 1e-6;
                let (da, db) = f.partials(a, b);
                let fa = (f.value(a + h, b) - f.value(a - h, b)) / (2.0 * h);
                let fb = (f.value(a, b + h) - f.value(a, b - h)) / (2.0 * h);
                assert!((da - fa).abs() < 1e-5, "{f:?} da at ({a},{b})");
                assert!((db - fb).abs() < 1e-5, "{f:?} db at ({a},{b})");
            }
        }
    }

    #[test]
    fn max_min_ties_favor_the_left_operand() {
        assert_eq!(BinFn::Max.partials(2.0, 2.0), (1.0, 0.0));
        assert_eq!(BinFn::Min.partials(2.0, 2.0), (1.0, 0.0));
    }

    const FNS: [UnFn; 15] = [
        UnFn::Neg,
        UnFn::Ln,
        UnFn::Ln1p,
        UnFn::Exp,
        UnFn::Sqrt,
        UnFn::Abs,
        UnFn::Tanh,
        UnFn::Sin,
        UnFn::Cos,
        UnFn::Sigmoid,
        UnFn::Softplus,
        UnFn::Lgamma,
        UnFn::Recip,
        UnFn::Powi(3),
        UnFn::Powf(1.7),
    ];

    #[test]
    fn partials_match_finite_differences() {
        for f in FNS {
            for &x in &[0.3, 0.9, 2.1] {
                let h = 1e-6;
                let fd = (f.value(x + h) - f.value(x - h)) / (2.0 * h);
                let fx = f.value(x);
                let got = f.partial(x, fx);
                assert!(
                    (got - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "{f:?} at {x}: {got} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn abs_subgradient_is_zero_at_zero() {
        assert_eq!(UnFn::Abs.partial(0.0, 0.0), 0.0);
    }
}
