//! `minidiff` — a small reverse-mode automatic differentiation library.
//!
//! This crate is the gradient substrate used by the rest of the workspace:
//! Hamiltonian Monte Carlo (NUTS) and stochastic variational inference both
//! need `∇_θ log p(θ, x)`, and the neural networks of the DeepStan extension
//! need gradients with respect to their weights.
//!
//! The design mirrors classic Wengert-list (tape) reverse-mode AD:
//!
//! * [`Var`] is a lightweight `Copy` handle `(index, value)` into a
//!   thread-local [`Tape`].
//! * Arithmetic on `Var` records nodes with local partial derivatives.
//! * [`grad`] runs the reverse sweep and returns adjoints for chosen inputs.
//! * The [`Real`] trait abstracts over `f64` (fast, no gradient) and `Var`
//!   (tracked), so density code in the `probdist`, `gprob`, and `stan_ref`
//!   crates is written once and evaluated in either mode.
//!
//! # Example
//!
//! ```
//! use minidiff::{tape, grad, Real, Var};
//!
//! tape::reset();
//! let x = Var::new(1.5);
//! let y = Var::new(-0.5);
//! let z = (x * y).exp() + x.ln();
//! let g = grad(z, &[x, y]);
//! let expected_dx = (-0.5f64) * (1.5f64 * -0.5).exp() + 1.0 / 1.5;
//! assert!((g[0] - expected_dx).abs() < 1e-12);
//! ```

pub mod real;
pub mod rules;
pub mod special;
pub mod tape;
pub mod var;

pub use real::Real;
pub use rules::{BinFn, UnFn};
pub use tape::{grad, grad_into, tape_capacities, tape_len, Tape};
pub use var::Var;

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff<F: Fn(f64) -> f64>(f: F, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn grad_of_polynomial() {
        tape::reset();
        let x = Var::new(3.0);
        let y = x * x * x - x * 2.0 + 7.0;
        let g = grad(y, &[x]);
        assert!((g[0] - (3.0 * 9.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_finite_difference_for_composite() {
        let f = |x: f64| (x.sin() * x.exp()).ln() + x.tanh();
        for &x0 in &[0.3, 1.0, 2.2] {
            tape::reset();
            let x = Var::new(x0);
            let y = (x.sin() * x.exp()).ln() + x.tanh();
            let g = grad(y, &[x]);
            assert!((g[0] - finite_diff(f, x0)).abs() < 1e-5, "x0={x0}");
        }
    }

    #[test]
    fn real_trait_agrees_between_f64_and_var() {
        fn density<T: Real>(x: T) -> T {
            let half = T::from_f64(-0.5);
            half * x * x - T::from_f64(0.5 * (2.0 * std::f64::consts::PI).ln())
        }
        let plain = density(0.7f64);
        tape::reset();
        let tracked = density(Var::new(0.7));
        assert!((plain - tracked.value()).abs() < 1e-14);
    }

    #[test]
    fn lgamma_gradient_is_digamma() {
        for &x0 in &[0.5, 1.0, 3.3, 10.0] {
            tape::reset();
            let x = Var::new(x0);
            let y = x.lgamma();
            let g = grad(y, &[x]);
            assert!(
                (g[0] - special::digamma(x0)).abs() < 1e-8,
                "x0={x0} got {} want {}",
                g[0],
                special::digamma(x0)
            );
        }
    }
}
