//! The thread-local Wengert list (tape) recording computations on [`Var`].
//!
//! Each arithmetic operation on tracked variables pushes one `Node` holding
//! the indices of its (at most two) parents and the local partial derivative
//! with respect to each parent. [`grad`] then performs a single reverse sweep
//! to obtain adjoints.
//!
//! The tape is thread-local so that `Var` can stay `Copy` and arithmetic can
//! be written with ordinary operators. Independent Markov chains therefore
//! either run on the same thread sequentially, or on separate threads each
//! with their own tape.

use std::cell::RefCell;

use crate::var::Var;

/// Sentinel parent index meaning "no parent / constant".
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Sentinel in `parents[0]` marking a *wide* node: `parents[1]` is then an
/// index into [`Tape::wide_spans`], whose segment of `(parent, partial)`
/// pairs replaces the inline two-parent storage. Wide nodes are what batched
/// density kernels push: one node per `observe` sweep with one entry per
/// tracked input, instead of O(elements × operations) ordinary nodes.
pub(crate) const WIDE: u32 = u32::MAX - 1;

/// One recorded operation: parent indices and ∂output/∂parent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub parents: [u32; 2],
    pub partials: [f64; 2],
}

/// A `(start, len)` window into the wide parent/partial side tables.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WideSpan {
    start: u32,
    len: u32,
}

/// A growable record of all operations performed on tracked variables.
///
/// Users normally interact with the thread-local tape through [`reset`],
/// [`Var::new`], and [`grad`], but an explicit `Tape` is exposed for tests and
/// for tooling that wants to inspect tape growth.
#[derive(Debug, Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    /// Spans of the wide (fused multi-parent) nodes.
    wide_spans: Vec<WideSpan>,
    /// Flattened parent indices of all wide nodes.
    wide_parents: Vec<u32>,
    /// Flattened ∂output/∂parent of all wide nodes, parallel to
    /// `wide_parents`.
    wide_partials: Vec<f64>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no recorded nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push_leaf(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            parents: [NO_PARENT, NO_PARENT],
            partials: [0.0, 0.0],
        });
        idx
    }

    pub(crate) fn push_unary(&mut self, p: u32, dp: f64) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            parents: [p, NO_PARENT],
            partials: [dp, 0.0],
        });
        idx
    }

    pub(crate) fn push_binary(&mut self, p0: u32, d0: f64, p1: u32, d1: f64) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            parents: [p0, p1],
            partials: [d0, d1],
        });
        idx
    }

    /// Pushes a fused multi-parent node: the node's adjoint flows to each
    /// `(parent, partial)` pair in the iterator. One sweep of N batched
    /// observations costs one node plus one span entry per tracked input,
    /// where the scalar path costs several nodes per element.
    pub(crate) fn push_wide(&mut self, pairs: impl Iterator<Item = (u32, f64)>) -> u32 {
        let start = self.wide_parents.len() as u32;
        for (p, d) in pairs {
            self.wide_parents.push(p);
            self.wide_partials.push(d);
        }
        let len = self.wide_parents.len() as u32 - start;
        let span_idx = self.wide_spans.len() as u32;
        self.wide_spans.push(WideSpan { start, len });
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            parents: [WIDE, span_idx],
            partials: [0.0, 0.0],
        });
        idx
    }

    /// Clears all recorded nodes and wide side tables **without releasing
    /// their capacity** (`Vec::clear` never shrinks). A chain that evaluates
    /// the same-shaped density thousands of times therefore allocates tape
    /// storage only until the high-water mark is reached, after which every
    /// `reset` + re-record cycle is allocation-free.
    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.wide_spans.clear();
        self.wide_parents.clear();
        self.wide_partials.clear();
    }

    /// Current allocated capacities `(nodes, wide_spans, wide_parents,
    /// wide_partials)` — exposed so tests can pin the
    /// clear-preserves-capacity contract that keeps per-evaluation tape reuse
    /// allocation-free.
    pub fn capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.nodes.capacity(),
            self.wide_spans.capacity(),
            self.wide_parents.capacity(),
            self.wide_partials.capacity(),
        )
    }

    /// Reverse sweep from `output`, returning adjoints for every node.
    pub(crate) fn adjoints(&self, output: Var) -> Vec<f64> {
        let mut adj = vec![0.0; self.nodes.len()];
        if output.index() == NO_PARENT {
            return adj;
        }
        let out = output.index() as usize;
        if out >= adj.len() {
            return adj;
        }
        adj[out] = 1.0;
        for i in (0..=out).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let node = self.nodes[i];
            if node.parents[0] == WIDE {
                let span = self.wide_spans[node.parents[1] as usize];
                let (s, e) = (span.start as usize, (span.start + span.len) as usize);
                for (p, d) in self.wide_parents[s..e]
                    .iter()
                    .zip(&self.wide_partials[s..e])
                {
                    adj[*p as usize] += d * a;
                }
                continue;
            }
            for k in 0..2 {
                let p = node.parents[k];
                if p != NO_PARENT {
                    adj[p as usize] += node.partials[k] * a;
                }
            }
        }
        adj
    }
}

thread_local! {
    static TAPE: RefCell<Tape> = RefCell::new(Tape::new());
}

/// Clears the thread-local tape. Call before starting a fresh gradient
/// computation; all previously created [`Var`] handles become invalid.
pub fn reset() {
    TAPE.with(|t| t.borrow_mut().clear());
}

/// Number of nodes currently recorded on the thread-local tape.
pub fn tape_len() -> usize {
    TAPE.with(|t| t.borrow().nodes.len())
}

/// Allocated capacities of the thread-local tape (see [`Tape::capacities`]).
pub fn tape_capacities() -> (usize, usize, usize, usize) {
    TAPE.with(|t| t.borrow().capacities())
}

pub(crate) fn with_tape<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    TAPE.with(|t| f(&mut t.borrow_mut()))
}

/// Computes the gradient of `output` with respect to each variable in `wrt`
/// by a single reverse sweep over the thread-local tape.
///
/// Variables created after `output` (or on another thread) contribute zero.
///
/// # Example
/// ```
/// use minidiff::{tape, grad, Var};
/// tape::reset();
/// let a = Var::new(2.0);
/// let b = Var::new(5.0);
/// let y = a * b + b;
/// let g = grad(y, &[a, b]);
/// assert_eq!(g, vec![5.0, 3.0]);
/// ```
pub fn grad(output: Var, wrt: &[Var]) -> Vec<f64> {
    let mut out = vec![0.0; wrt.len()];
    grad_into(output, wrt, &mut out);
    out
}

/// [`grad`] writing into a caller-provided buffer — the allocation-free form
/// used by samplers that evaluate gradients in a tight loop.
///
/// # Panics
/// Panics if `out` is shorter than `wrt`.
pub fn grad_into(output: Var, wrt: &[Var], out: &mut [f64]) {
    assert!(out.len() >= wrt.len(), "gradient buffer too short");
    TAPE.with(|t| {
        let tape = t.borrow();
        let adj = tape.adjoints(output);
        for (o, v) in out.iter_mut().zip(wrt) {
            let i = v.index();
            *o = if i == NO_PARENT || (i as usize) >= adj.len() {
                0.0
            } else {
                adj[i as usize]
            };
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_nodes() {
        reset();
        let _ = Var::new(1.0) * Var::new(2.0);
        assert!(tape_len() >= 3);
        reset();
        assert_eq!(tape_len(), 0);
    }

    #[test]
    fn reset_preserves_capacity_across_same_shape_evals() {
        // One "evaluation shape": a few leaves, binary arithmetic, and a
        // fused wide node — touching every tape storage vector.
        let eval = || {
            let a = Var::new(1.3);
            let b = Var::new(0.4);
            let y = (a * b + b).exp();
            let w = Var::fused(2.0, &[a, b, y], &[0.5, -1.0, 2.0]);
            grad(w, &[a, b])
        };
        reset();
        eval();
        let after_first = tape_capacities();
        // Repeated same-shape evaluations must never reallocate: the
        // capacities reached by the first evaluation are the high-water mark
        // and `reset` (Vec::clear) must keep them.
        for _ in 0..32 {
            reset();
            assert_eq!(tape_len(), 0);
            eval();
            assert_eq!(
                tape_capacities(),
                after_first,
                "tape reallocated during a same-shape re-evaluation"
            );
        }
    }

    #[test]
    fn gradient_of_unused_variable_is_zero() {
        reset();
        let a = Var::new(2.0);
        let b = Var::new(3.0);
        let y = a * a;
        let g = grad(y, &[a, b]);
        assert_eq!(g[1], 0.0);
        assert!((g[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wide_nodes_backpropagate_their_analytic_partials() {
        reset();
        let a = Var::new(2.0);
        let b = Var::new(3.0);
        let c = Var::constant(5.0);
        // y = a*b + c computed out-of-band; analytic partials [b, a, 1].
        let y = Var::fused(2.0 * 3.0 + 5.0, &[a, b, c], &[3.0, 2.0, 1.0]);
        assert_eq!(y.value(), 11.0);
        // One wide node on top of the two leaves — not one node per op.
        assert_eq!(tape_len(), 3);
        let g = grad(y, &[a, b]);
        assert_eq!(g, vec![3.0, 2.0]);
        // Wide nodes compose with ordinary arithmetic.
        let z = y * a;
        let g = grad(z, &[a, b]);
        assert!((g[0] - (3.0 * 2.0 + 11.0)).abs() < 1e-12);
        assert!((g[1] - 2.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_constant_fused_nodes_stay_off_the_tape() {
        reset();
        let c = Var::constant(1.0);
        let y = Var::fused(4.0, &[c], &[9.0]);
        assert_eq!(y.value(), 4.0);
        assert_eq!(tape_len(), 0);
        assert_eq!(grad(y, &[c]), vec![0.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        reset();
        let x = Var::new(3.0);
        let y = x * x + x * x; // dy/dx = 4x
        let g = grad(y, &[x]);
        assert!((g[0] - 12.0).abs() < 1e-12);
    }
}
