//! Tracked scalar variables recorded on the thread-local tape.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::rules::{BinFn, UnFn};
use crate::tape::{with_tape, NO_PARENT};

/// A scalar tracked by the reverse-mode tape.
///
/// `Var` is a `Copy` handle holding the value and the node index on the
/// thread-local [`Tape`](crate::Tape). Use [`Var::new`] for differentiable
/// inputs and [`Var::constant`] for values whose gradient is not needed
/// (constants do not allocate tape nodes).
#[derive(Clone, Copy)]
pub struct Var {
    idx: u32,
    val: f64,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.val)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.val)
    }
}

impl Var {
    /// Creates a new differentiable leaf variable on the thread-local tape.
    pub fn new(val: f64) -> Self {
        let idx = with_tape(|t| t.push_leaf());
        Var { idx, val }
    }

    /// Creates an untracked constant. Its gradient is identically zero and it
    /// occupies no tape storage.
    pub fn constant(val: f64) -> Self {
        Var {
            idx: NO_PARENT,
            val,
        }
    }

    /// The current value.
    pub fn value(self) -> f64 {
        self.val
    }

    /// Whether this handle refers to a tape node (constants do not).
    pub fn is_tracked(self) -> bool {
        self.idx != NO_PARENT
    }

    /// Builds a tracked scalar from a precomputed primal `value` and
    /// *analytic* partial derivatives with respect to `parents` — a fused
    /// multi-parent tape node.
    ///
    /// This is the reverse-mode primitive batched density kernels use: the
    /// whole batched computation is evaluated in plain `f64`, its reverse
    /// rule is written analytically, and the tape records a single node with
    /// one `(parent, partial)` entry per tracked input instead of one node
    /// per scalar operation. Constant parents are skipped; if no parent is
    /// tracked the result is a constant (no tape growth).
    ///
    /// # Panics
    /// Panics if `parents` and `partials` have different lengths.
    pub fn fused(value: f64, parents: &[Var], partials: &[f64]) -> Var {
        assert_eq!(
            parents.len(),
            partials.len(),
            "fused node parents/partials length mismatch"
        );
        if !parents.iter().any(|p| p.idx != NO_PARENT) {
            return Var::constant(value);
        }
        let idx = with_tape(|t| {
            t.push_wide(
                parents
                    .iter()
                    .zip(partials)
                    .filter(|(p, _)| p.idx != NO_PARENT)
                    .map(|(p, d)| (p.idx, *d)),
            )
        });
        Var { idx, val: value }
    }

    /// Tape node index (`u32::MAX` for constants).
    pub(crate) fn index(self) -> u32 {
        self.idx
    }

    fn unary(self, val: f64, dself: f64) -> Var {
        if self.idx == NO_PARENT {
            return Var::constant(val);
        }
        let idx = with_tape(|t| t.push_unary(self.idx, dself));
        Var { idx, val }
    }

    /// Applies a unary rule from the shared table ([`crate::rules`]): the
    /// primal and the recorded local partial are exactly the formulas the
    /// tape-free reverse sweeps use, so the two backends cannot drift.
    #[inline]
    pub fn apply_rule(self, f: UnFn) -> Var {
        let v = f.value(self.val);
        self.unary(v, f.partial(self.val, v))
    }

    /// Applies a binary rule from the shared table ([`crate::rules`]): the
    /// primal and the recorded local partials are exactly the formulas the
    /// tape-free reverse sweeps use.
    #[inline]
    pub fn apply_bin_rule(self, other: Var, f: BinFn) -> Var {
        let v = f.value(self.val, other.val);
        let (da, db) = f.partials(self.val, other.val);
        self.binary(other, v, da, db)
    }

    fn binary(self, other: Var, val: f64, dself: f64, dother: f64) -> Var {
        match (self.idx == NO_PARENT, other.idx == NO_PARENT) {
            (true, true) => Var::constant(val),
            (false, true) => self.unary(val, dself),
            (true, false) => other.unary(val, dother),
            (false, false) => {
                let idx = with_tape(|t| t.push_binary(self.idx, dself, other.idx, dother));
                Var { idx, val }
            }
        }
    }

    /// Natural logarithm.
    pub fn ln(self) -> Var {
        self.apply_rule(UnFn::Ln)
    }

    /// `ln(1 + x)`.
    pub fn ln_1p(self) -> Var {
        self.apply_rule(UnFn::Ln1p)
    }

    /// Exponential.
    pub fn exp(self) -> Var {
        self.apply_rule(UnFn::Exp)
    }

    /// Square root.
    pub fn sqrt(self) -> Var {
        self.apply_rule(UnFn::Sqrt)
    }

    /// Integer power.
    pub fn powi(self, n: i32) -> Var {
        self.apply_rule(UnFn::Powi(n))
    }

    /// Real power with a constant exponent.
    pub fn powf(self, p: f64) -> Var {
        self.apply_rule(UnFn::Powf(p))
    }

    /// Absolute value (sub-gradient 0 at 0).
    pub fn abs(self) -> Var {
        self.apply_rule(UnFn::Abs)
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var {
        self.apply_rule(UnFn::Tanh)
    }

    /// Sine.
    pub fn sin(self) -> Var {
        self.apply_rule(UnFn::Sin)
    }

    /// Cosine.
    pub fn cos(self) -> Var {
        self.apply_rule(UnFn::Cos)
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(self) -> Var {
        self.apply_rule(UnFn::Sigmoid)
    }

    /// `ln(1 + e^x)`, numerically stable.
    pub fn softplus(self) -> Var {
        self.apply_rule(UnFn::Softplus)
    }

    /// Log-gamma function.
    pub fn lgamma(self) -> Var {
        self.apply_rule(UnFn::Lgamma)
    }

    /// Reciprocal.
    pub fn recip(self) -> Var {
        self.apply_rule(UnFn::Recip)
    }

    /// Element-wise maximum (sub-gradient follows the larger argument).
    pub fn max_var(self, other: Var) -> Var {
        self.apply_bin_rule(other, BinFn::Max)
    }

    /// Element-wise minimum.
    pub fn min_var(self, other: Var) -> Var {
        self.apply_bin_rule(other, BinFn::Min)
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val
    }
}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.val.partial_cmp(&other.val)
    }
}

impl Add for Var {
    type Output = Var;
    fn add(self, rhs: Var) -> Var {
        self.apply_bin_rule(rhs, BinFn::Add)
    }
}

impl Sub for Var {
    type Output = Var;
    fn sub(self, rhs: Var) -> Var {
        self.apply_bin_rule(rhs, BinFn::Sub)
    }
}

impl Mul for Var {
    type Output = Var;
    fn mul(self, rhs: Var) -> Var {
        self.apply_bin_rule(rhs, BinFn::Mul)
    }
}

impl Div for Var {
    type Output = Var;
    fn div(self, rhs: Var) -> Var {
        self.apply_bin_rule(rhs, BinFn::Div)
    }
}

impl Neg for Var {
    type Output = Var;
    fn neg(self) -> Var {
        self.unary(-self.val, -1.0)
    }
}

impl Add<f64> for Var {
    type Output = Var;
    fn add(self, rhs: f64) -> Var {
        self.unary(self.val + rhs, 1.0)
    }
}

impl Sub<f64> for Var {
    type Output = Var;
    fn sub(self, rhs: f64) -> Var {
        self.unary(self.val - rhs, 1.0)
    }
}

impl Mul<f64> for Var {
    type Output = Var;
    fn mul(self, rhs: f64) -> Var {
        self.unary(self.val * rhs, rhs)
    }
}

impl Div<f64> for Var {
    type Output = Var;
    fn div(self, rhs: f64) -> Var {
        self.unary(self.val / rhs, 1.0 / rhs)
    }
}

impl Add<Var> for f64 {
    type Output = Var;
    fn add(self, rhs: Var) -> Var {
        rhs + self
    }
}

impl Sub<Var> for f64 {
    type Output = Var;
    fn sub(self, rhs: Var) -> Var {
        -rhs + self
    }
}

impl Mul<Var> for f64 {
    type Output = Var;
    fn mul(self, rhs: Var) -> Var {
        rhs * self
    }
}

impl Div<Var> for f64 {
    type Output = Var;
    fn div(self, rhs: Var) -> Var {
        Var::constant(self) / rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{self, grad};

    #[test]
    fn constants_do_not_grow_the_tape() {
        tape::reset();
        let c = Var::constant(3.0);
        let d = c * Var::constant(4.0) + 2.0;
        assert_eq!(d.value(), 14.0);
        assert_eq!(tape::tape_len(), 0);
    }

    #[test]
    fn mixed_scalar_ops() {
        tape::reset();
        let x = Var::new(2.0);
        let y = 3.0 * x + 1.0 - x / 2.0;
        let g = grad(y, &[x]);
        assert!((g[0] - 2.5).abs() < 1e-12);
        assert!((y.value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn division_gradient() {
        tape::reset();
        let a = Var::new(1.0);
        let b = Var::new(4.0);
        let y = a / b;
        let g = grad(y, &[a, b]);
        assert!((g[0] - 0.25).abs() < 1e-12);
        assert!((g[1] + 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_and_softplus_are_consistent() {
        tape::reset();
        let x = Var::new(0.3);
        let s = x.sigmoid();
        let sp = x.softplus();
        let gs = grad(s, &[x]);
        let gsp = grad(sp, &[x]);
        // d softplus / dx = sigmoid(x)
        assert!((gsp[0] - s.value()).abs() < 1e-12);
        assert!((gs[0] - s.value() * (1.0 - s.value())).abs() < 1e-12);
    }

    #[test]
    fn max_min_follow_the_winning_branch() {
        tape::reset();
        let a = Var::new(2.0);
        let b = Var::new(5.0);
        let m = a.max_var(b);
        let g = grad(m, &[a, b]);
        assert_eq!(g, vec![0.0, 1.0]);
        let n = a.min_var(b);
        let g = grad(n, &[a, b]);
        assert_eq!(g, vec![1.0, 0.0]);
    }
}
