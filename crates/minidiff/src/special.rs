//! Special functions needed by probability densities and their gradients.
//!
//! These are plain `f64` implementations; the [`Var`](crate::Var) methods use
//! them for both the primal value and (via [`digamma`]) the tape partials.

/// Log-gamma via the Lanczos approximation (g = 7, n = 9 coefficients).
///
/// Accurate to ~1e-13 for positive arguments; uses the reflection formula for
/// `x < 0.5`.
pub fn lgamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - lgamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Digamma function ψ(x) = d/dx ln Γ(x), by upward recurrence plus the
/// asymptotic series.
pub fn digamma(x: f64) -> f64 {
    let mut x = x;
    let mut result = 0.0;
    if x <= 0.0 && x == x.floor() {
        return f64::NAN;
    }
    if x < 0.0 {
        // Reflection formula ψ(1-x) - ψ(x) = π cot(πx)
        let pi = std::f64::consts::PI;
        return digamma(1.0 - x) - pi / (pi * x).tan();
    }
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Log of the Beta function `ln B(a, b)`.
pub fn lbeta(a: f64, b: f64) -> f64 {
    lgamma(a) + lgamma(b) - lgamma(a + b)
}

/// Numerically stable `ln(1 + e^x)`.
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Stable `ln(sum_i exp(x_i))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Error function, Abramowitz & Stegun 7.1.26 approximation (|err| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (the probit function Φ⁻¹), via
/// Acklam's rational approximation (|relative err| < 1.15e-9), used by the
/// rank-normalization step of the Vehtari et al. (2021) convergence
/// diagnostics.
pub fn inv_std_normal_cdf(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p > 1.0 - P_LOW {
        -inv_std_normal_cdf(1.0 - p)
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lgamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert!(lgamma(1.0).abs() < 1e-10);
        assert!(lgamma(2.0).abs() < 1e-10);
        assert!((lgamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((lgamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_matches_finite_difference_of_lgamma() {
        for &x in &[0.3, 1.0, 2.5, 7.0, 42.0] {
            let h = 1e-6;
            let fd = (lgamma(x + h) - lgamma(x - h)) / (2.0 * h);
            assert!((digamma(x) - fd).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn lbeta_symmetry_and_value() {
        assert!((lbeta(2.0, 3.0) - lbeta(3.0, 2.0)).abs() < 1e-12);
        // B(2,3) = 1/12
        assert!((lbeta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn inv_std_normal_cdf_matches_known_quantiles() {
        assert!((inv_std_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inv_std_normal_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-8);
        assert!((inv_std_normal_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-8);
        assert!((inv_std_normal_cdf(0.001) + 3.090_232_306_167_813).abs() < 1e-8);
        assert_eq!(inv_std_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_std_normal_cdf(1.0), f64::INFINITY);
        assert!(inv_std_normal_cdf(-0.1).is_nan());
        // Round trip through the (approximate) forward CDF.
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let z = inv_std_normal_cdf(p);
            assert!((std_normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn erf_and_cdf_bounds() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(std_normal_cdf(5.0) > 0.999_999);
        assert!(std_normal_cdf(-5.0) < 1e-6);
    }
}
