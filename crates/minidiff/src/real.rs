//! The [`Real`] scalar abstraction shared by plain and tracked evaluation.

use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::special;
use crate::var::Var;

/// A real scalar that supports the elementary functions needed by log
/// probability densities.
///
/// Implemented for `f64` (fast evaluation, no gradient) and [`Var`]
/// (reverse-mode tracked). Density code throughout the workspace is written
/// once against this trait:
///
/// ```
/// use minidiff::Real;
/// fn normal_lpdf<T: Real>(x: T, mu: T, sigma: T) -> T {
///     let z = (x - mu) / sigma;
///     T::from_f64(-0.5 * (2.0 * std::f64::consts::PI).ln()) - sigma.ln() - T::from_f64(0.5) * z * z
/// }
/// assert!((normal_lpdf(0.0f64, 0.0, 1.0) + 0.918938533204672).abs() < 1e-12);
/// ```
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Whether this scalar type records reverse-mode gradients at all
    /// (`true` for [`Var`], `false` for `f64`). Batched kernels use this to
    /// skip partial-derivative bookkeeping entirely on the plain path.
    const TRACKED: bool;
    /// Lifts an untracked constant into the scalar type.
    fn from_f64(v: f64) -> Self;
    /// The current primal value.
    fn value(self) -> f64;
    /// Whether *this value* participates in gradient tracking (`false` for
    /// `f64` and for [`Var`] constants).
    fn is_tracked_value(&self) -> bool;
    /// Builds a scalar from a precomputed primal `value` and analytic
    /// partial derivatives with respect to `parents` — the fused
    /// multi-parent reverse-mode node ([`Var::fused`]). The `f64`
    /// implementation ignores the parents and returns `value`.
    fn fused(value: f64, parents: &[Self], partials: &[f64]) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `ln(1 + x)`.
    fn ln_1p(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Real power with constant exponent.
    fn powf(self, p: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Logistic sigmoid.
    fn sigmoid(self) -> Self;
    /// `ln(1 + e^x)`.
    fn softplus(self) -> Self;
    /// Log-gamma.
    fn lgamma(self) -> Self;
    /// Pairwise maximum.
    fn max_real(self, other: Self) -> Self;
    /// Pairwise minimum.
    fn min_real(self, other: Self) -> Self;
}

impl Real for f64 {
    const TRACKED: bool = false;
    fn from_f64(v: f64) -> Self {
        v
    }
    fn value(self) -> f64 {
        self
    }
    fn is_tracked_value(&self) -> bool {
        false
    }
    fn fused(value: f64, _parents: &[Self], _partials: &[f64]) -> Self {
        value
    }
    fn ln(self) -> Self {
        f64::ln(self)
    }
    fn ln_1p(self) -> Self {
        f64::ln_1p(self)
    }
    fn exp(self) -> Self {
        f64::exp(self)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    fn powf(self, p: f64) -> Self {
        f64::powf(self, p)
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    fn sin(self) -> Self {
        f64::sin(self)
    }
    fn cos(self) -> Self {
        f64::cos(self)
    }
    fn sigmoid(self) -> Self {
        special::sigmoid(self)
    }
    fn softplus(self) -> Self {
        special::softplus(self)
    }
    fn lgamma(self) -> Self {
        special::lgamma(self)
    }
    fn max_real(self, other: Self) -> Self {
        f64::max(self, other)
    }
    fn min_real(self, other: Self) -> Self {
        f64::min(self, other)
    }
}

impl Real for Var {
    const TRACKED: bool = true;
    fn from_f64(v: f64) -> Self {
        Var::constant(v)
    }
    fn value(self) -> f64 {
        Var::value(self)
    }
    fn is_tracked_value(&self) -> bool {
        self.is_tracked()
    }
    fn fused(value: f64, parents: &[Self], partials: &[f64]) -> Self {
        Var::fused(value, parents, partials)
    }
    fn ln(self) -> Self {
        Var::ln(self)
    }
    fn ln_1p(self) -> Self {
        Var::ln_1p(self)
    }
    fn exp(self) -> Self {
        Var::exp(self)
    }
    fn sqrt(self) -> Self {
        Var::sqrt(self)
    }
    fn powi(self, n: i32) -> Self {
        Var::powi(self, n)
    }
    fn powf(self, p: f64) -> Self {
        Var::powf(self, p)
    }
    fn abs(self) -> Self {
        Var::abs(self)
    }
    fn tanh(self) -> Self {
        Var::tanh(self)
    }
    fn sin(self) -> Self {
        Var::sin(self)
    }
    fn cos(self) -> Self {
        Var::cos(self)
    }
    fn sigmoid(self) -> Self {
        Var::sigmoid(self)
    }
    fn softplus(self) -> Self {
        Var::softplus(self)
    }
    fn lgamma(self) -> Self {
        Var::lgamma(self)
    }
    fn max_real(self, other: Self) -> Self {
        Var::max_var(self, other)
    }
    fn min_real(self, other: Self) -> Self {
        Var::min_var(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape;

    fn poly<T: Real>(x: T) -> T {
        x.powi(3) - x * T::from_f64(2.0) + T::from_f64(7.0)
    }

    #[test]
    fn generic_code_agrees_across_impls() {
        let a = poly(1.7f64);
        tape::reset();
        let b = poly(Var::new(1.7));
        assert!((a - b.value()).abs() < 1e-12);
    }

    #[test]
    fn trig_and_special_agree() {
        fn f<T: Real>(x: T) -> T {
            x.sin() * x.cos() + x.sigmoid().ln() - x.softplus() + x.lgamma()
        }
        let a = f(2.3f64);
        tape::reset();
        let b = f(Var::new(2.3));
        assert!((a - b.value()).abs() < 1e-12);
    }
}
