//! Compilation errors.

use std::fmt;

/// Error produced while compiling a Stan program to GProb or to Python.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    message: String,
    /// The compilation scheme that failed, when relevant.
    pub scheme: Option<&'static str>,
}

impl CompileError {
    /// Creates a compile error.
    pub fn new(message: impl Into<String>) -> Self {
        CompileError {
            message: message.into(),
            scheme: None,
        }
    }

    /// Creates a compile error tagged with the scheme that failed.
    pub fn in_scheme(message: impl Into<String>, scheme: &'static str) -> Self {
        CompileError {
            message: message.into(),
            scheme: Some(scheme),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.scheme {
            Some(s) => write!(f, "compilation error ({s} scheme): {}", self.message),
            None => write!(f, "compilation error: {}", self.message),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_scheme() {
        let e = CompileError::in_scheme("parameter `x` sampled twice", "generative");
        assert!(e.to_string().contains("generative"));
        assert!(e.to_string().contains("sampled twice"));
        assert_eq!(CompileError::new("boom").message(), "boom");
    }
}
