//! Static analysis of the non-generative Stan features of Table 1.
//!
//! The three features that defeat the naive generative translation are:
//!
//! * **Left expressions** — the left-hand side of `~` is an arbitrary
//!   expression rather than a parameter or data variable
//!   (e.g. `sum(phi) ~ normal(0, 0.001*N)`).
//! * **Multiple updates** — the same parameter appears on the left-hand side
//!   of more than one `~` statement.
//! * **Implicit priors** — a parameter never appears on the left-hand side of
//!   any `~` statement (its prior is the implicit improper uniform).
//!
//! [`analyze_features`] reports which features a single program uses, and
//! [`FeatureStats`] aggregates prevalence over a corpus — regenerating the
//! percentages of Table 1 over the bundled model zoo.

use std::collections::HashMap;

use stan_frontend::ast::{Expr, Program, Stmt};

/// Which non-generative features a program uses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureReport {
    /// `~` statements whose left-hand side is not a plain variable.
    pub left_expressions: Vec<String>,
    /// Parameters updated by more than one `~` statement.
    pub multiple_updates: Vec<String>,
    /// Parameters with no `~` statement at all.
    pub implicit_priors: Vec<String>,
    /// Whether the program uses `target +=` directly.
    pub uses_target_increment: bool,
}

impl FeatureReport {
    /// Whether the program uses any feature that defeats the generative
    /// translation.
    pub fn is_non_generative(&self) -> bool {
        !self.left_expressions.is_empty()
            || !self.multiple_updates.is_empty()
            || !self.implicit_priors.is_empty()
            || self.uses_target_increment
    }
}

fn walk_tildes<'a>(stmt: &'a Stmt, out: &mut Vec<(&'a Expr, &'a str)>, targets: &mut bool) {
    match stmt {
        Stmt::Tilde { lhs, dist, .. } => out.push((lhs, dist.as_str())),
        Stmt::TargetPlus(_) => *targets = true,
        Stmt::Block(ss) => {
            for s in ss {
                walk_tildes(s, out, targets);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_tildes(then_branch, out, targets);
            if let Some(e) = else_branch {
                walk_tildes(e, out, targets);
            }
        }
        Stmt::ForRange { body, .. } | Stmt::ForEach { body, .. } | Stmt::While { body, .. } => {
            walk_tildes(body, out, targets)
        }
        _ => {}
    }
}

/// Analyzes one program for the non-generative features of Table 1.
pub fn analyze_features(program: &Program) -> FeatureReport {
    let mut report = FeatureReport::default();
    let mut tildes: Vec<(&Expr, &str)> = Vec::new();
    let mut stmts: Vec<&Stmt> = program.model.stmts.iter().collect();
    if let Some(tp) = &program.transformed_parameters {
        stmts.extend(tp.stmts.iter());
    }
    for s in stmts {
        walk_tildes(s, &mut tildes, &mut report.uses_target_increment);
    }

    let params: Vec<&str> = program.parameter_names();
    let mut update_counts: HashMap<&str, usize> = HashMap::new();

    for (lhs, _) in &tildes {
        match lhs {
            Expr::Var(name) => {
                if params.contains(&name.as_str()) {
                    *update_counts.entry(name.as_str()).or_insert(0) += 1;
                }
            }
            Expr::Index(base, _) => match base.lvalue_root() {
                // Indexing a parameter inside a loop is still a plain update
                // (each cell is updated once); indexing anything else is a
                // left expression only if the root is not a variable.
                Some(root) if params.contains(&root) => {
                    // Count at most one update per syntactic site; multiple
                    // syntactic sites on the same parameter count as multiple
                    // updates only when the whole parameter is resampled.
                }
                _ => {}
            },
            other => {
                report
                    .left_expressions
                    .push(format!("{} ~ ...", other.variables().join(", ")));
            }
        }
    }

    for (name, count) in update_counts.iter() {
        if *count > 1 {
            report.multiple_updates.push((*name).to_string());
        }
    }
    for p in &params {
        let updated = tildes.iter().any(|(lhs, _)| match lhs {
            Expr::Var(name) => name == p,
            Expr::Index(base, _) => base.lvalue_root() == Some(p),
            _ => false,
        });
        if !updated {
            report.implicit_priors.push((*p).to_string());
        }
    }
    report.multiple_updates.sort();
    report.implicit_priors.sort();
    report
}

/// Aggregate prevalence of each feature over a corpus of programs — the
/// percentages reported in Table 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureStats {
    /// Number of programs analyzed.
    pub total: usize,
    /// Programs with at least one left expression.
    pub with_left_expression: usize,
    /// Programs with at least one multiply-updated parameter.
    pub with_multiple_updates: usize,
    /// Programs with at least one implicit prior.
    pub with_implicit_prior: usize,
    /// Programs using any non-generative feature.
    pub non_generative: usize,
}

impl FeatureStats {
    /// Aggregates feature reports over a corpus.
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a FeatureReport>) -> Self {
        let mut stats = FeatureStats::default();
        for r in reports {
            stats.total += 1;
            stats.with_left_expression += usize::from(!r.left_expressions.is_empty());
            stats.with_multiple_updates += usize::from(!r.multiple_updates.is_empty());
            stats.with_implicit_prior += usize::from(!r.implicit_priors.is_empty());
            stats.non_generative += usize::from(r.is_non_generative());
        }
        stats
    }

    /// Percentage of programs using left expressions.
    pub fn pct_left_expression(&self) -> f64 {
        percentage(self.with_left_expression, self.total)
    }

    /// Percentage of programs with multiple updates.
    pub fn pct_multiple_updates(&self) -> f64 {
        percentage(self.with_multiple_updates, self.total)
    }

    /// Percentage of programs with implicit priors.
    pub fn pct_implicit_prior(&self) -> f64 {
        percentage(self.with_implicit_prior, self.total)
    }
}

fn percentage(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stan_frontend::parse_program;

    fn report(src: &str) -> FeatureReport {
        analyze_features(&parse_program(src).unwrap())
    }

    #[test]
    fn clean_generative_model_has_no_features() {
        let r = report(
            "data { int N; real y[N]; } parameters { real mu; }
             model { mu ~ normal(0, 1); y ~ normal(mu, 1); }",
        );
        assert!(!r.is_non_generative());
    }

    #[test]
    fn detects_left_expressions() {
        let r = report(
            "parameters { real phi[5]; }
             model { phi ~ normal(0, 1); sum(phi) ~ normal(0, 0.001 * 5); }",
        );
        assert_eq!(r.left_expressions.len(), 1);
        assert!(r.is_non_generative());
    }

    #[test]
    fn detects_multiple_updates() {
        let r = report(
            "parameters { real phi_y; }
             model { phi_y ~ normal(0, 1); phi_y ~ normal(0, 2); }",
        );
        assert_eq!(r.multiple_updates, vec!["phi_y".to_string()]);
    }

    #[test]
    fn detects_implicit_priors() {
        let r = report(
            "data { real y; } parameters { real alpha0; real mu; }
             model { y ~ normal(mu, 1); }",
        );
        assert_eq!(
            r.implicit_priors,
            vec!["alpha0".to_string(), "mu".to_string()]
        );
        // `mu` has no ~ statement either (it only parameterizes the data
        // likelihood), which is precisely Stan's implicit-prior idiom.
    }

    #[test]
    fn target_increment_counts_as_non_generative() {
        let r = report("parameters { real mu; } model { mu ~ normal(0,1); target += -mu; }");
        assert!(r.uses_target_increment);
        assert!(r.is_non_generative());
    }

    #[test]
    fn indexed_parameter_updates_in_loops_are_fine() {
        let r = report(
            "data { int N; } parameters { real theta[N]; }
             model { for (i in 1:N) theta[i] ~ normal(0, 1); }",
        );
        assert!(r.left_expressions.is_empty());
        assert!(r.multiple_updates.is_empty());
        assert!(r.implicit_priors.is_empty());
    }

    #[test]
    fn stats_aggregate_percentages() {
        let reports = vec![
            report("parameters { real a; } model { a ~ normal(0,1); }"),
            report("parameters { real a; } model { sum({a}) ~ normal(0,1); a ~ normal(0,1); }"),
            report("data { real y; } parameters { real a; } model { y ~ normal(a, 1); }"),
            report("parameters { real a; } model { a ~ normal(0,1); a ~ normal(1,1); }"),
        ];
        let stats = FeatureStats::from_reports(&reports);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.with_left_expression, 1);
        assert_eq!(stats.with_multiple_updates, 1);
        assert_eq!(stats.with_implicit_prior, 1);
        assert!((stats.pct_left_expression() - 25.0).abs() < 1e-9);
        assert!((stats.pct_implicit_prior() - 25.0).abs() < 1e-9);
    }
}
