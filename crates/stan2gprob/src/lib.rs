//! `stan2gprob` — the paper's primary contribution: compiling Stan programs
//! to the generative probabilistic language GProb.
//!
//! Three compilation schemes are implemented, exactly as in Sections 2 and 4
//! of the paper:
//!
//! * **Generative** (Section 2.1) — `v ~ D` becomes `v = sample(D)` when `v`
//!   is a parameter and `observe(D, v)` when `v` is data. Fails on the
//!   non-generative features of Table 1.
//! * **Comprehensive** (Section 2.3, Figures 6–7) — every parameter is first
//!   sampled from a uniform / improper-uniform prior over its declared
//!   domain and every `~` statement becomes an observation; handles *all*
//!   Stan programs and is proven correct in Section 3.4.
//! * **Mixed** (Section 4) — the comprehensive translation followed by the
//!   sample/observe merge optimization, recovering generative-looking code
//!   whenever supports match.
//!
//! On top of the compilation to GProb, [`codegen`] emits Pyro and NumPyro
//! Python source in the style of the paper's Stanc3 backends, and
//! [`features`] implements the static analysis behind Table 1 (left
//! expressions, multiple updates, implicit priors).
//!
//! # Example
//!
//! ```
//! use stan2gprob::{compile, Scheme};
//! let src = r#"
//!     data { int N; int<lower=0,upper=1> x[N]; }
//!     parameters { real<lower=0,upper=1> z; }
//!     model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
//! "#;
//! let program = stan_frontend::compile_frontend(src).unwrap();
//! let compiled = compile(&program, Scheme::Comprehensive).unwrap();
//! assert_eq!(compiled.parameter_names(), vec!["z"]);
//! // The comprehensive scheme introduces one prior sample for `z` and turns
//! // both ~ statements into observations.
//! assert_eq!(compiled.body.count_samples(), 1);
//! assert_eq!(compiled.body.count_observes(), 2);
//! ```

pub mod codegen;
pub mod compile;
pub mod error;
pub mod features;

pub use codegen::{to_numpyro, to_pyro};
pub use compile::{compile, compile_resolved, Scheme};
pub use error::CompileError;
pub use features::{analyze_features, FeatureReport};
