//! The three compilation schemes from Stan to GProb.

use gprob::ir::{DistCall, GExpr, GProbProgram, LoopKind, ParamInfo};
use gprob::resolved::{resolve_program, ResolvedProgram};
use stan_frontend::ast::*;

use crate::error::CompileError;
use crate::features::analyze_features;

/// The compilation scheme to use (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Naive generative translation (Section 2.1); fails on non-generative
    /// features.
    Generative,
    /// Comprehensive translation (Section 2.3); handles every Stan program.
    Comprehensive,
    /// Comprehensive translation followed by the sample/observe merge
    /// optimization (Section 4).
    Mixed,
}

impl Scheme {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Generative => "generative",
            Scheme::Comprehensive => "comprehensive",
            Scheme::Mixed => "mixed",
        }
    }
}

/// Compiles a Stan (or DeepStan) program to GProb using the given scheme.
///
/// # Errors
/// * The generative scheme fails on the non-generative features of Table 1.
/// * All schemes reject `ordered` / `simplex`-style constrained parameter
///   types that the backends do not support (mirroring the paper's reported
///   Pyro/NumPyro limitations).
pub fn compile(program: &Program, scheme: Scheme) -> Result<GProbProgram, CompileError> {
    let params = param_infos(program)?;
    let param_names: Vec<String> = params.iter().map(|p| p.name.clone()).collect();

    // The compiled model: transformed parameters inlined before the model
    // statements (Section 3.3), ending with a return of the parameter tuple.
    let mut stmts: Vec<Stmt> = Vec::new();
    if let Some(tp) = &program.transformed_parameters {
        stmts.extend(tp.stmts.iter().cloned());
    }
    stmts.extend(program.model.stmts.iter().cloned());

    let return_expr = if param_names.is_empty() {
        GExpr::Unit
    } else {
        GExpr::Return(Expr::ArrayLit(
            param_names.iter().map(|n| Expr::var(n.clone())).collect(),
        ))
    };

    let body = match scheme {
        Scheme::Generative => {
            let report = analyze_features(program);
            if report.is_non_generative() {
                let mut reasons = Vec::new();
                if !report.left_expressions.is_empty() {
                    reasons.push("left expressions".to_string());
                }
                if !report.multiple_updates.is_empty() {
                    reasons.push(format!(
                        "multiple updates of {}",
                        report.multiple_updates.join(", ")
                    ));
                }
                if !report.implicit_priors.is_empty() {
                    reasons.push(format!(
                        "implicit priors for {}",
                        report.implicit_priors.join(", ")
                    ));
                }
                if report.uses_target_increment {
                    reasons.push("direct target += updates".to_string());
                }
                return Err(CompileError::in_scheme(
                    format!("model uses non-generative features: {}", reasons.join("; ")),
                    "generative",
                ));
            }
            let ctx = Ctx {
                scheme,
                params: &params,
                param_names: &param_names,
            };
            compile_stmts(&stmts, return_expr, &ctx)?
        }
        Scheme::Comprehensive | Scheme::Mixed => {
            let ctx = Ctx {
                scheme: Scheme::Comprehensive,
                params: &params,
                param_names: &param_names,
            };
            let observed = compile_stmts(&stmts, return_expr, &ctx)?;
            // Prepend the prior initialization of every parameter (Figure 6).
            let mut body = observed;
            for p in params.iter().rev() {
                body = GExpr::LetSample {
                    name: p.name.clone(),
                    dist: prior_dist(p),
                    body: Box::new(body),
                };
            }
            if scheme == Scheme::Mixed {
                merge_sample_observe(body, &params)
            } else {
                body
            }
        }
    };

    // Generated quantities: transformed parameters are inlined again because
    // generated quantities may refer to them (Section 3.3).
    let generated_quantities = program.generated_quantities.as_ref().map(|gq| {
        let mut stmts = Vec::new();
        if let Some(tp) = &program.transformed_parameters {
            stmts.extend(tp.stmts.iter().cloned());
        }
        stmts.extend(gq.stmts.iter().cloned());
        BlockBody { stmts }
    });
    // The output columns of per-draw GQ evaluation are the names the source
    // block itself declares — the replayed transformed parameters are
    // scaffolding, not outputs.
    let gq_outputs: Vec<String> = program
        .generated_quantities
        .as_ref()
        .map(|gq| gq.decls().iter().map(|d| d.name.clone()).collect())
        .unwrap_or_default();

    // DeepStan guide: compiled with the generative scheme (the guide must be
    // directly sampleable, Section 5.1).
    let guide_body = match &program.guide {
        Some(guide) => Some(compile_guide(guide, &params)?),
        None => None,
    };

    Ok(GProbProgram {
        name: String::new(),
        data: program.data.clone(),
        params,
        functions: program.functions.clone(),
        networks: program.networks.clone(),
        transformed_data: program.transformed_data.clone(),
        body,
        generated_quantities,
        gq_outputs,
        guide_params: program.guide_parameters.clone(),
        guide_body,
    })
}

/// Compiles a Stan program to GProb *and* lowers it to the slot-resolved
/// form consumed by the frame-based runtime: every variable, parameter and
/// user function is assigned a dense slot, so downstream density evaluation
/// never re-looks names up by string.
///
/// # Errors
/// Same as [`compile`]; the resolution pass itself cannot fail (unbound
/// names surface as runtime errors with their original spelling).
pub fn compile_resolved(
    program: &Program,
    scheme: Scheme,
) -> Result<(GProbProgram, ResolvedProgram), CompileError> {
    let compiled = compile(program, scheme)?;
    let resolved = resolve_program(&compiled);
    Ok((compiled, resolved))
}

struct Ctx<'a> {
    scheme: Scheme,
    params: &'a [ParamInfo],
    param_names: &'a [String],
}

/// Extracts the parameter table: shapes (array dims then container size) and
/// constraint bounds.
fn param_infos(program: &Program) -> Result<Vec<ParamInfo>, CompileError> {
    let mut params = Vec::new();
    for d in &program.parameters {
        let mut shape: Vec<Expr> = d.dims.clone();
        match &d.ty {
            BaseType::Int => {
                return Err(CompileError::new(format!(
                    "parameter `{}` has type int; Stan parameters must be continuous",
                    d.name
                )))
            }
            BaseType::Real => {}
            BaseType::Vector(n) | BaseType::RowVector(n) => shape.push((**n).clone()),
            BaseType::Matrix(r, c) => {
                shape.push((**r).clone());
                shape.push((**c).clone());
            }
            BaseType::Simplex(_)
            | BaseType::Ordered(_)
            | BaseType::PositiveOrdered(_)
            | BaseType::UnitVector(_)
            | BaseType::CovMatrix(_)
            | BaseType::CorrMatrix(_)
            | BaseType::CholeskyFactorCorr(_) => {
                return Err(CompileError::new(format!(
                "constrained parameter type of `{}` is not supported by the Pyro/NumPyro backends",
                d.name
            )))
            }
        }
        params.push(ParamInfo {
            name: d.name.clone(),
            shape,
            lower: d.constraint.lower.clone(),
            upper: d.constraint.upper.clone(),
        });
    }
    Ok(params)
}

/// The prior distribution the comprehensive scheme assigns to a parameter
/// (Figure 6): uniform on a bounded domain, improper uniform otherwise.
fn prior_dist(p: &ParamInfo) -> DistCall {
    match (&p.lower, &p.upper) {
        (Some(lo), Some(hi)) => {
            DistCall::with_shape("uniform", vec![lo.clone(), hi.clone()], p.shape.clone())
        }
        (Some(lo), None) => DistCall::with_shape(
            "improper_uniform",
            vec![lo.clone(), Expr::RealLit(f64::INFINITY)],
            p.shape.clone(),
        ),
        (None, Some(hi)) => DistCall::with_shape(
            "improper_uniform",
            vec![Expr::RealLit(f64::NEG_INFINITY), hi.clone()],
            p.shape.clone(),
        ),
        (None, None) => DistCall::with_shape(
            "improper_uniform",
            vec![
                Expr::RealLit(f64::NEG_INFINITY),
                Expr::RealLit(f64::INFINITY),
            ],
            p.shape.clone(),
        ),
    }
}

/// Compiles a statement sequence with the given continuation (Figure 7).
fn compile_stmts(stmts: &[Stmt], k: GExpr, ctx: &Ctx) -> Result<GExpr, CompileError> {
    let mut body = k;
    for s in stmts.iter().rev() {
        body = compile_stmt(s, body, ctx)?;
    }
    Ok(body)
}

fn compile_stmt(stmt: &Stmt, k: GExpr, ctx: &Ctx) -> Result<GExpr, CompileError> {
    match stmt {
        Stmt::Skip | Stmt::Print(_) => Ok(k),
        Stmt::Break | Stmt::Continue => Err(CompileError::new(
            "break/continue inside probabilistic code are not supported by the backends",
        )),
        Stmt::Return(_) => Err(CompileError::new(
            "return statements are only allowed in user-defined functions",
        )),
        Stmt::Reject(_) => Ok(GExpr::Factor {
            value: Expr::RealLit(f64::NEG_INFINITY),
            body: Box::new(k),
        }),
        Stmt::LocalDecl(d) => Ok(GExpr::LetDecl {
            decl: d.clone(),
            body: Box::new(k),
        }),
        Stmt::Assign { lhs, op, rhs } => {
            let rhs = match op {
                AssignOp::Assign => rhs.clone(),
                _ => {
                    let read = if lhs.indices.is_empty() {
                        Expr::var(lhs.name.clone())
                    } else {
                        Expr::Index(Box::new(Expr::var(lhs.name.clone())), lhs.indices.clone())
                    };
                    let bop = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    Expr::Binary(bop, Box::new(read), Box::new(rhs.clone()))
                }
            };
            if lhs.indices.is_empty() {
                Ok(GExpr::LetDet {
                    name: lhs.name.clone(),
                    value: rhs,
                    body: Box::new(k),
                })
            } else {
                Ok(GExpr::LetIndexed {
                    name: lhs.name.clone(),
                    indices: lhs.indices.clone(),
                    value: rhs,
                    body: Box::new(k),
                })
            }
        }
        Stmt::TargetPlus(e) => Ok(GExpr::Factor {
            value: e.clone(),
            body: Box::new(k),
        }),
        Stmt::Tilde {
            lhs,
            dist,
            args,
            truncation,
        } => {
            if truncation.is_some() {
                return Err(CompileError::new(format!(
                    "truncated distribution `{dist}` is not supported by the Pyro/NumPyro backends"
                )));
            }
            let dist_call = DistCall::new(dist.clone(), args.clone());
            match ctx.scheme {
                Scheme::Generative => {
                    // Parameters become sample statements, data observations.
                    if let Expr::Var(name) = lhs {
                        if ctx.param_names.contains(name) {
                            return Ok(GExpr::LetSample {
                                name: name.clone(),
                                dist: with_param_shape(dist_call, name, ctx),
                                body: Box::new(k),
                            });
                        }
                    }
                    let root = lhs.lvalue_root();
                    if let Some(root) = root {
                        if ctx.param_names.iter().any(|p| p == root) {
                            return Err(CompileError::in_scheme(
                                format!(
                                    "cannot generatively translate an indexed update of parameter `{root}`"
                                ),
                                "generative",
                            ));
                        }
                    }
                    // Anything that is not a parameter (data, transformed
                    // data, or a deterministic local) is observed.
                    Ok(GExpr::Observe {
                        dist: dist_call,
                        value: lhs.clone(),
                        body: Box::new(k),
                    })
                }
                Scheme::Comprehensive | Scheme::Mixed => Ok(GExpr::Observe {
                    dist: dist_call,
                    value: lhs.clone(),
                    body: Box::new(k),
                }),
            }
        }
        Stmt::Block(stmts) => compile_stmts(stmts, k, ctx),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            // Figure 7: the continuation is pushed into both branches.
            let then_c = compile_stmt(then_branch, k.clone(), ctx)?;
            let else_c = match else_branch {
                Some(e) => compile_stmt(e, k, ctx)?,
                None => k,
            };
            Ok(GExpr::If {
                cond: cond.clone(),
                then_branch: Box::new(then_c),
                else_branch: Box::new(else_c),
            })
        }
        Stmt::ForRange { var, lo, hi, body } => {
            let state = body.assigned_names();
            let loop_body = compile_stmt(body, loop_return(&state), ctx)?;
            Ok(GExpr::LetLoop {
                kind: LoopKind::Range {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
                state,
                loop_body: Box::new(loop_body),
                body: Box::new(k),
            })
        }
        Stmt::ForEach {
            var,
            collection,
            body,
        } => {
            let state = body.assigned_names();
            let loop_body = compile_stmt(body, loop_return(&state), ctx)?;
            Ok(GExpr::LetLoop {
                kind: LoopKind::ForEach {
                    var: var.clone(),
                    collection: collection.clone(),
                },
                state,
                loop_body: Box::new(loop_body),
                body: Box::new(k),
            })
        }
        Stmt::While { cond, body } => {
            let state = body.assigned_names();
            let loop_body = compile_stmt(body, loop_return(&state), ctx)?;
            Ok(GExpr::LetLoop {
                kind: LoopKind::While { cond: cond.clone() },
                state,
                loop_body: Box::new(loop_body),
                body: Box::new(k),
            })
        }
    }
}

/// The `return(lhs(s))` continuation that closes a compiled loop body.
fn loop_return(state: &[String]) -> GExpr {
    if state.is_empty() {
        GExpr::Unit
    } else {
        GExpr::Return(Expr::ArrayLit(
            state.iter().map(|n| Expr::var(n.clone())).collect(),
        ))
    }
}

/// Attaches the declared shape of a parameter to a generative sample site so
/// vectorized priors (`theta ~ normal(0, 1)` with `theta` a vector) draw the
/// right number of components.
fn with_param_shape(mut dist: DistCall, name: &str, ctx: &Ctx) -> DistCall {
    if let Some(p) = ctx.params.iter().find(|p| p.name == name) {
        dist.shape = p.shape.clone();
    }
    dist
}

/// The support of a distribution as an optional `(lower, upper)` pair used by
/// the mixed scheme's merge check. `None` means "statically unknown".
fn dist_support(name: &str) -> Option<(f64, f64)> {
    match name {
        "normal" | "cauchy" | "student_t" | "double_exponential" | "logistic" => {
            Some((f64::NEG_INFINITY, f64::INFINITY))
        }
        "lognormal" | "gamma" | "inv_gamma" | "exponential" | "chi_square" => {
            Some((0.0, f64::INFINITY))
        }
        "beta" => Some((0.0, 1.0)),
        _ => None,
    }
}

fn constraint_bounds(p: &ParamInfo) -> Option<(f64, f64)> {
    let bound = |e: &Option<Expr>, default: f64| -> Option<f64> {
        match e {
            None => Some(default),
            Some(Expr::RealLit(v)) => Some(*v),
            Some(Expr::IntLit(v)) => Some(*v as f64),
            Some(Expr::Unary(UnOp::Neg, inner)) => match **inner {
                Expr::RealLit(v) => Some(-v),
                Expr::IntLit(v) => Some(-(v as f64)),
                _ => None,
            },
            _ => None,
        }
    };
    Some((
        bound(&p.lower, f64::NEG_INFINITY)?,
        bound(&p.upper, f64::INFINITY)?,
    ))
}

/// The mixed-scheme optimization (Section 4): when a parameter's first and
/// only probabilistic use is an `observe(D, param)` whose support matches the
/// parameter's declared domain, drop the uniform initialization and turn the
/// observation into `sample(D)`.
///
/// Placement: if the parameter is not read between its initialization and
/// the observation, the sample site replaces the observation in place. If it
/// *is* read earlier (the `transformed parameters` block of a non-centered
/// model reads `theta_trans` before `theta_trans ~ normal(0, 1)` appears),
/// the merged sample site is instead *hoisted* to the position of the
/// dropped initialization — legal exactly when the observation's arguments
/// are evaluable there, i.e. reference only data and earlier parameters,
/// nothing assigned inside the body. Otherwise the parameter keeps its
/// comprehensive-scheme translation.
fn merge_sample_observe(body: GExpr, params: &[ParamInfo]) -> GExpr {
    let mut result = body;
    let assigned = assigned_names(&result);
    for (p_idx, p) in params.iter().enumerate() {
        let Some(cstr) = constraint_bounds(p) else {
            continue;
        };
        // Count observations of the bare parameter at the top level of the
        // continuation chain and make sure there is exactly one.
        let mut top_level_obs = 0usize;
        let mut any_obs = 0usize;
        let mut obs_dist: Option<DistCall> = None;
        result.visit(&mut |e| {
            if let GExpr::Observe { value, .. } = e {
                if matches!(value, Expr::Var(n) if n == &p.name) {
                    any_obs += 1;
                }
            }
        });
        walk_top_level(&result, &mut |e| {
            if let GExpr::Observe { value, dist, .. } = e {
                if matches!(value, Expr::Var(n) if n == &p.name)
                    && dist_support(&dist.name) == Some(cstr)
                    && !dist.args.iter().any(|a| a.variables().contains(&p.name))
                {
                    top_level_obs += 1;
                    obs_dist = Some(dist.clone());
                }
            }
        });
        if any_obs != 1 || top_level_obs != 1 {
            continue;
        }
        if !read_before_observe(&result, &p.name) {
            result = apply_merge(result, p);
        } else if let Some(dist) = obs_dist {
            // The parameter is read before its observation. The sample site
            // can still be hoisted to the initialization position when its
            // arguments are evaluable there: only data or parameters sampled
            // earlier, never a name assigned in the body (transformed
            // parameters, loop variables) or a later parameter.
            let arg_vars: Vec<String> = dist.args.iter().flat_map(|a| a.variables()).collect();
            let hoistable = arg_vars.iter().all(|v| {
                !assigned.contains(v)
                    && params
                        .iter()
                        .position(|q| &q.name == v)
                        .is_none_or(|j| j < p_idx)
            });
            if hoistable {
                result = apply_merge_hoisted(result, p, &dist);
            }
        }
    }
    result
}

/// Every name the body assigns (deterministic lets, indexed updates, local
/// declarations and loop variables) — names whose value at the top of the
/// chain differs from their value later, so hoisted sample sites must not
/// reference them.
fn assigned_names(body: &GExpr) -> Vec<String> {
    let mut out = Vec::new();
    body.visit(&mut |e| {
        let name = match e {
            GExpr::LetDecl { decl, .. } => Some(decl.name.clone()),
            GExpr::LetDet { name, .. } | GExpr::LetIndexed { name, .. } => Some(name.clone()),
            GExpr::LetLoop { kind, .. } => match kind {
                LoopKind::Range { var, .. } | LoopKind::ForEach { var, .. } => Some(var.clone()),
                LoopKind::While { .. } => None,
            },
            _ => None,
        };
        if let Some(n) = name {
            if !out.contains(&n) {
                out.push(n);
            }
        }
    });
    out
}

/// Replaces the parameter's prior-initialization sample site with
/// `sample(dist)` (shape-annotated) and removes its observation — the
/// hoisting variant of [`apply_merge`], used when the parameter is read
/// between the two sites.
fn apply_merge_hoisted(e: GExpr, p: &ParamInfo, dist: &DistCall) -> GExpr {
    match e {
        GExpr::LetSample {
            name,
            dist: _,
            body,
        } if name == p.name => GExpr::LetSample {
            name,
            dist: DistCall::with_shape(dist.name.clone(), dist.args.clone(), p.shape.clone()),
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::Observe {
            dist: obs,
            value,
            body,
        } => {
            if matches!(&value, Expr::Var(n) if n == &p.name) {
                apply_merge_hoisted(*body, p, dist)
            } else {
                GExpr::Observe {
                    dist: obs,
                    value,
                    body: Box::new(apply_merge_hoisted(*body, p, dist)),
                }
            }
        }
        GExpr::LetDecl { decl, body } => GExpr::LetDecl {
            decl,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::LetDet { name, value, body } => GExpr::LetDet {
            name,
            value,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::LetIndexed {
            name,
            indices,
            value,
            body,
        } => GExpr::LetIndexed {
            name,
            indices,
            value,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::LetSample {
            name,
            dist: d,
            body,
        } => GExpr::LetSample {
            name,
            dist: d,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::Factor { value, body } => GExpr::Factor {
            value,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        GExpr::LetLoop {
            kind,
            state,
            loop_body,
            body,
        } => GExpr::LetLoop {
            kind,
            state,
            loop_body,
            body: Box::new(apply_merge_hoisted(*body, p, dist)),
        },
        other @ (GExpr::If { .. } | GExpr::Return(_) | GExpr::Unit) => other,
    }
}

/// Walks only the spine of the continuation chain (no loop bodies or
/// conditional branches).
fn walk_top_level(e: &GExpr, f: &mut impl FnMut(&GExpr)) {
    f(e);
    match e {
        GExpr::LetDecl { body, .. }
        | GExpr::LetDet { body, .. }
        | GExpr::LetIndexed { body, .. }
        | GExpr::LetSample { body, .. }
        | GExpr::Observe { body, .. }
        | GExpr::Factor { body, .. }
        | GExpr::LetLoop { body, .. } => walk_top_level(body, f),
        GExpr::If { .. } | GExpr::Return(_) | GExpr::Unit => {}
    }
}

/// Whether the parameter is read by any expression before the observation
/// that samples it (scanning the top-level chain).
fn read_before_observe(e: &GExpr, param: &str) -> bool {
    fn uses(expr: &Expr, param: &str) -> bool {
        expr.variables().iter().any(|v| v == param)
    }
    let mut current = e;
    loop {
        match current {
            GExpr::Observe { dist, value, body } => {
                if matches!(value, Expr::Var(n) if n == param) {
                    return false; // reached the merge site first
                }
                if uses(value, param) || dist.args.iter().any(|a| uses(a, param)) {
                    return true;
                }
                current = body;
            }
            GExpr::LetSample { dist, body, name } => {
                if name != param && dist.args.iter().any(|a| uses(a, param)) {
                    return true;
                }
                current = body;
            }
            GExpr::LetDet { value, body, .. } => {
                if uses(value, param) {
                    return true;
                }
                current = body;
            }
            GExpr::LetIndexed {
                value,
                indices,
                body,
                ..
            } => {
                if uses(value, param) || indices.iter().any(|i| uses(i, param)) {
                    return true;
                }
                current = body;
            }
            GExpr::LetDecl { decl, body } => {
                if decl.init.as_ref().is_some_and(|i| uses(i, param)) {
                    return true;
                }
                current = body;
            }
            GExpr::Factor { value, body } => {
                if uses(value, param) {
                    return true;
                }
                current = body;
            }
            GExpr::LetLoop {
                loop_body,
                body,
                kind,
                ..
            } => {
                // Conservatively treat any use inside the loop as a read.
                let mut used = false;
                loop_body.visit(&mut |sub| {
                    let exprs: Vec<&Expr> = match sub {
                        GExpr::Observe { dist, value, .. } => {
                            let mut v: Vec<&Expr> = dist.args.iter().collect();
                            v.push(value);
                            v
                        }
                        GExpr::Factor { value, .. } | GExpr::LetDet { value, .. } => vec![value],
                        GExpr::LetIndexed { value, indices, .. } => {
                            let mut v: Vec<&Expr> = indices.iter().collect();
                            v.push(value);
                            v
                        }
                        GExpr::LetDecl { decl, .. } => {
                            let mut v: Vec<&Expr> = decl.dims.iter().collect();
                            v.extend(decl.init.as_ref());
                            v
                        }
                        GExpr::LetSample { dist, .. } => dist.args.iter().collect(),
                        GExpr::If { cond, .. } => vec![cond],
                        GExpr::Return(e) => vec![e],
                        // Nested loop *headers* read too (bodies are reached
                        // by the visit recursion itself).
                        GExpr::LetLoop { kind, .. } => match kind {
                            LoopKind::Range { lo, hi, .. } => vec![lo, hi],
                            LoopKind::ForEach { collection, .. } => vec![collection],
                            LoopKind::While { cond } => vec![cond],
                        },
                        GExpr::Unit => vec![],
                    };
                    if exprs.iter().any(|ex| uses(ex, param)) {
                        used = true;
                    }
                });
                let header_uses = match kind {
                    LoopKind::Range { lo, hi, .. } => uses(lo, param) || uses(hi, param),
                    LoopKind::ForEach { collection, .. } => uses(collection, param),
                    LoopKind::While { cond } => uses(cond, param),
                };
                if used || header_uses {
                    return true;
                }
                current = body;
            }
            GExpr::If { .. } | GExpr::Return(_) | GExpr::Unit => return false,
        }
    }
}

/// Removes the uniform initialization of `param` and rewrites its observation
/// into a sample site.
fn apply_merge(e: GExpr, p: &ParamInfo) -> GExpr {
    match e {
        GExpr::LetSample {
            name,
            dist: _,
            body,
        } if name == p.name => {
            // Drop the initialization; continue rewriting below.
            apply_merge(*body, p)
        }
        GExpr::Observe { dist, value, body } if matches!(&value, Expr::Var(n) if n == &p.name) => {
            GExpr::LetSample {
                name: p.name.clone(),
                dist: DistCall::with_shape(dist.name, dist.args, p.shape.clone()),
                body,
            }
        }
        GExpr::LetDecl { decl, body } => GExpr::LetDecl {
            decl,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::LetDet { name, value, body } => GExpr::LetDet {
            name,
            value,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::LetIndexed {
            name,
            indices,
            value,
            body,
        } => GExpr::LetIndexed {
            name,
            indices,
            value,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::LetSample { name, dist, body } => GExpr::LetSample {
            name,
            dist,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::Observe { dist, value, body } => GExpr::Observe {
            dist,
            value,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::Factor { value, body } => GExpr::Factor {
            value,
            body: Box::new(apply_merge(*body, p)),
        },
        GExpr::LetLoop {
            kind,
            state,
            loop_body,
            body,
        } => GExpr::LetLoop {
            kind,
            state,
            loop_body,
            body: Box::new(apply_merge(*body, p)),
        },
        other @ (GExpr::If { .. } | GExpr::Return(_) | GExpr::Unit) => other,
    }
}

/// Compiles a DeepStan guide with the generative scheme: every `~` statement
/// over a model parameter becomes a sample site; non-generative features are
/// rejected (the guide must describe a directly sampleable distribution).
fn compile_guide(guide: &BlockBody, params: &[ParamInfo]) -> Result<GExpr, CompileError> {
    let param_names: Vec<String> = params.iter().map(|p| p.name.clone()).collect();
    let ctx = Ctx {
        scheme: Scheme::Generative,
        params,
        param_names: &param_names,
    };
    let ret = if param_names.is_empty() {
        GExpr::Unit
    } else {
        GExpr::Return(Expr::ArrayLit(
            param_names.iter().map(|n| Expr::var(n.clone())).collect(),
        ))
    };
    compile_stmts(&guide.stmts, ret, &ctx).map_err(|e| {
        CompileError::in_scheme(
            format!("guide must be generative: {}", e.message()),
            "generative",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stan_frontend::parse_program;

    const COIN: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
    "#;

    fn compile_src(src: &str, scheme: Scheme) -> Result<GProbProgram, CompileError> {
        compile(&parse_program(src).unwrap(), scheme)
    }

    #[test]
    fn comprehensive_coin_matches_figure_2b() {
        let p = compile_src(COIN, Scheme::Comprehensive).unwrap();
        // z is sampled from uniform(0,1), then beta(1,1) and the bernoullis
        // are observations.
        assert_eq!(p.body.count_samples(), 1);
        assert_eq!(p.body.count_observes(), 2);
        match &p.body {
            GExpr::LetSample { name, dist, .. } => {
                assert_eq!(name, "z");
                assert_eq!(dist.name, "uniform");
            }
            other => panic!("expected prior sample first, got {other:?}"),
        }
    }

    #[test]
    fn generative_coin_matches_figure_2a() {
        let p = compile_src(COIN, Scheme::Generative).unwrap();
        match &p.body {
            GExpr::LetSample { name, dist, .. } => {
                assert_eq!(name, "z");
                assert_eq!(dist.name, "beta");
            }
            other => panic!("expected beta sample first, got {other:?}"),
        }
        assert_eq!(p.body.count_observes(), 1);
    }

    #[test]
    fn mixed_coin_recovers_the_generative_code() {
        // beta has support [0,1] which matches z's constraint, so the mixed
        // scheme merges the uniform initialization with the observation.
        let p = compile_src(COIN, Scheme::Mixed).unwrap();
        assert_eq!(p.body.count_samples(), 1);
        assert_eq!(p.body.count_observes(), 1);
        match &p.body {
            GExpr::LetSample { dist, .. } => assert_eq!(dist.name, "beta"),
            other => panic!("expected merged sample, got {other:?}"),
        }
    }

    #[test]
    fn mixed_does_not_merge_when_supports_differ() {
        // sigma is constrained positive but normal has support R: Stan
        // truncates implicitly, so the merge must NOT happen (Section 4).
        let src = "parameters { real<lower=0> sigma; } model { sigma ~ normal(0, 1); }";
        let p = compile_src(src, Scheme::Mixed).unwrap();
        match &p.body {
            GExpr::LetSample { dist, .. } => assert_eq!(dist.name, "improper_uniform"),
            other => panic!("expected improper_uniform prior, got {other:?}"),
        }
        assert_eq!(p.body.count_observes(), 1);
    }

    #[test]
    fn generative_rejects_non_generative_features() {
        let left =
            "parameters { real phi[3]; } model { phi ~ normal(0,1); sum(phi) ~ normal(0, 0.1); }";
        let err = compile_src(left, Scheme::Generative).unwrap_err();
        assert!(err.message().contains("left expressions"));

        let multi = "parameters { real a; } model { a ~ normal(0,1); a ~ normal(1,1); }";
        assert!(compile_src(multi, Scheme::Generative).is_err());

        let implicit = "data { real y; } parameters { real a; } model { y ~ normal(a, 1); }";
        assert!(compile_src(implicit, Scheme::Generative).is_err());

        // The comprehensive scheme accepts all three.
        assert!(compile_src(left, Scheme::Comprehensive).is_ok());
        assert!(compile_src(multi, Scheme::Comprehensive).is_ok());
        assert!(compile_src(implicit, Scheme::Comprehensive).is_ok());
    }

    #[test]
    fn truncation_is_a_compile_error() {
        let src = "parameters { real mu; } model { mu ~ normal(0, 1) T[0, ]; }";
        let err = compile_src(src, Scheme::Comprehensive).unwrap_err();
        assert!(err.message().contains("truncated"));
    }

    #[test]
    fn unsupported_parameter_types_are_rejected() {
        let src = "parameters { ordered[3] c; } model { c ~ normal(0, 1); }";
        assert!(compile_src(src, Scheme::Comprehensive).is_err());
    }

    #[test]
    fn loops_carry_their_state_variables() {
        let src = r#"
            data { int N; real y[N]; }
            parameters { real mu; }
            model {
              real acc;
              acc = 0;
              for (i in 1:N) { acc = acc + y[i]; }
              target += acc;
              mu ~ normal(0, 1);
            }
        "#;
        let p = compile_src(src, Scheme::Comprehensive).unwrap();
        let mut found_loop = false;
        p.body.visit(&mut |e| {
            if let GExpr::LetLoop { state, .. } = e {
                found_loop = true;
                assert_eq!(state, &vec!["acc".to_string()]);
            }
        });
        assert!(found_loop);
    }

    #[test]
    fn transformed_parameters_are_inlined_and_gq_kept() {
        let src = r#"
            data { real y; }
            parameters { real mu; }
            transformed parameters { real mu2; mu2 = mu * 2; }
            model { y ~ normal(mu2, 1); mu ~ normal(0, 1); }
            generated quantities { real yrep; yrep = normal_rng(mu2, 1); }
        "#;
        let p = compile_src(src, Scheme::Comprehensive).unwrap();
        // mu2 must be defined inside the compiled body (inlined).
        let mut saw_mu2 = false;
        p.body.visit(&mut |e| {
            if let GExpr::LetDet { name, .. } = e {
                if name == "mu2" {
                    saw_mu2 = true;
                }
            }
        });
        assert!(saw_mu2);
        // generated quantities keeps the transformed parameters prefix.
        let gq = p.generated_quantities.unwrap();
        assert!(gq.stmts.len() >= 3);
    }

    #[test]
    fn guide_blocks_are_compiled_generatively() {
        let src = r#"
            parameters { real theta; }
            model { theta ~ normal(0, 1); }
            guide parameters { real m; real<lower=0> s; }
            guide { theta ~ normal(m, s); }
        "#;
        let p = compile_src(src, Scheme::Comprehensive).unwrap();
        let guide = p.guide_body.unwrap();
        match &guide {
            GExpr::LetSample { name, dist, .. } => {
                assert_eq!(name, "theta");
                assert_eq!(dist.name, "normal");
            }
            other => panic!("expected sample in guide, got {other:?}"),
        }
        assert_eq!(p.guide_params.len(), 2);
    }

    #[test]
    fn mixed_hoists_merges_read_by_transformed_parameters() {
        // Non-centered parameterization: the transformed-parameters loop
        // reads mu, tau and theta_trans BEFORE their ~ statements appear in
        // the model block. The merged sample sites must be hoisted to the
        // initialization position (not left at the observation position,
        // which historically produced "unbound variable" at density time).
        let src = r#"
            data { int J; real y[J]; real<lower=0> sigma[J]; }
            parameters { real mu; real<lower=0> tau; real theta_trans[J]; }
            transformed parameters {
              real theta[J];
              for (j in 1:J) theta[j] = theta_trans[j] * tau + mu;
            }
            model {
              mu ~ normal(0, 5);
              tau ~ cauchy(0, 5);
              theta_trans ~ normal(0, 1);
              y ~ normal(theta, sigma);
            }
        "#;
        let p = compile_src(src, Scheme::Mixed).unwrap();
        // mu (R ~ normal) and theta_trans (R^J ~ normal) merge and hoist;
        // tau cannot merge (cauchy support R vs constraint R+). Sites:
        // sample mu, sample tau (improper), sample theta_trans = 3 samples;
        // observes: tau ~ cauchy and y ~ normal = 2.
        assert_eq!(p.body.count_samples(), 3);
        assert_eq!(p.body.count_observes(), 2);
        // The hoisted sites sit BEFORE the transformed-parameters loop: the
        // spine must start sample(mu, normal), sample(tau, improper),
        // sample(theta_trans, normal).
        match &p.body {
            GExpr::LetSample { name, dist, body } => {
                assert_eq!(name, "mu");
                assert_eq!(dist.name, "normal");
                match &**body {
                    GExpr::LetSample { name, dist, body } => {
                        assert_eq!(name, "tau");
                        assert_eq!(dist.name, "improper_uniform");
                        match &**body {
                            GExpr::LetSample { name, dist, .. } => {
                                assert_eq!(name, "theta_trans");
                                assert_eq!(dist.name, "normal");
                                assert_eq!(dist.shape.len(), 1);
                            }
                            other => panic!("expected theta_trans sample, got {other:?}"),
                        }
                    }
                    other => panic!("expected tau sample, got {other:?}"),
                }
            }
            other => panic!("expected mu sample first, got {other:?}"),
        }
    }

    #[test]
    fn reads_in_nested_loop_headers_block_the_in_place_merge() {
        // alpha is read only by a `while` HEADER nested inside a `for` body.
        // The read-before check must see it (and hoist the merge to the top
        // instead of relocating alpha's sample site after the read).
        let src = r#"
            data { real y; }
            parameters { real alpha; }
            transformed parameters {
              real acc;
              acc = 0;
              for (j in 1:2) { while (acc < alpha) acc = acc + 1; }
            }
            model {
              alpha ~ normal(0, 1);
              y ~ normal(acc, 1);
            }
        "#;
        let p = compile_src(src, Scheme::Mixed).unwrap();
        match &p.body {
            GExpr::LetSample { name, dist, .. } => {
                assert_eq!(name, "alpha");
                assert_eq!(dist.name, "normal");
            }
            other => panic!("expected hoisted alpha sample first, got {other:?}"),
        }
        assert_eq!(p.body.count_samples(), 1);
        assert_eq!(p.body.count_observes(), 1);
    }

    #[test]
    fn merges_whose_args_read_transformed_values_stay_comprehensive() {
        // alpha's observation argument reads a transformed value computed
        // after alpha is read — neither in-place merge (read-before) nor
        // hoisting (argument not evaluable at the top) is legal.
        let src = r#"
            data { real y; }
            parameters { real alpha; }
            transformed parameters { real m; m = alpha * 2; }
            model {
              real c;
              c = m + 1;
              alpha ~ normal(c, 1);
              y ~ normal(alpha, 1);
            }
        "#;
        let p = compile_src(src, Scheme::Mixed).unwrap();
        match &p.body {
            GExpr::LetSample { name, dist, .. } => {
                assert_eq!(name, "alpha");
                assert_eq!(dist.name, "improper_uniform");
            }
            other => panic!("expected improper prior retained, got {other:?}"),
        }
        assert_eq!(p.body.count_observes(), 2);
    }

    #[test]
    fn mixed_handles_vectorized_parameter_priors() {
        let src = r#"
            data { int N; real y[N]; }
            parameters { real mu; real<lower=0> sigma; vector[2] beta; }
            model {
              mu ~ normal(0, 10);
              sigma ~ lognormal(0, 1);
              beta ~ normal(0, 5);
              y ~ normal(mu + beta[1], sigma);
            }
        "#;
        let p = compile_src(src, Scheme::Mixed).unwrap();
        // mu (R ~ normal: merge), sigma (R+ ~ lognormal: merge), beta (R^2 ~
        // normal: merge) => three proper sample sites + 1 observe of y.
        assert_eq!(p.body.count_observes(), 1);
        assert_eq!(p.body.count_samples(), 3);
    }
}
