//! Python code generation: the Pyro and NumPyro backends.
//!
//! Given a compiled [`GProbProgram`], these functions emit the Python model
//! (and guide) functions in the style of the paper's Stanc3 backends —
//! Figure 2 for the Pyro output and the lambda-lifted `fori_loop` style of
//! Section 4 for NumPyro. The generated text is what the original system
//! would hand to the Pyro / NumPyro runtimes; in this reproduction it is used
//! for inspection, golden tests and documentation, while execution goes
//! through the `gprob` interpreter.

use gprob::ir::{DistCall, GExpr, GProbProgram, LoopKind};
use stan_frontend::ast::{BinOp, Expr, UnOp};

/// Target backend flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Pyro,
    NumPyro,
}

/// Generates Pyro Python source for the compiled program.
pub fn to_pyro(program: &GProbProgram, model_name: &str) -> String {
    generate(program, model_name, Backend::Pyro)
}

/// Generates NumPyro Python source for the compiled program (loops are
/// lambda-lifted into `fori_loop` bodies as described in Section 4).
pub fn to_numpyro(program: &GProbProgram, model_name: &str) -> String {
    generate(program, model_name, Backend::NumPyro)
}

fn generate(program: &GProbProgram, model_name: &str, backend: Backend) -> String {
    let mut out = String::new();
    match backend {
        Backend::Pyro => {
            out.push_str("import torch\nimport pyro\nimport pyro.distributions as dist\n\n");
        }
        Backend::NumPyro => {
            out.push_str(
                "import jax.numpy as jnp\nfrom jax.lax import fori_loop\nimport numpyro\nimport numpyro.distributions as dist\n\n",
            );
        }
    }
    let data_args: Vec<String> = program.data.iter().map(|d| d.name.clone()).collect();
    out.push_str(&format!(
        "def {}({}):\n",
        sanitize(model_name),
        data_args.join(", ")
    ));
    let mut gen = Gen {
        backend,
        indent: 1,
        counter: 0,
        out: String::new(),
    };
    gen.emit_gexpr(&program.body);
    if gen.out.is_empty() {
        gen.line("pass");
    }
    out.push_str(&gen.out);

    if let Some(guide) = &program.guide_body {
        out.push('\n');
        out.push_str(&format!(
            "def {}_guide({}):\n",
            sanitize(model_name),
            data_args.join(", ")
        ));
        let mut ggen = Gen {
            backend,
            indent: 1,
            counter: 0,
            out: String::new(),
        };
        for gp in &program.guide_params {
            ggen.line(&format!(
                "{} = pyro.param('{}', torch.zeros(()))",
                sanitize(&gp.name),
                gp.name
            ));
        }
        ggen.emit_gexpr(guide);
        out.push_str(&ggen.out);
    }
    out
}

struct Gen {
    backend: Backend,
    indent: usize,
    counter: usize,
    out: String,
}

impl Gen {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}__{}", self.counter)
    }

    fn emit_gexpr(&mut self, e: &GExpr) {
        match e {
            GExpr::Unit => {}
            GExpr::Return(expr) => {
                let py = py_expr(expr);
                self.line(&format!("return {py}"));
            }
            GExpr::LetDecl { decl, body } => {
                match &decl.init {
                    Some(init) => {
                        let py = py_expr(init);
                        self.line(&format!("{} = {py}", sanitize(&decl.name)));
                    }
                    None => {
                        let zeros = match self.backend {
                            Backend::Pyro => "torch.zeros",
                            Backend::NumPyro => "jnp.zeros",
                        };
                        let dims: Vec<String> = decl.dims.iter().map(py_expr).collect();
                        let shape = if dims.is_empty() {
                            "()".to_string()
                        } else {
                            format!("({},)", dims.join(", "))
                        };
                        self.line(&format!("{} = {zeros}({shape})", sanitize(&decl.name)));
                    }
                }
                self.emit_gexpr(body);
            }
            GExpr::LetDet { name, value, body } => {
                self.line(&format!("{} = {}", sanitize(name), py_expr(value)));
                self.emit_gexpr(body);
            }
            GExpr::LetIndexed {
                name,
                indices,
                value,
                body,
            } => {
                let idx: Vec<String> = indices
                    .iter()
                    .map(|i| format!("{} - 1", py_expr(i)))
                    .collect();
                match self.backend {
                    Backend::Pyro => self.line(&format!(
                        "{}[{}] = {}",
                        sanitize(name),
                        idx.join(", "),
                        py_expr(value)
                    )),
                    Backend::NumPyro => self.line(&format!(
                        "{n} = {n}.at[{i}].set({v})",
                        n = sanitize(name),
                        i = idx.join(", "),
                        v = py_expr(value)
                    )),
                }
                self.emit_gexpr(body);
            }
            GExpr::LetSample { name, dist, body } => {
                let d = py_dist(dist);
                let module = self.module();
                self.line(&format!(
                    "{} = {module}.sample('{}', {d})",
                    sanitize(name),
                    name
                ));
                self.emit_gexpr(body);
            }
            GExpr::Observe { dist, value, body } => {
                let d = py_dist(dist);
                let site = self.fresh("obs");
                let module = self.module();
                self.line(&format!(
                    "{module}.sample('{site}', {d}, obs={})",
                    py_expr(value)
                ));
                self.emit_gexpr(body);
            }
            GExpr::Factor { value, body } => {
                let site = self.fresh("factor");
                let module = self.module();
                self.line(&format!("{module}.factor('{site}', {})", py_expr(value)));
                self.emit_gexpr(body);
            }
            GExpr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.line(&format!("if {}:", py_expr(cond)));
                self.indent += 1;
                self.emit_gexpr(then_branch);
                if self.out.ends_with(":\n") {
                    self.line("pass");
                }
                self.indent -= 1;
                self.line("else:");
                self.indent += 1;
                self.emit_gexpr(else_branch);
                if self.out.ends_with(":\n") {
                    self.line("pass");
                }
                self.indent -= 1;
            }
            GExpr::LetLoop {
                kind,
                state,
                loop_body,
                body,
            } => {
                match (self.backend, kind) {
                    (Backend::NumPyro, LoopKind::Range { var, lo, hi }) => {
                        // Lambda-lift the body into a fori_loop as in Section 4.
                        let fname = self.fresh("fori");
                        let acc = if state.is_empty() {
                            "acc".to_string()
                        } else {
                            format!(
                                "({},)",
                                state
                                    .iter()
                                    .map(|s| sanitize(s))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        self.line(&format!("def {fname}({}, {acc}):", sanitize(var)));
                        self.indent += 1;
                        self.emit_gexpr(loop_body);
                        if state.is_empty() {
                            self.line("return None");
                        }
                        self.indent -= 1;
                        self.line(&format!(
                            "_ = fori_loop({}, {} + 1, {fname}, {})",
                            py_expr(lo),
                            py_expr(hi),
                            if state.is_empty() {
                                "None".to_string()
                            } else {
                                acc
                            }
                        ));
                    }
                    _ => {
                        match kind {
                            LoopKind::Range { var, lo, hi } => self.line(&format!(
                                "for {} in range({}, {} + 1):",
                                sanitize(var),
                                py_expr(lo),
                                py_expr(hi)
                            )),
                            LoopKind::ForEach { var, collection } => self.line(&format!(
                                "for {} in {}:",
                                sanitize(var),
                                py_expr(collection)
                            )),
                            LoopKind::While { cond } => {
                                self.line(&format!("while {}:", py_expr(cond)))
                            }
                        }
                        self.indent += 1;
                        self.emit_gexpr(loop_body);
                        if self.out.ends_with(":\n") {
                            self.line("pass");
                        }
                        self.indent -= 1;
                    }
                }
                self.emit_gexpr(body);
            }
        }
    }

    fn module(&self) -> &'static str {
        match self.backend {
            Backend::Pyro => "pyro",
            Backend::NumPyro => "numpyro",
        }
    }
}

/// Maps a Stan distribution name to the Pyro/NumPyro distribution class.
fn py_dist(d: &DistCall) -> String {
    let args: Vec<String> = d.args.iter().map(py_expr).collect();
    let (class, args) = match d.name.as_str() {
        "normal" => ("Normal", args),
        "lognormal" => ("LogNormal", args),
        "uniform" => ("Uniform", args),
        "improper_uniform" => ("ImproperUniform", args),
        "beta" => ("Beta", args),
        "gamma" => ("Gamma", args),
        "inv_gamma" => ("InverseGamma", args),
        "exponential" => ("Exponential", args),
        "cauchy" => ("Cauchy", args),
        "student_t" => ("StudentT", args),
        "double_exponential" => ("Laplace", args),
        "chi_square" => ("Chi2", args),
        "bernoulli" => ("Bernoulli", args),
        "bernoulli_logit" => ("Bernoulli", vec![format!("logits={}", args.join(", "))]),
        "binomial" => ("Binomial", args),
        "poisson" => ("Poisson", args),
        "categorical" => ("Categorical", args),
        "categorical_logit" => ("Categorical", vec![format!("logits={}", args.join(", "))]),
        "dirichlet" => ("Dirichlet", args),
        "multi_normal" => ("MultivariateNormal", args),
        other => return format!("dist.{}({})", camel(other), args.join(", ")),
    };
    let mut text = format!("dist.{class}({})", args.join(", "));
    if !d.shape.is_empty() {
        let dims: Vec<String> = d.shape.iter().map(py_expr).collect();
        text.push_str(&format!(".expand([{}])", dims.join(", ")));
    }
    text
}

/// Converts a Stan expression to Python source, handling the 1-based to
/// 0-based index shift.
pub fn py_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::RealLit(v) => {
            if v.is_infinite() {
                if *v > 0.0 {
                    "float('inf')".to_string()
                } else {
                    "float('-inf')".to_string()
                }
            } else {
                format!("{v:?}")
            }
        }
        Expr::StringLit(s) => format!("{s:?}"),
        Expr::Var(x) => sanitize(x),
        Expr::Call(f, args) => {
            let a: Vec<String> = args.iter().map(py_expr).collect();
            format!("{}({})", py_function(f), a.join(", "))
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Pow => "**".to_string(),
                BinOp::EltMul => "*".to_string(),
                BinOp::EltDiv => "/".to_string(),
                BinOp::And => "and".to_string(),
                BinOp::Or => "or".to_string(),
                other => other.symbol().to_string(),
            };
            format!("({} {} {})", py_expr(a), sym, py_expr(b))
        }
        Expr::Unary(op, a) => match op {
            UnOp::Neg => format!("(-{})", py_expr(a)),
            UnOp::Not => format!("(not {})", py_expr(a)),
            UnOp::Plus => py_expr(a),
        },
        Expr::Index(base, idx) => {
            let parts: Vec<String> = idx
                .iter()
                .map(|i| match i {
                    Expr::Range(lo, hi) => format!("{} - 1:{}", py_expr(lo), py_expr(hi)),
                    other => format!("{} - 1", py_expr(other)),
                })
                .collect();
            format!("{}[{}]", py_expr(base), parts.join(", "))
        }
        Expr::ArrayLit(items) | Expr::VectorLit(items) => {
            let a: Vec<String> = items.iter().map(py_expr).collect();
            format!("[{}]", a.join(", "))
        }
        Expr::Range(lo, hi) => format!("range({}, {} + 1)", py_expr(lo), py_expr(hi)),
        Expr::Ternary(c, a, b) => format!("({} if {} else {})", py_expr(a), py_expr(c), py_expr(b)),
    }
}

/// Maps Stan standard-library function names to the runtime library shipped
/// with the backends (paper Section 4, "Stan has a large standard library
/// that also has to be ported").
fn py_function(name: &str) -> String {
    match name {
        "sum" | "max" | "min" | "abs" | "round" => name.to_string(),
        "fabs" => "abs".to_string(),
        "square" => "stanlib.square".to_string(),
        "inv_logit" => "stanlib.inv_logit".to_string(),
        _ => format!("stanlib.{name}"),
    }
}

/// Renames identifiers that collide with Python keywords (the paper's name
/// handling: `lambda` is a common Stan parameter name).
pub fn sanitize(name: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "lambda", "def", "return", "class", "import", "from", "global", "pass", "if", "else",
        "for", "while", "in", "is", "not", "and", "or", "None", "True", "False", "print",
    ];
    let base = name.replace('.', "__");
    if KEYWORDS.contains(&base.as_str()) {
        format!("{base}__")
    } else {
        base
    }
}

fn camel(name: &str) -> String {
    name.split('_')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Scheme};
    use stan_frontend::parse_program;

    const COIN: &str = r#"
        data { int N; int<lower=0,upper=1> x[N]; }
        parameters { real<lower=0,upper=1> z; }
        model { z ~ beta(1, 1); for (i in 1:N) x[i] ~ bernoulli(z); }
    "#;

    #[test]
    fn pyro_output_resembles_figure_2() {
        let p = compile(&parse_program(COIN).unwrap(), Scheme::Comprehensive).unwrap();
        let code = to_pyro(&p, "coin");
        assert!(code.contains("def coin(N, x):"));
        assert!(code.contains("z = pyro.sample('z', dist.Uniform(0, 1))"));
        assert!(code.contains("dist.Beta(1, 1), obs=z"));
        assert!(code.contains("dist.Bernoulli(z), obs=x[i - 1]"));
        assert!(code.contains("for i in range(1, N + 1):"));
    }

    #[test]
    fn mixed_pyro_output_recovers_generative_style() {
        let p = compile(&parse_program(COIN).unwrap(), Scheme::Mixed).unwrap();
        let code = to_pyro(&p, "coin");
        assert!(code.contains("z = pyro.sample('z', dist.Beta(1, 1))"));
        assert!(!code.contains("Uniform"));
    }

    #[test]
    fn numpyro_output_uses_fori_loop_like_section_4() {
        let p = compile(&parse_program(COIN).unwrap(), Scheme::Mixed).unwrap();
        let code = to_numpyro(&p, "coin");
        assert!(code.contains("import numpyro"));
        assert!(code.contains("fori_loop(1, N + 1"));
        assert!(code.contains("def fori__"));
        assert!(code.contains("numpyro.sample"));
    }

    #[test]
    fn python_keywords_are_renamed() {
        let src = "parameters { real lambda; } model { lambda ~ normal(0, 1); }";
        let p = compile(&parse_program(src).unwrap(), Scheme::Comprehensive).unwrap();
        let code = to_pyro(&p, "kw");
        assert!(code.contains("lambda__ = pyro.sample('lambda'"));
    }

    #[test]
    fn target_statements_become_factor() {
        let src = "parameters { real mu; } model { target += -0.5 * mu * mu; }";
        let p = compile(&parse_program(src).unwrap(), Scheme::Comprehensive).unwrap();
        let code = to_pyro(&p, "m");
        assert!(code.contains("pyro.factor('factor__"));
    }

    #[test]
    fn guides_are_emitted_with_params() {
        let src = r#"
            parameters { real theta; }
            model { theta ~ normal(0, 1); }
            guide parameters { real m; }
            guide { theta ~ normal(m, 1); }
        "#;
        let p = compile(&parse_program(src).unwrap(), Scheme::Comprehensive).unwrap();
        let code = to_pyro(&p, "multimodal");
        assert!(code.contains("def multimodal_guide():"));
        assert!(code.contains("pyro.param('m'"));
        assert!(code.contains("theta = pyro.sample('theta', dist.Normal(m, 1))"));
    }

    #[test]
    fn expressions_shift_indices_to_zero_based() {
        assert_eq!(
            py_expr(&Expr::Index(
                Box::new(Expr::var("x")),
                vec![Expr::var("i"), Expr::IntLit(2)]
            )),
            "x[i - 1, 2 - 1]"
        );
        assert_eq!(sanitize("mlp.l1.weight"), "mlp__l1__weight");
    }
}
