//! Likelihood-weighting importance sampling.
//!
//! Importance sampling is the inference scheme for which the extra priors
//! introduced by the comprehensive translation *do* matter (Section 6.1,
//! RQ2 discussion): proposals are drawn from the program's prior and weighted
//! by the observation score, so a poorly chosen prior degrades the effective
//! sample size even when NUTS would be unaffected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::target::GradTargetBatch;

/// The result of an importance-sampling run.
#[derive(Debug, Clone)]
pub struct ImportanceResult {
    /// Proposed parameter draws.
    pub draws: Vec<Vec<f64>>,
    /// Normalized importance weights (sum to one).
    pub weights: Vec<f64>,
    /// Effective sample size of the weights, `1 / Σ w_i²`.
    pub ess: f64,
    /// Log of the marginal-likelihood estimate.
    pub log_evidence: f64,
}

impl ImportanceResult {
    /// Weighted posterior mean per component.
    pub fn posterior_mean(&self) -> Vec<f64> {
        if self.draws.is_empty() {
            return Vec::new();
        }
        let dim = self.draws[0].len();
        let mut mean = vec![0.0; dim];
        for (d, w) in self.draws.iter().zip(&self.weights) {
            for i in 0..dim {
                mean[i] += d[i] * w;
            }
        }
        mean
    }
}

/// Runs importance sampling with a caller-supplied proposal.
///
/// `propose` draws a parameter vector from the proposal distribution (usually
/// the program prior), and `log_weight` returns the log importance weight of
/// a draw (usually the observation log-likelihood).
pub fn importance_sample(
    propose: &dyn Fn(&mut StdRng) -> Vec<f64>,
    log_weight: &dyn Fn(&[f64]) -> f64,
    n: usize,
    seed: u64,
) -> ImportanceResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draws = Vec::with_capacity(n);
    let mut log_weights = Vec::with_capacity(n);
    for _ in 0..n {
        let d = propose(&mut rng);
        let lw = log_weight(&d);
        draws.push(d);
        log_weights.push(lw);
    }
    weight_draws(draws, log_weights)
}

/// Batched likelihood log weights for prior proposals, through the
/// multi-lane density surface: one [`GradTargetBatch::logp_grad_batch`] call
/// scores every proposal's *full* unconstrained log density (prior +
/// likelihood + constraint log-Jacobian), and the likelihood importance
/// weight falls out by subtracting the prior log score and log-Jacobian the
/// caller already knows from generating the proposal:
///
/// ```text
/// log w_i = logp(u_i) - prior_lp_i - log_jac_i
/// ```
///
/// `us` packs the `prior_lps.len()` unconstrained proposal points row-major;
/// `log_jacs` is the constraint log-Jacobian at each point. On lane-widened
/// compiled models the batch call evaluates in struct-of-arrays groups of up
/// to 8 proposals per sweep; gradient outputs are scratch (importance
/// sampling needs none) but cost little since the reverse sweep shares the
/// forward pass. A `-inf`/NaN density (zero-likelihood proposal) yields a
/// `-inf`/NaN log weight, which [`weight_draws`] already treats as zero
/// weight.
pub fn likelihood_log_weights<T: GradTargetBatch + ?Sized>(
    target: &mut T,
    us: &[f64],
    prior_lps: &[f64],
    log_jacs: &[f64],
) -> Vec<f64> {
    let n = prior_lps.len();
    assert_eq!(log_jacs.len(), n, "one log-Jacobian per proposal");
    if n == 0 {
        return Vec::new();
    }
    let mut logps = vec![0.0; n];
    let mut grads = vec![0.0; us.len()];
    target.logp_grad_batch(us, &mut logps, &mut grads);
    logps
        .iter()
        .zip(prior_lps)
        .zip(log_jacs)
        .map(|((lp, prior), jac)| lp - prior - jac)
        .collect()
}

/// Normalizes raw log weights over a set of draws into an
/// [`ImportanceResult`] — the single implementation of the numerically
/// delicate max-shift / normalize / ESS arithmetic, shared by
/// [`importance_sample`] and callers (e.g. `deepstan`'s `Session`) that
/// compute the log weights themselves. NaN log weights are treated as
/// `-inf`; if *every* weight is `-inf` the normalized weights are NaN and
/// `log_evidence` is `-inf` (callers can use that to reject degenerate
/// runs).
pub fn weight_draws(draws: Vec<Vec<f64>>, mut log_weights: Vec<f64>) -> ImportanceResult {
    let n = draws.len().max(1);
    for lw in &mut log_weights {
        if lw.is_nan() {
            *lw = f64::NEG_INFINITY;
        }
    }
    let max_lw = log_weights
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let unnormalized: Vec<f64> = log_weights.iter().map(|lw| (lw - max_lw).exp()).collect();
    let total: f64 = unnormalized.iter().sum();
    let weights: Vec<f64> = unnormalized.iter().map(|w| w / total).collect();
    let ess = 1.0
        / weights
            .iter()
            .map(|w| w * w)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
    let log_evidence = max_lw + (total / n as f64).ln();
    ImportanceResult {
        draws,
        weights,
        ess,
        log_evidence,
    }
}

/// Draws `n` indices proportional to the weights (systematic resampling) —
/// useful to turn weighted draws into an unweighted posterior sample.
pub fn resample_indices(weights: &[f64], n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let step = 1.0 / n as f64;
    let start: f64 = rng.gen::<f64>() * step;
    let mut indices = Vec::with_capacity(n);
    let mut cumulative = 0.0;
    let mut i = 0usize;
    for k in 0..n {
        let u = start + k as f64 * step;
        while cumulative + weights[i] < u && i + 1 < weights.len() {
            cumulative += weights[i];
            i += 1;
        }
        indices.push(i);
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjugate_beta_bernoulli_posterior_mean() {
        // Prior z ~ U(0,1); data: 7 heads, 3 tails; posterior Beta(8,4),
        // mean = 8/12.
        let propose = |rng: &mut StdRng| vec![rng.gen::<f64>()];
        let log_weight = |z: &[f64]| 7.0 * z[0].ln() + 3.0 * (1.0 - z[0]).ln();
        let res = importance_sample(&propose, &log_weight, 20_000, 1);
        let mean = res.posterior_mean()[0];
        assert!((mean - 8.0 / 12.0).abs() < 0.01, "{mean}");
        assert!(res.ess > 1000.0);
        assert!((res.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_evidence_matches_analytic_value() {
        // Evidence of the beta-bernoulli model above: B(8,4)/B(1,1) = B(8,4).
        let propose = |rng: &mut StdRng| vec![rng.gen::<f64>()];
        let log_weight = |z: &[f64]| 7.0 * z[0].ln() + 3.0 * (1.0 - z[0]).ln();
        let res = importance_sample(&propose, &log_weight, 50_000, 2);
        let analytic = minidiff::special::lbeta(8.0, 4.0);
        assert!(
            (res.log_evidence - analytic).abs() < 0.05,
            "{} vs {analytic}",
            res.log_evidence
        );
    }

    #[test]
    fn resampling_respects_weights() {
        let weights = vec![0.1, 0.7, 0.2];
        let idx = resample_indices(&weights, 10_000, 3);
        let count1 = idx.iter().filter(|&&i| i == 1).count();
        assert!((count1 as f64 / 10_000.0 - 0.7).abs() < 0.05);
    }

    #[test]
    fn degenerate_weights_do_not_panic() {
        let propose = |_: &mut StdRng| vec![0.0];
        let log_weight = |_: &[f64]| f64::NEG_INFINITY;
        let res = importance_sample(&propose, &log_weight, 100, 4);
        assert_eq!(res.draws.len(), 100);
        assert!(res.ess.is_finite() || res.ess.is_nan());
    }
}
