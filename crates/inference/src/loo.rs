//! Model criticism over pointwise log-likelihood matrices: PSIS-LOO
//! (Vehtari, Gelman & Gabry 2017) and WAIC (Watanabe 2010), plus pairwise
//! model comparison.
//!
//! Input everywhere is the pointwise log-likelihood matrix `log_lik[s][i]` —
//! one row per posterior draw `s`, one column per observation `i` — exactly
//! what a `generated quantities` block computing
//! `log_lik[i] = dist_lpdf(y[i] | ...)` streams out of a fit.
//!
//! * [`waic`] — the widely applicable information criterion:
//!   `elpd_i = log mean_s exp(ll_si) − var_s(ll_si)`.
//! * [`psis_loo`] — leave-one-out cross-validation estimated by importance
//!   sampling with Pareto-smoothed weights: the raw ratios `r_s = exp(−ll_si)`
//!   have their tail replaced by expected order statistics of a generalized
//!   Pareto distribution fitted by the Zhang–Stephens (2009) profile
//!   posterior-mean method, and the fitted shape `k̂` diagnoses estimate
//!   reliability per observation (`k̂ < 0.7` is the usual "ok" threshold).
//! * [`loo_compare`] — ranks models by `elpd` with paired difference
//!   standard errors.

/// One estimated expected log pointwise predictive density, from
/// [`psis_loo`] or [`waic`].
#[derive(Debug, Clone, PartialEq)]
pub struct ElpdEstimate {
    /// Total expected log pointwise predictive density (higher is better).
    pub elpd: f64,
    /// Standard error of `elpd` (from the spread of the pointwise terms).
    pub se: f64,
    /// Effective number of parameters (`p_loo` / `p_waic`).
    pub p_eff: f64,
    /// Pointwise `elpd_i`, one per observation.
    pub pointwise: Vec<f64>,
    /// PSIS Pareto-shape diagnostics `k̂_i`, one per observation (empty for
    /// WAIC, which has no importance-sampling step).
    pub khat: Vec<f64>,
}

impl ElpdEstimate {
    /// The largest Pareto `k̂` across observations (`NaN` when no
    /// diagnostics are present).
    pub fn max_khat(&self) -> f64 {
        self.khat.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Number of observations with `k̂` above the 0.7 reliability threshold.
    pub fn n_bad_khat(&self) -> usize {
        self.khat.iter().filter(|&&k| k > 0.7).count()
    }
}

fn log_sum_exp(xs: impl Iterator<Item = f64> + Clone) -> f64 {
    let m = xs.clone().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.map(|x| (x - m).exp()).sum::<f64>().ln()
}

fn column(log_lik: &[Vec<f64>], i: usize) -> impl Iterator<Item = f64> + Clone + '_ {
    log_lik.iter().map(move |row| row[i])
}

fn summarize_pointwise(pointwise: Vec<f64>, p_eff: f64, khat: Vec<f64>) -> ElpdEstimate {
    let n = pointwise.len() as f64;
    let elpd: f64 = pointwise.iter().sum();
    let mean = elpd / n;
    let var = if pointwise.len() > 1 {
        pointwise.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    ElpdEstimate {
        elpd,
        se: (n * var).sqrt(),
        p_eff,
        pointwise,
        khat,
    }
}

/// The widely applicable information criterion over a draws × observations
/// log-likelihood matrix.
///
/// # Panics
/// Panics on an empty matrix or ragged rows.
pub fn waic(log_lik: &[Vec<f64>]) -> ElpdEstimate {
    let s = log_lik.len();
    assert!(s > 0, "waic needs at least one draw");
    let n = log_lik[0].len();
    assert!(log_lik.iter().all(|r| r.len() == n), "ragged log_lik rows");
    let mut pointwise = Vec::with_capacity(n);
    let mut p_total = 0.0;
    for i in 0..n {
        let lppd = log_sum_exp(column(log_lik, i)) - (s as f64).ln();
        let mean: f64 = column(log_lik, i).sum::<f64>() / s as f64;
        let p = if s > 1 {
            column(log_lik, i).map(|x| (x - mean).powi(2)).sum::<f64>() / (s as f64 - 1.0)
        } else {
            0.0
        };
        p_total += p;
        pointwise.push(lppd - p);
    }
    summarize_pointwise(pointwise, p_total, Vec::new())
}

/// Fits a generalized Pareto distribution to exceedances `x` (sorted
/// ascending) by the Zhang–Stephens (2009) method, returning `(k, sigma)`
/// with the weak prior regularization of Vehtari et al. (2017) applied to
/// `k`.
fn gpd_fit(x: &[f64]) -> (f64, f64) {
    let n = x.len();
    let nf = n as f64;
    if n < 2 || x[n - 1] <= 0.0 {
        return (f64::INFINITY, f64::NAN);
    }
    let m = 30 + (nf.sqrt() as usize);
    let quart = x[(nf / 4.0 + 0.5).floor() as usize - 1].max(f64::MIN_POSITIVE);
    let xmax = x[n - 1];
    // Candidate theta grid and profile log-likelihoods.
    let mut thetas = Vec::with_capacity(m);
    let mut lls = Vec::with_capacity(m);
    for j in 1..=m {
        let theta = 1.0 / xmax + (1.0 - (m as f64 / (j as f64 - 0.5)).sqrt()) / (3.0 * quart);
        let k = -x.iter().map(|&xi| (1.0 - theta * xi).ln()).sum::<f64>() / nf;
        let ll = if k > 0.0 && theta != 0.0 {
            nf * ((theta / k).ln() + k - 1.0)
        } else {
            f64::NEG_INFINITY
        };
        thetas.push(theta);
        lls.push(ll);
    }
    // Posterior-mean theta under the implied weights.
    let lmax = lls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lmax.is_infinite() {
        return (f64::INFINITY, f64::NAN);
    }
    let weights: Vec<f64> = lls.iter().map(|&l| (l - lmax).exp()).collect();
    let wsum: f64 = weights.iter().sum();
    let theta_hat: f64 = thetas.iter().zip(&weights).map(|(t, w)| t * w).sum::<f64>() / wsum;
    let k_raw = -x.iter().map(|&xi| (1.0 - theta_hat * xi).ln()).sum::<f64>() / nf;
    let sigma = k_raw / theta_hat;
    // Weak prior on k (Vehtari et al. 2017, appendix C): stabilizes the
    // estimate for small tail sizes.
    let k = k_raw * nf / (nf + 10.0) + 0.5 * 10.0 / (nf + 10.0);
    (k, sigma)
}

/// Inverse CDF of the generalized Pareto distribution.
fn gpd_quantile(p: f64, k: f64, sigma: f64) -> f64 {
    if k.abs() < 1e-12 {
        -sigma * (1.0 - p).ln()
    } else {
        sigma / k * ((1.0 - p).powf(-k) - 1.0)
    }
}

/// Pareto-smoothes one observation's log importance ratios in place,
/// returning the fitted shape `k̂`. `lw` is modified to the smoothed,
/// max-normalized log weights.
fn psis_smooth(lw: &mut [f64]) -> f64 {
    let s = lw.len();
    let max = lw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for w in lw.iter_mut() {
        *w -= max;
    }
    // Tail size per Vehtari et al.: min(0.2 S, 3 sqrt(S)).
    let tail_len = ((0.2 * s as f64).ceil().min(3.0 * (s as f64).sqrt())) as usize;
    if tail_len < 5 {
        // Too few draws to fit a tail; raw weights, no diagnostic signal.
        return f64::NAN;
    }
    // Order the indices of the largest `tail_len` weights.
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_unstable_by(|&a, &b| {
        lw[a]
            .partial_cmp(&lw[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let tail_idx = &order[s - tail_len..];
    let cutoff = lw[order[s - tail_len - 1]];
    let cutoff_exp = cutoff.exp();
    // Exceedances over the cutoff, ascending (the order is already sorted).
    let exceed: Vec<f64> = tail_idx.iter().map(|&i| lw[i].exp() - cutoff_exp).collect();
    let (k, sigma) = gpd_fit(&exceed);
    if k.is_finite() && sigma.is_finite() && sigma > 0.0 {
        // Replace the tail by the expected order statistics of the fitted
        // gPd, truncated at the raw maximum (which is 0 after
        // normalization).
        for (j, &i) in tail_idx.iter().enumerate() {
            let p = (j as f64 + 0.5) / tail_len as f64;
            let smoothed = (gpd_quantile(p, k, sigma) + cutoff_exp).ln();
            lw[i] = smoothed.min(0.0);
        }
    }
    k
}

/// PSIS-LOO over a draws × observations log-likelihood matrix.
///
/// Per observation, the smoothed importance weights estimate
/// `elpd_loo_i = log ( Σ_s w_s exp(ll_si) / Σ_s w_s )`, and `p_loo` is
/// `Σ_i (lppd_i − elpd_loo_i)`. The `khat` diagnostics flag observations
/// whose leave-one-out posterior is too far from the full posterior for
/// importance sampling to be reliable.
///
/// # Panics
/// Panics on an empty matrix or ragged rows.
pub fn psis_loo(log_lik: &[Vec<f64>]) -> ElpdEstimate {
    let s = log_lik.len();
    assert!(s > 0, "psis_loo needs at least one draw");
    let n = log_lik[0].len();
    assert!(log_lik.iter().all(|r| r.len() == n), "ragged log_lik rows");
    let mut pointwise = Vec::with_capacity(n);
    let mut khat = Vec::with_capacity(n);
    let mut p_total = 0.0;
    let mut lw = vec![0.0; s];
    for i in 0..n {
        for (w, row) in lw.iter_mut().zip(log_lik) {
            *w = -row[i];
        }
        let k = psis_smooth(&mut lw);
        // elpd_i = logsumexp(lw + ll) - logsumexp(lw)
        let num = log_sum_exp(lw.iter().zip(log_lik).map(|(&w, row)| w + row[i]));
        let den = log_sum_exp(lw.iter().copied());
        let elpd_i = num - den;
        let lppd_i = log_sum_exp(column(log_lik, i)) - (s as f64).ln();
        p_total += lppd_i - elpd_i;
        pointwise.push(elpd_i);
        khat.push(k);
    }
    summarize_pointwise(pointwise, p_total, khat)
}

/// One row of a [`loo_compare`] ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Model name, as passed in.
    pub name: String,
    /// The model's total `elpd`.
    pub elpd: f64,
    /// Difference to the best model's `elpd` (0 for the best; negative
    /// otherwise).
    pub elpd_diff: f64,
    /// Paired standard error of the difference (0 for the best row).
    pub se_diff: f64,
}

/// Ranks models by `elpd` (best first) with paired difference standard
/// errors, computed from the pointwise terms exactly as `loo_compare` in the
/// `loo` R package does.
///
/// # Panics
/// Panics when models' pointwise vectors have different lengths (the models
/// must score the same observations).
pub fn loo_compare(models: &[(&str, &ElpdEstimate)]) -> Vec<CompareRow> {
    let mut order: Vec<usize> = (0..models.len()).collect();
    order.sort_by(|&a, &b| {
        models[b]
            .1
            .elpd
            .partial_cmp(&models[a].1.elpd)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let Some(&best) = order.first() else {
        return Vec::new();
    };
    let best_pw = &models[best].1.pointwise;
    order
        .iter()
        .map(|&m| {
            let (name, est) = models[m];
            assert_eq!(
                est.pointwise.len(),
                best_pw.len(),
                "models must score the same observations"
            );
            let diffs: Vec<f64> = est
                .pointwise
                .iter()
                .zip(best_pw)
                .map(|(a, b)| a - b)
                .collect();
            let n = diffs.len() as f64;
            let mean = diffs.iter().sum::<f64>() / n;
            let var = if diffs.len() > 1 {
                diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            CompareRow {
                name: name.to_string(),
                elpd: est.elpd,
                elpd_diff: est.elpd - models[best].1.elpd,
                se_diff: if m == best { 0.0 } else { (n * var).sqrt() },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic normal-model log-lik matrix: draws of mu around its
    /// posterior, pointwise normal log densities of fixed data.
    fn normal_log_lik(seed: u64, s: usize, y: &[f64]) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = y.len() as f64;
        let post_mean = y.iter().sum::<f64>() / n;
        let post_sd = (1.0 / n).sqrt();
        (0..s)
            .map(|_| {
                let mu = post_mean + post_sd * probdist_normal(&mut rng);
                y.iter()
                    .map(|&yi| {
                        -0.5 * (yi - mu) * (yi - mu) - 0.5 * (2.0 * std::f64::consts::PI).ln()
                    })
                    .collect()
            })
            .collect()
    }

    fn probdist_normal(rng: &mut StdRng) -> f64 {
        // Box–Muller, self-contained to avoid a dev-dependency cycle.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exact leave-one-out elpd for the conjugate normal model with known
    /// unit variance and flat prior: p(y_i | y_{-i}) is normal with mean
    /// mean(y_{-i}) and variance 1 + 1/(n-1).
    fn analytic_loo(y: &[f64]) -> f64 {
        let n = y.len();
        y.iter()
            .enumerate()
            .map(|(i, &yi)| {
                let rest: f64 = y
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, v)| v)
                    .sum();
                let mean = rest / (n as f64 - 1.0);
                let var = 1.0 + 1.0 / (n as f64 - 1.0);
                -0.5 * (yi - mean) * (yi - mean) / var
                    - 0.5 * (2.0 * std::f64::consts::PI * var).ln()
            })
            .sum()
    }

    #[test]
    fn waic_and_loo_agree_with_the_analytic_answer() {
        let y = [0.3, -0.8, 1.2, 0.5, -0.1, 0.9, -1.4, 0.2, 0.6, -0.5];
        let ll = normal_log_lik(3, 4000, &y);
        let loo = psis_loo(&ll);
        let w = waic(&ll);
        let exact = analytic_loo(&y);
        assert!((loo.elpd - exact).abs() < 0.1, "{} vs {exact}", loo.elpd);
        assert!((w.elpd - exact).abs() < 0.15, "{} vs {exact}", w.elpd);
        // One scalar parameter: p_eff near 1.
        assert!(loo.p_eff > 0.4 && loo.p_eff < 2.0, "p_loo {}", loo.p_eff);
        assert!(w.p_eff > 0.4 && w.p_eff < 2.0, "p_waic {}", w.p_eff);
        // A well-specified model has healthy Pareto diagnostics.
        assert_eq!(loo.khat.len(), y.len());
        assert!(loo.max_khat() < 0.7, "max khat {}", loo.max_khat());
        assert_eq!(loo.n_bad_khat(), 0);
        assert!(loo.se > 0.0 && w.se > 0.0);
        // WAIC reports no khat diagnostics.
        assert!(w.khat.is_empty());
    }

    #[test]
    fn compare_ranks_models_and_reports_paired_ses() {
        let y = [0.3, -0.8, 1.2, 0.5, -0.1, 0.9, -1.4, 0.2, 0.6, -0.5];
        let good = psis_loo(&normal_log_lik(5, 2000, &y));
        // A deliberately worse model: same draws shifted by 2.
        let bad_ll: Vec<Vec<f64>> = normal_log_lik(5, 2000, &y)
            .into_iter()
            .map(|row| row.into_iter().map(|l| l - 2.0).collect())
            .collect();
        let bad = psis_loo(&bad_ll);
        let rows = loo_compare(&[("bad", &bad), ("good", &good)]);
        assert_eq!(rows[0].name, "good");
        assert_eq!(rows[0].elpd_diff, 0.0);
        assert_eq!(rows[0].se_diff, 0.0);
        assert!(rows[1].elpd_diff < 0.0);
        assert_eq!(rows[1].name, "bad");
    }

    #[test]
    fn gpd_fit_recovers_known_tail_shapes() {
        // Exponential exceedances are gPd with k -> 0; heavy tails give
        // larger k. Check monotone behavior rather than exact values.
        let mut rng = StdRng::seed_from_u64(9);
        let mut exp_tail: Vec<f64> = (0..200)
            .map(|_| -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln())
            .collect();
        exp_tail.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (k_exp, sigma) = gpd_fit(&exp_tail);
        assert!(sigma > 0.0);
        assert!(k_exp < 0.4, "exponential tail k {k_exp}");
        // Pareto-like (alpha = 1) exceedances: k near 1.
        let mut heavy: Vec<f64> = (0..200)
            .map(|_| 1.0 / rng.gen_range(f64::MIN_POSITIVE..1.0f64) - 1.0)
            .collect();
        heavy.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (k_heavy, _) = gpd_fit(&heavy);
        assert!(k_heavy > 0.6, "heavy tail k {k_heavy}");
    }
}
