//! Automatic Differentiation Variational Inference (ADVI) with a mean-field
//! Gaussian family.
//!
//! This is the algorithm behind Stan's `variational` method (Kucukelbir et
//! al. 2017) and the baseline labelled "Stan (ADVI)" in Figure 10 of the
//! paper. The variational family is `q(θ) = N(μ, diag(exp(ω))²)` over the
//! *unconstrained* parameters; the ELBO is maximized with reparameterized
//! gradients and Adam.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::svi::{Adam, AdamConfig};
use crate::target::{GradTarget, GradTargetBatch, GradTargetMut};

/// ADVI configuration.
#[derive(Debug, Clone)]
pub struct AdviConfig {
    /// Number of optimization steps.
    pub steps: usize,
    /// Monte-Carlo samples per ELBO gradient estimate.
    pub grad_samples: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Number of posterior draws to return from the fitted approximation.
    pub output_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cooperative cancellation, polled once per optimization step (never
    /// inside a gradient evaluation). The default token never cancels. A
    /// cancelled fit stops optimizing and samples its output draws from
    /// the best-so-far approximation.
    pub cancel: CancelToken,
}

impl Default for AdviConfig {
    fn default() -> Self {
        AdviConfig {
            steps: 2000,
            grad_samples: 4,
            lr: 0.05,
            output_samples: 1000,
            seed: 0,
            cancel: CancelToken::new(),
        }
    }
}

/// The fitted mean-field approximation.
#[derive(Debug, Clone)]
pub struct AdviResult {
    /// Variational means (unconstrained scale).
    pub mu: Vec<f64>,
    /// Variational log standard deviations.
    pub omega: Vec<f64>,
    /// Draws from the fitted approximation (unconstrained scale).
    pub draws: Vec<Vec<f64>>,
    /// ELBO trace.
    pub elbo_trace: Vec<f64>,
    /// True when the optimization stopped early because its
    /// [`AdviConfig::cancel`] token fired; `mu`/`omega`/`draws` then
    /// reflect the approximation as of the last completed step.
    pub cancelled: bool,
}

/// Fits mean-field ADVI to a `(log p, ∇ log p)` target. Stateful targets
/// should use [`advi_fit_mut`], which this function delegates to.
pub fn advi_fit<T: GradTarget + ?Sized>(target: &T, dim: usize, config: &AdviConfig) -> AdviResult {
    let mut adapter = target;
    advi_fit_mut(&mut adapter, dim, config)
}

/// [`advi_fit`] over the buffer-reusing [`GradTargetMut`] interface: the
/// model-gradient buffer is allocated once and reused across every ELBO
/// sample.
pub fn advi_fit_mut<T: GradTargetMut + ?Sized>(
    target: &mut T,
    dim: usize,
    config: &AdviConfig,
) -> AdviResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mu = vec![0.0f64; dim];
    let mut omega = vec![-1.0f64; dim];
    let mut adam = Adam::new(
        2 * dim,
        AdamConfig {
            lr: config.lr,
            ..Default::default()
        },
    );
    let mut elbo_trace = Vec::new();
    let report_every = (config.steps / 50).max(1);
    let mut running = 0.0;
    let mut g = vec![0.0; dim];
    let mut eps = vec![0.0; dim];
    let mut z = vec![0.0; dim];
    let mut grad = vec![0.0; 2 * dim];
    let mut step_timer = obs::StepTimer::new("advi.step");
    let mut cancelled = false;

    for step in 0..config.steps {
        if config.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        step_timer.begin();
        grad.fill(0.0);
        let mut elbo = 0.0;
        for _ in 0..config.grad_samples {
            for i in 0..dim {
                eps[i] = standard_normal(&mut rng);
                z[i] = mu[i] + omega[i].exp() * eps[i];
            }
            let lp = target.logp_grad_into(&z, &mut g);
            let lp = if lp.is_finite() { lp } else { -1e10 };
            elbo += lp;
            for i in 0..dim {
                let gi = if g[i].is_finite() { g[i] } else { 0.0 };
                grad[i] += gi;
                grad[dim + i] += gi * omega[i].exp() * eps[i];
            }
        }
        let scale = 1.0 / config.grad_samples as f64;
        for i in 0..dim {
            grad[i] *= scale;
            // Entropy term: d/dω [ Σ ω ] = 1.
            grad[dim + i] = grad[dim + i] * scale + 1.0;
            elbo += omega[i]; // entropy up to a constant
        }
        let mut params: Vec<f64> = mu.iter().chain(omega.iter()).copied().collect();
        adam.step(&mut params, &grad);
        mu.copy_from_slice(&params[..dim]);
        omega.copy_from_slice(&params[dim..]);

        running += elbo * scale;
        step_timer.end();
        if (step + 1) % report_every == 0 {
            elbo_trace.push(running / report_every as f64);
            running = 0.0;
        }
    }

    let draws: Vec<Vec<f64>> = (0..config.output_samples)
        .map(|_| {
            (0..dim)
                .map(|i| mu[i] + omega[i].exp() * standard_normal(&mut rng))
                .collect()
        })
        .collect();

    AdviResult {
        mu,
        omega,
        draws,
        elbo_trace,
        cancelled,
    }
}

/// [`advi_fit_mut`] over a [`GradTargetBatch`]: each optimization step draws
/// all `grad_samples` reparameterized points first and scores them with one
/// [`GradTargetBatch::logp_grad_batch`] call, so a lane-widened density
/// program evaluates the whole Monte-Carlo ELBO estimate in one
/// struct-of-arrays sweep per step.
///
/// The sequential path consumes no RNG between its per-sample draws and
/// evaluations, so drawing the K·dim noise values up front leaves the RNG
/// stream — and therefore the entire fit — bitwise identical to
/// [`advi_fit_mut`] with the same config.
pub fn advi_fit_batch<T: GradTargetBatch + ?Sized>(
    target: &mut T,
    dim: usize,
    config: &AdviConfig,
) -> AdviResult {
    let k = config.grad_samples;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mu = vec![0.0f64; dim];
    let mut omega = vec![-1.0f64; dim];
    let mut adam = Adam::new(
        2 * dim,
        AdamConfig {
            lr: config.lr,
            ..Default::default()
        },
    );
    let mut elbo_trace = Vec::new();
    let report_every = (config.steps / 50).max(1);
    let mut running = 0.0;
    let mut eps = vec![0.0; k * dim];
    let mut zs = vec![0.0; k * dim];
    let mut lps = vec![0.0; k];
    let mut gs = vec![0.0; k * dim];
    let mut grad = vec![0.0; 2 * dim];
    let mut step_timer = obs::StepTimer::new("advi.step");
    let mut cancelled = false;

    for step in 0..config.steps {
        if config.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        step_timer.begin();
        grad.fill(0.0);
        let mut elbo = 0.0;
        for s in 0..k {
            for i in 0..dim {
                let e = standard_normal(&mut rng);
                eps[s * dim + i] = e;
                zs[s * dim + i] = mu[i] + omega[i].exp() * e;
            }
        }
        target.logp_grad_batch(&zs, &mut lps, &mut gs);
        for s in 0..k {
            let lp = if lps[s].is_finite() { lps[s] } else { -1e10 };
            elbo += lp;
            for i in 0..dim {
                let gi = gs[s * dim + i];
                let gi = if gi.is_finite() { gi } else { 0.0 };
                grad[i] += gi;
                grad[dim + i] += gi * omega[i].exp() * eps[s * dim + i];
            }
        }
        let scale = 1.0 / k as f64;
        for i in 0..dim {
            grad[i] *= scale;
            // Entropy term: d/dω [ Σ ω ] = 1.
            grad[dim + i] = grad[dim + i] * scale + 1.0;
            elbo += omega[i]; // entropy up to a constant
        }
        let mut params: Vec<f64> = mu.iter().chain(omega.iter()).copied().collect();
        adam.step(&mut params, &grad);
        mu.copy_from_slice(&params[..dim]);
        omega.copy_from_slice(&params[dim..]);

        running += elbo * scale;
        step_timer.end();
        if (step + 1) % report_every == 0 {
            elbo_trace.push(running / report_every as f64);
            running = 0.0;
        }
    }

    let draws: Vec<Vec<f64>> = (0..config.output_samples)
        .map(|_| {
            (0..dim)
                .map(|i| mu[i] + omega[i].exp() * standard_normal(&mut rng))
                .collect()
        })
        .collect();

    AdviResult {
        mu,
        omega,
        draws,
        elbo_trace,
        cancelled,
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::summarize;

    #[test]
    fn fits_an_independent_gaussian() {
        // theta1 ~ N(1, 0.5), theta2 ~ N(-2, 2)
        let target = |q: &[f64]| {
            let z1 = (q[0] - 1.0) / 0.5;
            let z2 = (q[1] + 2.0) / 2.0;
            let lp = -0.5 * z1 * z1 - 0.5 * z2 * z2;
            (lp, vec![-z1 / 0.5, -z2 / 2.0])
        };
        let res = advi_fit(
            &target,
            2,
            &AdviConfig {
                steps: 3000,
                seed: 4,
                ..Default::default()
            },
        );
        assert!((res.mu[0] - 1.0).abs() < 0.15, "{}", res.mu[0]);
        assert!((res.mu[1] + 2.0).abs() < 0.4, "{}", res.mu[1]);
        assert!((res.omega[0].exp() - 0.5).abs() < 0.2);
        let s = summarize(&res.draws);
        assert!((s[0].mean - 1.0).abs() < 0.2);
    }

    #[test]
    fn batched_fit_matches_sequential_fit_bitwise() {
        let target = |q: &[f64]| {
            let z1 = (q[0] - 1.0) / 0.5;
            let z2 = (q[1] + 2.0) / 2.0;
            let lp = -0.5 * z1 * z1 - 0.5 * z2 * z2;
            (lp, vec![-z1 / 0.5, -z2 / 2.0])
        };
        let cfg = AdviConfig {
            steps: 200,
            grad_samples: 4,
            output_samples: 50,
            seed: 9,
            ..Default::default()
        };
        let want = advi_fit(&target, 2, &cfg);
        let mut batched = &target;
        let got = advi_fit_batch(&mut batched, 2, &cfg);
        assert_eq!(want.mu, got.mu);
        assert_eq!(want.omega, got.omega);
        assert_eq!(want.draws, got.draws);
        assert_eq!(want.elbo_trace, got.elbo_trace);
    }

    #[test]
    fn mean_field_advi_collapses_to_one_mode_of_a_mixture() {
        // Mixture of N(0,1) and N(20,1): a mean-field Gaussian cannot cover
        // both modes — this is exactly the failure illustrated in Figure 10.
        let target = |q: &[f64]| {
            let x = q[0];
            let a = -0.5 * x * x;
            let b = -0.5 * (x - 20.0) * (x - 20.0);
            let m = a.max(b);
            let lp = m + ((a - m).exp() + (b - m).exp()).ln() - 2f64.ln();
            // numerical gradient of the mixture log-density
            let wa = (a - lp - 2f64.ln()).exp();
            let wb = (b - lp - 2f64.ln()).exp();
            let g = wa * (-x) + wb * (-(x - 20.0));
            (lp, vec![g])
        };
        let res = advi_fit(
            &target,
            1,
            &AdviConfig {
                steps: 3000,
                seed: 5,
                ..Default::default()
            },
        );
        let sd = res.omega[0].exp();
        // The approximation sits on one mode with a narrow standard deviation
        // rather than spanning [0, 20].
        assert!(sd < 5.0, "sd {sd}");
        let near_zero = (res.mu[0] - 0.0).abs() < 3.0;
        let near_twenty = (res.mu[0] - 20.0).abs() < 3.0;
        assert!(near_zero || near_twenty, "mu {}", res.mu[0]);
        assert!(!res.elbo_trace.is_empty());
    }
}
