//! The No-U-Turn Sampler (NUTS).
//!
//! This is the multinomial NUTS variant with dual-averaging step-size
//! adaptation and diagonal mass-matrix estimation during warmup — the
//! algorithm Stan, Pyro and NumPyro all use as their default and the one the
//! paper's evaluation runs on every backend.
//!
//! Two drivers share the algorithm: [`nuts_sample_mut`] runs one chain to
//! completion (one target instance per chain, shardable over threads), and
//! [`nuts_sample_lockstep`] advances C chains as explicit state machines,
//! batching every chain's pending leapfrog evaluation into one
//! [`GradTargetBatch::logp_grad_batch`] call so lane-widened density
//! programs score all chains per sweep. Chain c of a lockstep run consumes
//! its RNG in exactly the order of a sequential [`nuts_sample_mut`] run with
//! the same config, so the per-chain results are bitwise identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::CancelToken;
use crate::target::{GradTarget, GradTargetBatch, GradTargetMut};

/// NUTS configuration.
#[derive(Debug, Clone)]
pub struct NutsConfig {
    /// Number of warmup (adaptation) iterations, discarded from the output.
    pub warmup: usize,
    /// Number of post-warmup draws to keep.
    pub samples: usize,
    /// Maximum tree depth (Stan's default is 10).
    pub max_depth: usize,
    /// Target Metropolis acceptance statistic (Stan's default 0.8).
    pub target_accept: f64,
    /// Initial step size.
    pub init_step_size: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cooperative cancellation, polled once per iteration (never inside a
    /// gradient evaluation). The default token never cancels. A chain that
    /// observes cancellation stops before its next iteration, so the draws
    /// it has already produced are the bitwise prefix of an uncancelled
    /// same-seed run.
    pub cancel: CancelToken,
}

impl Default for NutsConfig {
    fn default() -> Self {
        NutsConfig {
            warmup: 500,
            samples: 500,
            max_depth: 10,
            target_accept: 0.8,
            init_step_size: 0.1,
            seed: 0,
            cancel: CancelToken::new(),
        }
    }
}

/// The output of a NUTS run.
#[derive(Debug, Clone)]
pub struct NutsResult {
    /// Post-warmup draws on the unconstrained scale (one vector per draw).
    pub draws: Vec<Vec<f64>>,
    /// Number of divergent transitions after warmup.
    pub divergences: usize,
    /// Adapted step size.
    pub step_size: f64,
    /// Mean acceptance statistic after warmup.
    pub mean_accept: f64,
    /// Total number of log-density gradient evaluations.
    pub n_grad_evals: usize,
    /// True when the chain stopped early because its
    /// [`NutsConfig::cancel`] token fired; `draws` then holds the partial
    /// prefix completed before the cancellation point.
    pub cancelled: bool,
}

struct State {
    q: Vec<f64>,
    p: Vec<f64>,
    logp: f64,
    grad: Vec<f64>,
}

/// Per-chain telemetry accumulated in plain locals and flushed into the
/// global [`obs`] registry once at chain end — the leapfrog/gradient path
/// itself carries no instrumentation (the `obs` overhead contract), and
/// the flush is counters/gauges only (no timing), so it is always live.
///
/// Registry surface: `nuts.chains` / `nuts.leapfrogs` /
/// `nuts.divergences` counters, the `nuts.tree_depth` histogram (tree
/// doublings entered per iteration), and the `nuts.step_size` gauge (the
/// most recently finished chain's adapted step size).
struct ChainTelemetry {
    leapfrogs: u64,
    /// Iteration counts by tree depth entered; NUTS depths are single
    /// digits in practice and `max_depth` is bounded far below 64.
    depths: [u64; 64],
}

impl ChainTelemetry {
    fn new() -> Self {
        ChainTelemetry {
            leapfrogs: 0,
            depths: [0; 64],
        }
    }

    fn record_iteration(&mut self, depth_entered: usize, n_leapfrog: usize) {
        self.leapfrogs += n_leapfrog as u64;
        self.depths[depth_entered.min(63)] += 1;
    }

    fn flush(&self, divergences: usize, step_size: f64) {
        obs::counter("nuts.chains").inc();
        obs::counter("nuts.leapfrogs").add(self.leapfrogs);
        obs::counter("nuts.divergences").add(divergences as u64);
        obs::gauge("nuts.step_size").set(step_size);
        let hist = obs::histogram("nuts.tree_depth");
        for (depth, &n) in self.depths.iter().enumerate() {
            hist.record_n(depth as u64, n);
        }
    }
}

/// Dual-averaging step-size adaptation (Hoffman & Gelman 2014, Algorithm 5).
struct DualAveraging {
    mu: f64,
    log_eps: f64,
    log_eps_bar: f64,
    h_bar: f64,
    gamma: f64,
    t0: f64,
    kappa: f64,
    counter: usize,
}

impl DualAveraging {
    fn new(init_step: f64) -> Self {
        DualAveraging {
            mu: (10.0 * init_step).ln(),
            log_eps: init_step.ln(),
            log_eps_bar: 0.0,
            h_bar: 0.0,
            gamma: 0.05,
            t0: 10.0,
            kappa: 0.75,
            counter: 0,
        }
    }

    fn update(&mut self, accept_prob: f64, target: f64) {
        self.counter += 1;
        let m = self.counter as f64;
        let w = 1.0 / (m + self.t0);
        self.h_bar = (1.0 - w) * self.h_bar + w * (target - accept_prob);
        self.log_eps = self.mu - (m.sqrt() / self.gamma) * self.h_bar;
        let weight = m.powf(-self.kappa);
        self.log_eps_bar = weight * self.log_eps + (1.0 - weight) * self.log_eps_bar;
    }

    fn current(&self) -> f64 {
        self.log_eps.exp()
    }

    fn adapted(&self) -> f64 {
        self.log_eps_bar.exp()
    }
}

/// Runs NUTS on a [`GradTarget`] — any model exposing `(log p, ∇ log p)` on
/// the unconstrained scale. Stateful targets (e.g. workspace-backed models)
/// should use [`nuts_sample_mut`], which this function delegates to.
///
/// Constrained models should wrap their density with the appropriate
/// transform (as `gprob::GModel` does).
pub fn nuts_sample<T: GradTarget + ?Sized>(
    target: &T,
    init: Vec<f64>,
    config: &NutsConfig,
) -> NutsResult {
    let mut adapter = target;
    nuts_sample_mut(&mut adapter, init, config)
}

/// Evaluates the target with NaN-to-`-inf` sanitization, counting gradient
/// evaluations. The gradient lands in `grad` (zeroed on a NaN density).
fn eval_target<T: GradTargetMut + ?Sized>(
    target: &mut T,
    q: &[f64],
    grad: &mut [f64],
    count: &mut usize,
) -> f64 {
    *count += 1;
    let lp = target.logp_grad_into(q, grad);
    if lp.is_nan() {
        grad.fill(0.0);
        f64::NEG_INFINITY
    } else {
        lp
    }
}

/// Runs NUTS on a [`GradTargetMut`] — the buffer-reusing interface. Every
/// gradient evaluation writes into pre-allocated buffers, so a
/// workspace-backed target makes the whole chain allocation-free outside the
/// model evaluation itself. One target instance is one chain.
pub fn nuts_sample_mut<T: GradTargetMut + ?Sized>(
    target: &mut T,
    init: Vec<f64>,
    config: &NutsConfig,
) -> NutsResult {
    let dim = init.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut n_grad_evals = 0usize;

    let mut q = init;
    let mut grad = vec![0.0; dim];
    let mut logp = eval_target(target, &q, &mut grad, &mut n_grad_evals);

    // Diagonal inverse mass matrix (variances of q), estimated during warmup.
    let mut inv_mass = vec![1.0; dim];
    let mut welford_mean = vec![0.0; dim];
    let mut welford_m2 = vec![0.0; dim];
    let mut welford_n = 0usize;

    let mut da = DualAveraging::new(find_initial_step_size(
        target,
        &q,
        logp,
        &grad,
        config.init_step_size,
        &inv_mass,
        &mut rng,
        &mut n_grad_evals,
    ));

    let total = config.warmup + config.samples;
    let mut draws = Vec::with_capacity(config.samples);
    let mut telemetry = ChainTelemetry::new();
    let mut divergences = 0usize;
    let mut accept_sum = 0.0;
    let mut accept_count = 0usize;
    let mut step_size = da.current();
    let mut cancelled = false;

    for iter in 0..total {
        if config.cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        let warming_up = iter < config.warmup;

        // Sample momentum p ~ N(0, M) where M = diag(1 / inv_mass).
        let p: Vec<f64> = (0..dim)
            .map(|i| standard_normal(&mut rng) / inv_mass[i].sqrt())
            .collect();

        let joint0 = logp - kinetic(&p, &inv_mass);

        // Multinomial NUTS tree doubling.
        let mut state_minus = State {
            q: q.clone(),
            p: p.clone(),
            logp,
            grad: grad.clone(),
        };
        let mut state_plus = State {
            q: q.clone(),
            p,
            logp,
            grad: grad.clone(),
        };
        let mut q_new = q.clone();
        let mut logp_new = logp;
        let mut grad_new = grad.clone();
        let mut log_sum_weight = 0.0f64; // log weight of the initial point
        let mut sum_accept = 0.0;
        let mut n_leapfrog = 0usize;
        let mut diverged = false;
        let mut depth_entered = 0usize;

        for depth in 0..config.max_depth {
            depth_entered = depth + 1;
            let go_right = rng.gen::<bool>();
            let mut log_sum_weight_subtree = f64::NEG_INFINITY;
            let mut q_prop = q_new.clone();
            let mut logp_prop = logp_new;
            let mut grad_prop = grad_new.clone();

            let ok = {
                let edge = if go_right {
                    &mut state_plus
                } else {
                    &mut state_minus
                };
                build_tree(
                    target,
                    edge,
                    go_right,
                    depth,
                    step_size,
                    joint0,
                    &inv_mass,
                    &mut log_sum_weight_subtree,
                    &mut q_prop,
                    &mut logp_prop,
                    &mut grad_prop,
                    &mut sum_accept,
                    &mut n_leapfrog,
                    &mut rng,
                    &mut n_grad_evals,
                )
            };

            if !ok {
                diverged = true;
                break;
            }

            // Multinomial sampling across the subtree.
            if log_sum_weight_subtree > log_sum_weight {
                q_new = q_prop;
                logp_new = logp_prop;
                grad_new = grad_prop;
            } else {
                let accept_prob = (log_sum_weight_subtree - log_sum_weight).exp();
                if rng.gen::<f64>() < accept_prob {
                    q_new = q_prop;
                    logp_new = logp_prop;
                    grad_new = grad_prop;
                }
            }
            log_sum_weight = log_add_exp(log_sum_weight, log_sum_weight_subtree);

            // U-turn criterion across the whole trajectory.
            if uturn(&state_minus, &state_plus, &inv_mass) {
                break;
            }
        }

        q = q_new;
        logp = logp_new;
        grad = grad_new;
        telemetry.record_iteration(depth_entered, n_leapfrog);

        let accept_stat = if n_leapfrog > 0 {
            sum_accept / n_leapfrog as f64
        } else {
            0.0
        };

        if warming_up {
            da.update(accept_stat, config.target_accept);
            step_size = da.current();
            // Collect draws for the mass matrix during the middle window.
            if iter > config.warmup / 4 && iter < 3 * config.warmup / 4 {
                welford_n += 1;
                for i in 0..dim {
                    let delta = q[i] - welford_mean[i];
                    welford_mean[i] += delta / welford_n as f64;
                    welford_m2[i] += delta * (q[i] - welford_mean[i]);
                }
            }
            if iter == 3 * config.warmup / 4 && welford_n > 4 {
                for i in 0..dim {
                    let var = welford_m2[i] / (welford_n - 1) as f64;
                    inv_mass[i] = var.max(1e-10);
                }
                // Re-initialize step-size adaptation for the new metric.
                da = DualAveraging::new(step_size);
            }
            if iter + 1 == config.warmup {
                // Freeze the step size at its dual-averaged value for sampling.
                step_size = da.adapted().max(1e-8);
            }
        } else {
            if diverged {
                divergences += 1;
            }
            accept_sum += accept_stat;
            accept_count += 1;
            draws.push(q.clone());
        }
    }

    telemetry.flush(divergences, step_size);
    NutsResult {
        draws,
        divergences,
        step_size,
        mean_accept: if accept_count > 0 {
            accept_sum / accept_count as f64
        } else {
            0.0
        },
        n_grad_evals,
        cancelled,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_tree<T: GradTargetMut + ?Sized>(
    target: &mut T,
    edge: &mut State,
    go_right: bool,
    depth: usize,
    step_size: f64,
    joint0: f64,
    inv_mass: &[f64],
    log_sum_weight: &mut f64,
    q_prop: &mut [f64],
    logp_prop: &mut f64,
    grad_prop: &mut [f64],
    sum_accept: &mut f64,
    n_leapfrog: &mut usize,
    rng: &mut StdRng,
    n_grad_evals: &mut usize,
) -> bool {
    let n_steps = 1usize << depth;
    let dir = if go_right { 1.0 } else { -1.0 };
    let mut n_kept = 0.0f64;
    for _ in 0..n_steps {
        leapfrog(target, edge, dir * step_size, inv_mass, n_grad_evals);
        *n_leapfrog += 1;
        let joint = edge.logp - kinetic(&edge.p, inv_mass);
        let delta = joint - joint0;
        if delta < -1000.0 || !joint.is_finite() {
            return false; // divergence
        }
        *sum_accept += delta.min(0.0).exp();
        // Multinomial weight of this point.
        *log_sum_weight = log_add_exp(*log_sum_weight, delta);
        n_kept += 1.0;
        // Progressive sampling within the new subtree: select this point with
        // probability proportional to its weight among new points.
        if rng.gen::<f64>() < (delta - *log_sum_weight).exp() * n_kept.max(1.0) / n_kept {
            q_prop.copy_from_slice(&edge.q);
            *logp_prop = edge.logp;
            grad_prop.copy_from_slice(&edge.grad);
        }
    }
    true
}

fn leapfrog<T: GradTargetMut + ?Sized>(
    target: &mut T,
    s: &mut State,
    eps: f64,
    inv_mass: &[f64],
    n_grad_evals: &mut usize,
) {
    for (p, g) in s.p.iter_mut().zip(&s.grad) {
        *p += 0.5 * eps * g;
    }
    for ((q, im), p) in s.q.iter_mut().zip(inv_mass).zip(&s.p) {
        *q += eps * im * p;
    }
    *n_grad_evals += 1;
    let lp = target.logp_grad_into(&s.q, &mut s.grad);
    s.logp = if lp.is_nan() { f64::NEG_INFINITY } else { lp };
    for (p, g) in s.p.iter_mut().zip(&s.grad) {
        *p += 0.5 * eps * g;
    }
}

fn kinetic(p: &[f64], inv_mass: &[f64]) -> f64 {
    0.5 * p
        .iter()
        .zip(inv_mass)
        .map(|(pi, im)| pi * pi * im)
        .sum::<f64>()
}

fn uturn(minus: &State, plus: &State, inv_mass: &[f64]) -> bool {
    let dq: Vec<f64> = plus.q.iter().zip(&minus.q).map(|(a, b)| a - b).collect();
    let forward: f64 = dq
        .iter()
        .zip(&plus.p)
        .zip(inv_mass)
        .map(|((d, p), im)| d * p * im)
        .sum();
    let backward: f64 = dq
        .iter()
        .zip(&minus.p)
        .zip(inv_mass)
        .map(|((d, p), im)| d * p * im)
        .sum();
    forward < 0.0 || backward < 0.0
}

#[allow(clippy::too_many_arguments)]
fn find_initial_step_size<T: GradTargetMut + ?Sized>(
    target: &mut T,
    q: &[f64],
    logp: f64,
    grad: &[f64],
    init: f64,
    inv_mass: &[f64],
    rng: &mut StdRng,
    n_grad_evals: &mut usize,
) -> f64 {
    // Heuristic from Hoffman & Gelman: double / halve the step size until the
    // acceptance probability of one leapfrog step crosses 0.5.
    let mut eps = init;
    let p: Vec<f64> = (0..q.len())
        .map(|i| standard_normal(rng) / inv_mass[i].sqrt())
        .collect();
    let joint0 = logp - kinetic(&p, inv_mass);
    let mut state = State {
        q: q.to_vec(),
        p,
        logp,
        grad: grad.to_vec(),
    };
    leapfrog(target, &mut state, eps, inv_mass, n_grad_evals);
    let joint = state.logp - kinetic(&state.p, inv_mass);
    let mut delta = joint - joint0;
    if !delta.is_finite() {
        return (init * 0.1).max(1e-6);
    }
    let direction: f64 = if delta > (-0.693) { 1.0 } else { -1.0 };
    for _ in 0..50 {
        eps *= 2f64.powf(direction);
        let p: Vec<f64> = (0..q.len())
            .map(|i| standard_normal(rng) / inv_mass[i].sqrt())
            .collect();
        let joint0 = logp - kinetic(&p, inv_mass);
        let mut state = State {
            q: q.to_vec(),
            p,
            logp,
            grad: grad.to_vec(),
        };
        leapfrog(target, &mut state, eps, inv_mass, n_grad_evals);
        let joint = state.logp - kinetic(&state.p, inv_mass);
        delta = joint - joint0;
        if !delta.is_finite() {
            eps *= 0.5;
            break;
        }
        if (direction > 0.0 && delta < -0.693) || (direction < 0.0 && delta > -0.693) {
            break;
        }
    }
    eps.clamp(1e-8, 10.0)
}

fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Runs `inits.len()` NUTS chains in *lockstep* over one shared
/// [`GradTargetBatch`]: each chain is an explicit state machine that parks on
/// its next gradient evaluation, and every round the driver gathers all
/// non-finished chains' pending points into a single
/// [`GradTargetBatch::logp_grad_batch`] call. Lane-widened density programs
/// (`gprob::dprog`) then score the whole fleet with one struct-of-arrays
/// forward/reverse sweep per lane group instead of one interpreter walk per
/// chain.
///
/// Chain `c` consumes its private RNG (`configs[c].seed`) in exactly the
/// order [`nuts_sample_mut`] would, so each result is bitwise identical to a
/// sequential run of that chain. Chains may differ in warmup length, depth,
/// or seed; a chain that finishes early simply drops out of subsequent
/// batches.
///
/// Panics when `inits` and `configs` differ in length or the initial points
/// differ in dimension (the batch layout is row-major with one shared `dim`).
pub fn nuts_sample_lockstep<T: GradTargetBatch + ?Sized>(
    target: &mut T,
    inits: Vec<Vec<f64>>,
    configs: &[NutsConfig],
) -> Vec<NutsResult> {
    assert_eq!(
        inits.len(),
        configs.len(),
        "one NutsConfig per initial point"
    );
    let n = inits.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = inits[0].len();
    assert!(
        inits.iter().all(|q| q.len() == dim),
        "all chains must share one dimension"
    );

    let mut chains: Vec<LockstepChain> = inits
        .into_iter()
        .zip(configs)
        .map(|(init, cfg)| LockstepChain::new(init, cfg.clone()))
        .collect();

    let mut qs: Vec<f64> = Vec::with_capacity(n * dim);
    let mut active: Vec<usize> = Vec::with_capacity(n);
    let mut logps = vec![0.0; n];
    let mut grads = vec![0.0; n * dim];
    loop {
        qs.clear();
        active.clear();
        for (c, chain) in chains.iter_mut().enumerate() {
            // Cooperative cancellation, observed once per round at an
            // iteration-safe point: a cancelled chain keeps only fully
            // completed iterations, so its draws stay a bitwise prefix of
            // the uncancelled run.
            if !chain.done && chain.cfg.cancel.is_cancelled() {
                chain.cancelled = true;
                chain.done = true;
            }
            if !chain.done {
                active.push(c);
                qs.extend_from_slice(&chain.pending_q);
            }
        }
        if active.is_empty() {
            break;
        }
        let m = active.len();
        target.logp_grad_batch(&qs, &mut logps[..m], &mut grads[..m * dim]);
        for (slot, &c) in active.iter().enumerate() {
            chains[c].on_reply(logps[slot], &grads[slot * dim..(slot + 1) * dim]);
        }
    }
    chains.into_iter().map(LockstepChain::finish).collect()
}

/// Where a lockstep chain is parked while it waits for its pending gradient
/// evaluation. Every non-`Idle` variant owes the chain exactly one reply for
/// the point currently in `LockstepChain::pending_q`.
enum Phase {
    /// Transient placeholder while a reply is being applied.
    Idle,
    /// Waiting on the initial density evaluation at the chain's init point.
    Init,
    /// Inside `find_initial_step_size`'s doubling/halving probe loop.
    FindStep(FindStep),
    /// Inside one iteration's tree doubling, mid-subtree.
    Tree(Box<TreeWalk>),
}

/// Suspended state of the `find_initial_step_size` heuristic.
struct FindStep {
    eps: f64,
    direction: f64,
    /// Probes issued after the first trial step (the sequential loop runs at
    /// most 50 of them).
    attempts: usize,
    /// True until the pre-loop trial step's reply has been handled.
    first: bool,
    joint0: f64,
    state: State,
}

/// Suspended state of one NUTS iteration's tree doubling: the per-iteration
/// locals of [`nuts_sample_mut`]'s depth loop plus `build_tree`'s position
/// within the current subtree.
struct TreeWalk {
    joint0: f64,
    state_minus: State,
    state_plus: State,
    q_new: Vec<f64>,
    logp_new: f64,
    grad_new: Vec<f64>,
    log_sum_weight: f64,
    sum_accept: f64,
    n_leapfrog: usize,
    depth: usize,
    go_right: bool,
    log_sum_weight_subtree: f64,
    q_prop: Vec<f64>,
    logp_prop: f64,
    grad_prop: Vec<f64>,
    n_steps: usize,
    step_i: usize,
    n_kept: f64,
}

/// One chain of [`nuts_sample_lockstep`], advanced one gradient reply at a
/// time. The fields mirror [`nuts_sample_mut`]'s locals one-for-one; the
/// control flow is the same algorithm with every `leapfrog` call split into a
/// position half-step (publishing `pending_q`) and a momentum half-step
/// (applied when the batched evaluation answers).
struct LockstepChain {
    cfg: NutsConfig,
    rng: StdRng,
    dim: usize,
    n_grad_evals: usize,
    q: Vec<f64>,
    grad: Vec<f64>,
    logp: f64,
    inv_mass: Vec<f64>,
    welford_mean: Vec<f64>,
    welford_m2: Vec<f64>,
    welford_n: usize,
    da: DualAveraging,
    step_size: f64,
    draws: Vec<Vec<f64>>,
    divergences: usize,
    accept_sum: f64,
    accept_count: usize,
    iter: usize,
    telemetry: ChainTelemetry,
    phase: Phase,
    /// The point whose `(log p, ∇ log p)` the chain is waiting on; gathered
    /// by the driver whenever `done` is false.
    pending_q: Vec<f64>,
    done: bool,
    cancelled: bool,
}

impl LockstepChain {
    fn new(init: Vec<f64>, cfg: NutsConfig) -> Self {
        let dim = init.len();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let pending_q = init.clone();
        let da = DualAveraging::new(cfg.init_step_size);
        let step_size = cfg.init_step_size;
        LockstepChain {
            cfg,
            rng,
            dim,
            n_grad_evals: 0,
            grad: vec![0.0; dim],
            q: init,
            logp: f64::NEG_INFINITY,
            inv_mass: vec![1.0; dim],
            welford_mean: vec![0.0; dim],
            welford_m2: vec![0.0; dim],
            welford_n: 0,
            da,
            step_size,
            draws: Vec::new(),
            divergences: 0,
            accept_sum: 0.0,
            accept_count: 0,
            iter: 0,
            telemetry: ChainTelemetry::new(),
            phase: Phase::Init,
            pending_q,
            done: false,
            cancelled: false,
        }
    }

    /// Applies one batched evaluation's answer for this chain's pending point
    /// and advances the state machine until it either parks on the next
    /// pending evaluation or finishes the chain.
    fn on_reply(&mut self, lp: f64, grad_in: &[f64]) {
        self.n_grad_evals += 1;
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => unreachable!("lockstep chain got a reply with no pending evaluation"),
            Phase::Init => {
                // Mirror `eval_target`: a NaN density becomes -inf with a
                // zeroed gradient.
                if lp.is_nan() {
                    self.logp = f64::NEG_INFINITY;
                    self.grad.fill(0.0);
                } else {
                    self.logp = lp;
                    self.grad.copy_from_slice(grad_in);
                }
                self.begin_find_step();
            }
            Phase::FindStep(fs) => self.find_step_reply(fs, lp, grad_in),
            Phase::Tree(tw) => self.tree_reply(tw, lp, grad_in),
        }
    }

    fn draw_momentum(&mut self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            p.push(standard_normal(&mut self.rng) / self.inv_mass[i].sqrt());
        }
        p
    }

    /// First half of `leapfrog`: momentum half-step off the stored gradient,
    /// full position step, and publication of the new position as this
    /// chain's pending evaluation.
    fn leapfrog_begin(&mut self, s: &mut State, eps: f64) {
        for (p, g) in s.p.iter_mut().zip(&s.grad) {
            *p += 0.5 * eps * g;
        }
        for ((q, im), p) in s.q.iter_mut().zip(&self.inv_mass).zip(&s.p) {
            *q += eps * im * p;
        }
        self.pending_q.clear();
        self.pending_q.extend_from_slice(&s.q);
    }

    fn begin_find_step(&mut self) {
        let eps = self.cfg.init_step_size;
        let p = self.draw_momentum();
        let joint0 = self.logp - kinetic(&p, &self.inv_mass);
        let mut state = State {
            q: self.q.clone(),
            p,
            logp: self.logp,
            grad: self.grad.clone(),
        };
        self.leapfrog_begin(&mut state, eps);
        self.phase = Phase::FindStep(FindStep {
            eps,
            direction: 0.0,
            attempts: 0,
            first: true,
            joint0,
            state,
        });
    }

    fn find_step_reply(&mut self, mut fs: FindStep, lp: f64, grad_in: &[f64]) {
        leapfrog_finish(&mut fs.state, fs.eps, lp, grad_in);
        let joint = fs.state.logp - kinetic(&fs.state.p, &self.inv_mass);
        let delta = joint - fs.joint0;
        if fs.first {
            if !delta.is_finite() {
                // Unclamped early return, as in the sequential heuristic.
                self.finish_find_step((self.cfg.init_step_size * 0.1).max(1e-6));
                return;
            }
            fs.direction = if delta > (-0.693) { 1.0 } else { -1.0 };
            fs.first = false;
            self.find_step_probe(fs);
            return;
        }
        if !delta.is_finite() {
            let eps = fs.eps * 0.5;
            self.finish_find_step(eps.clamp(1e-8, 10.0));
            return;
        }
        let crossed =
            (fs.direction > 0.0 && delta < -0.693) || (fs.direction < 0.0 && delta > -0.693);
        if crossed || fs.attempts >= 50 {
            self.finish_find_step(fs.eps.clamp(1e-8, 10.0));
            return;
        }
        self.find_step_probe(fs);
    }

    /// Issues the next doubling/halving probe: scale `eps`, draw a fresh
    /// momentum, restart from the chain's current point.
    fn find_step_probe(&mut self, mut fs: FindStep) {
        fs.attempts += 1;
        fs.eps *= 2f64.powf(fs.direction);
        let p = self.draw_momentum();
        fs.joint0 = self.logp - kinetic(&p, &self.inv_mass);
        fs.state.q.copy_from_slice(&self.q);
        fs.state.p = p;
        fs.state.logp = self.logp;
        fs.state.grad.copy_from_slice(&self.grad);
        let eps = fs.eps;
        self.leapfrog_begin(&mut fs.state, eps);
        self.phase = Phase::FindStep(fs);
    }

    fn finish_find_step(&mut self, eps: f64) {
        self.da = DualAveraging::new(eps);
        self.step_size = self.da.current();
        self.run_iterations();
    }

    /// Starts iterations until one parks on a tree leapfrog or the chain is
    /// out of iterations. The loop (rather than recursion) covers
    /// `max_depth == 0`, where whole iterations complete without any
    /// evaluation.
    fn run_iterations(&mut self) {
        loop {
            let total = self.cfg.warmup + self.cfg.samples;
            if self.iter >= total {
                self.done = true;
                return;
            }
            let mut tw = self.make_tree_walk();
            if tw.depth < self.cfg.max_depth {
                self.init_subtree(&mut tw);
                self.begin_edge_leapfrog(&mut tw);
                self.phase = Phase::Tree(tw);
                return;
            }
            self.apply_iteration_end(tw, false, 0);
        }
    }

    fn make_tree_walk(&mut self) -> Box<TreeWalk> {
        let p = self.draw_momentum();
        let joint0 = self.logp - kinetic(&p, &self.inv_mass);
        Box::new(TreeWalk {
            joint0,
            state_minus: State {
                q: self.q.clone(),
                p: p.clone(),
                logp: self.logp,
                grad: self.grad.clone(),
            },
            state_plus: State {
                q: self.q.clone(),
                p,
                logp: self.logp,
                grad: self.grad.clone(),
            },
            q_new: self.q.clone(),
            logp_new: self.logp,
            grad_new: self.grad.clone(),
            log_sum_weight: 0.0,
            sum_accept: 0.0,
            n_leapfrog: 0,
            depth: 0,
            go_right: false,
            log_sum_weight_subtree: f64::NEG_INFINITY,
            q_prop: self.q.clone(),
            logp_prop: self.logp,
            grad_prop: self.grad.clone(),
            n_steps: 0,
            step_i: 0,
            n_kept: 0.0,
        })
    }

    /// Per-depth setup at the top of the sequential depth loop.
    fn init_subtree(&mut self, tw: &mut TreeWalk) {
        tw.go_right = self.rng.gen::<bool>();
        tw.log_sum_weight_subtree = f64::NEG_INFINITY;
        tw.q_prop.copy_from_slice(&tw.q_new);
        tw.logp_prop = tw.logp_new;
        tw.grad_prop.copy_from_slice(&tw.grad_new);
        tw.n_steps = 1usize << tw.depth;
        tw.step_i = 0;
        tw.n_kept = 0.0;
    }

    fn begin_edge_leapfrog(&mut self, tw: &mut TreeWalk) {
        let dir = if tw.go_right { 1.0 } else { -1.0 };
        let eps = dir * self.step_size;
        let edge = if tw.go_right {
            &mut tw.state_plus
        } else {
            &mut tw.state_minus
        };
        self.leapfrog_begin(edge, eps);
    }

    fn tree_reply(&mut self, mut tw: Box<TreeWalk>, lp: f64, grad_in: &[f64]) {
        let dir = if tw.go_right { 1.0 } else { -1.0 };
        let eps = dir * self.step_size;
        {
            let edge = if tw.go_right {
                &mut tw.state_plus
            } else {
                &mut tw.state_minus
            };
            leapfrog_finish(edge, eps, lp, grad_in);
        }
        tw.n_leapfrog += 1;
        let (joint, delta) = {
            let edge = if tw.go_right {
                &tw.state_plus
            } else {
                &tw.state_minus
            };
            let joint = edge.logp - kinetic(&edge.p, &self.inv_mass);
            (joint, joint - tw.joint0)
        };
        if delta < -1000.0 || !joint.is_finite() {
            // Divergence: abandon the iteration (no progressive-sampling RNG
            // draw for this step, as in `build_tree`'s early return).
            let depth_entered = tw.depth + 1;
            self.apply_iteration_end(tw, true, depth_entered);
            self.run_iterations();
            return;
        }
        tw.sum_accept += delta.min(0.0).exp();
        tw.log_sum_weight_subtree = log_add_exp(tw.log_sum_weight_subtree, delta);
        tw.n_kept += 1.0;
        let threshold = (delta - tw.log_sum_weight_subtree).exp() * tw.n_kept.max(1.0) / tw.n_kept;
        if self.rng.gen::<f64>() < threshold {
            let edge = if tw.go_right {
                &tw.state_plus
            } else {
                &tw.state_minus
            };
            tw.q_prop.copy_from_slice(&edge.q);
            tw.logp_prop = edge.logp;
            tw.grad_prop.copy_from_slice(&edge.grad);
        }
        tw.step_i += 1;
        if tw.step_i < tw.n_steps {
            self.begin_edge_leapfrog(&mut tw);
            self.phase = Phase::Tree(tw);
            return;
        }

        // Subtree complete: multinomial merge into the trajectory.
        if tw.log_sum_weight_subtree > tw.log_sum_weight {
            take_proposal(&mut tw);
        } else {
            let accept_prob = (tw.log_sum_weight_subtree - tw.log_sum_weight).exp();
            if self.rng.gen::<f64>() < accept_prob {
                take_proposal(&mut tw);
            }
        }
        tw.log_sum_weight = log_add_exp(tw.log_sum_weight, tw.log_sum_weight_subtree);
        if uturn(&tw.state_minus, &tw.state_plus, &self.inv_mass) {
            let depth_entered = tw.depth + 1;
            self.apply_iteration_end(tw, false, depth_entered);
            self.run_iterations();
            return;
        }
        tw.depth += 1;
        if tw.depth < self.cfg.max_depth {
            self.init_subtree(&mut tw);
            self.begin_edge_leapfrog(&mut tw);
            self.phase = Phase::Tree(tw);
            return;
        }
        let depth_entered = tw.depth;
        self.apply_iteration_end(tw, false, depth_entered);
        self.run_iterations();
    }

    /// Everything after the depth loop in [`nuts_sample_mut`]: accept the new
    /// point, adapt during warmup, record draws after it. `depth_entered`
    /// mirrors the sequential driver's count of tree doublings entered
    /// this iteration (telemetry only — no effect on sampling).
    fn apply_iteration_end(&mut self, tw: Box<TreeWalk>, diverged: bool, depth_entered: usize) {
        let tw = *tw;
        self.q = tw.q_new;
        self.logp = tw.logp_new;
        self.grad = tw.grad_new;
        self.telemetry
            .record_iteration(depth_entered, tw.n_leapfrog);

        let accept_stat = if tw.n_leapfrog > 0 {
            tw.sum_accept / tw.n_leapfrog as f64
        } else {
            0.0
        };

        if self.iter < self.cfg.warmup {
            self.da.update(accept_stat, self.cfg.target_accept);
            self.step_size = self.da.current();
            if self.iter > self.cfg.warmup / 4 && self.iter < 3 * self.cfg.warmup / 4 {
                self.welford_n += 1;
                for i in 0..self.dim {
                    let delta = self.q[i] - self.welford_mean[i];
                    self.welford_mean[i] += delta / self.welford_n as f64;
                    self.welford_m2[i] += delta * (self.q[i] - self.welford_mean[i]);
                }
            }
            if self.iter == 3 * self.cfg.warmup / 4 && self.welford_n > 4 {
                for i in 0..self.dim {
                    let var = self.welford_m2[i] / (self.welford_n - 1) as f64;
                    self.inv_mass[i] = var.max(1e-10);
                }
                self.da = DualAveraging::new(self.step_size);
            }
            if self.iter + 1 == self.cfg.warmup {
                self.step_size = self.da.adapted().max(1e-8);
            }
        } else {
            if diverged {
                self.divergences += 1;
            }
            self.accept_sum += accept_stat;
            self.accept_count += 1;
            self.draws.push(self.q.clone());
        }
        self.iter += 1;
    }

    fn finish(self) -> NutsResult {
        self.telemetry.flush(self.divergences, self.step_size);
        NutsResult {
            draws: self.draws,
            divergences: self.divergences,
            step_size: self.step_size,
            mean_accept: if self.accept_count > 0 {
                self.accept_sum / self.accept_count as f64
            } else {
                0.0
            },
            n_grad_evals: self.n_grad_evals,
            cancelled: self.cancelled,
        }
    }
}

/// Second half of `leapfrog`: install the evaluated gradient (NaN density
/// maps to `-inf` with the gradient kept, exactly as in the sequential
/// `leapfrog`) and finish the momentum step.
fn leapfrog_finish(s: &mut State, eps: f64, lp: f64, grad_in: &[f64]) {
    s.grad.copy_from_slice(grad_in);
    s.logp = if lp.is_nan() { f64::NEG_INFINITY } else { lp };
    for (p, g) in s.p.iter_mut().zip(&s.grad) {
        *p += 0.5 * eps * g;
    }
}

/// The subtree's proposal replaces the trajectory's current proposal.
fn take_proposal(tw: &mut TreeWalk) {
    let TreeWalk {
        q_new,
        logp_new,
        grad_new,
        q_prop,
        logp_prop,
        grad_prop,
        ..
    } = tw;
    q_new.copy_from_slice(q_prop);
    *logp_new = *logp_prop;
    grad_new.copy_from_slice(grad_prop);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::summarize;

    fn run_standard_normal(dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let target = move |q: &[f64]| {
            let lp: f64 = q.iter().map(|x| -0.5 * x * x).sum();
            let grad: Vec<f64> = q.iter().map(|x| -x).collect();
            (lp, grad)
        };
        let cfg = NutsConfig {
            warmup: 400,
            samples: 800,
            seed,
            ..Default::default()
        };
        nuts_sample(&target, vec![1.0; dim], &cfg).draws
    }

    #[test]
    fn recovers_standard_normal_moments() {
        let draws = run_standard_normal(3, 1);
        let summary = summarize(&draws);
        for s in &summary {
            assert!(s.mean.abs() < 0.15, "mean {}", s.mean);
            assert!((s.stddev - 1.0).abs() < 0.2, "sd {}", s.stddev);
        }
    }

    #[test]
    fn recovers_correlated_gaussian_mean() {
        // Target: N(mu, diag(sigma^2)) with different scales per dimension.
        let mu = [2.0, -1.0];
        let sigma = [0.5, 3.0];
        let target = move |q: &[f64]| {
            let mut lp = 0.0;
            let mut g = vec![0.0; 2];
            for i in 0..2 {
                let z = (q[i] - mu[i]) / sigma[i];
                lp += -0.5 * z * z;
                g[i] = -z / sigma[i];
            }
            (lp, g)
        };
        let cfg = NutsConfig {
            warmup: 500,
            samples: 1000,
            seed: 2,
            ..Default::default()
        };
        let res = nuts_sample(&target, vec![0.0, 0.0], &cfg);
        let summary = summarize(&res.draws);
        assert!((summary[0].mean - 2.0).abs() < 0.1, "{}", summary[0].mean);
        assert!((summary[1].mean + 1.0).abs() < 0.5, "{}", summary[1].mean);
        assert!(
            (summary[1].stddev - 3.0).abs() < 0.7,
            "{}",
            summary[1].stddev
        );
        assert_eq!(res.draws.len(), 1000);
    }

    #[test]
    fn banana_shaped_target_does_not_diverge_catastrophically() {
        // Rosenbrock-like banana density.
        let target = |q: &[f64]| {
            let (x, y) = (q[0], q[1]);
            let lp = -0.5 * x * x - 0.5 * (y - x * x).powi(2) / 0.25;
            let dldx = -x + (y - x * x) / 0.25 * 2.0 * x;
            let dldy = -(y - x * x) / 0.25;
            (lp, vec![dldx, dldy])
        };
        let cfg = NutsConfig {
            warmup: 300,
            samples: 300,
            seed: 3,
            ..Default::default()
        };
        let res = nuts_sample(&target, vec![0.1, 0.1], &cfg);
        assert!(res.divergences < 100);
        assert!(res.mean_accept > 0.4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_standard_normal(2, 42);
        let b = run_standard_normal(2, 42);
        assert_eq!(a[10], b[10]);
        let c = run_standard_normal(2, 43);
        assert_ne!(a[10], c[10]);
    }

    #[test]
    fn lockstep_chains_match_sequential_chains_bitwise() {
        // Smooth target and a divergence-prone banana: both must agree with
        // the sequential sampler draw-for-draw, bit-for-bit.
        let gaussian = |q: &[f64]| {
            let lp: f64 = q.iter().map(|x| -0.5 * x * x).sum();
            let grad: Vec<f64> = q.iter().map(|x| -x).collect();
            (lp, grad)
        };
        let banana = |q: &[f64]| {
            let (x, y) = (q[0], q[1]);
            let lp = -0.5 * x * x - 0.5 * (y - x * x).powi(2) / 0.25;
            let dldx = -x + (y - x * x) / 0.25 * 2.0 * x;
            let dldy = -(y - x * x) / 0.25;
            (lp, vec![dldx, dldy])
        };
        for target in [&gaussian as &dyn GradTarget, &banana as &dyn GradTarget] {
            let configs: Vec<NutsConfig> = (0..3)
                .map(|c| NutsConfig {
                    warmup: 60,
                    samples: 40,
                    seed: 7 + c,
                    ..Default::default()
                })
                .collect();
            let inits = vec![vec![0.4, -0.3], vec![-1.0, 0.2], vec![0.0, 0.0]];

            let mut batched = target;
            let lockstep = nuts_sample_lockstep(&mut batched, inits.clone(), &configs);

            for ((init, cfg), got) in inits.into_iter().zip(&configs).zip(&lockstep) {
                let want = nuts_sample(target, init, cfg);
                assert_eq!(want.draws, got.draws);
                assert_eq!(want.divergences, got.divergences);
                assert_eq!(want.step_size.to_bits(), got.step_size.to_bits());
                assert_eq!(want.mean_accept.to_bits(), got.mean_accept.to_bits());
                assert_eq!(want.n_grad_evals, got.n_grad_evals);
            }
        }
    }

    #[test]
    fn lockstep_tolerates_heterogeneous_chain_lengths() {
        let target = |q: &[f64]| (-0.5 * q[0] * q[0], vec![-q[0]]);
        let configs = vec![
            NutsConfig {
                warmup: 20,
                samples: 10,
                seed: 11,
                ..Default::default()
            },
            NutsConfig {
                warmup: 80,
                samples: 60,
                seed: 12,
                ..Default::default()
            },
        ];
        let inits = vec![vec![0.5], vec![-0.5]];
        let mut batched = &target;
        let lockstep = nuts_sample_lockstep(&mut batched, inits.clone(), &configs);
        assert_eq!(lockstep[0].draws.len(), 10);
        assert_eq!(lockstep[1].draws.len(), 60);
        for ((init, cfg), got) in inits.into_iter().zip(&configs).zip(&lockstep) {
            let want = nuts_sample(&target, init, cfg);
            assert_eq!(want.draws, got.draws);
            assert_eq!(want.n_grad_evals, got.n_grad_evals);
        }
    }

    #[test]
    fn reports_gradient_evaluations_and_step_size() {
        let target = |q: &[f64]| (-0.5 * q[0] * q[0], vec![-q[0]]);
        let cfg = NutsConfig {
            warmup: 100,
            samples: 100,
            seed: 5,
            ..Default::default()
        };
        let res = nuts_sample(&target, vec![0.0], &cfg);
        assert!(res.n_grad_evals > 200);
        assert!(res.step_size > 0.0 && res.step_size < 10.0);
    }
}
