//! Chain-sharded streaming of posterior draws through a per-draw evaluator.
//!
//! This is the inference-side half of the posterior-predictive engine: a
//! method-agnostic driver that walks every retained draw of a multi-chain
//! fit through a caller-supplied evaluator (in practice, `gprob`'s resolved
//! `generated quantities` program with a pooled workspace), sharding chains
//! over `std::thread::scope` exactly like multi-chain sampling does. The
//! driver knows nothing about models — each chain gets its own worker from a
//! factory closure, so per-chain scratch state (workspaces, RNG cells) never
//! crosses a thread boundary.
//!
//! Reproducibility: evaluators receive a *per-(chain, draw)* seed derived
//! from one master seed by [`draw_seed`], a splitmix64-style mix. Results
//! are therefore identical no matter how chains are scheduled across
//! threads — or whether the same draw is re-evaluated in isolation later.

use std::fmt;

/// The output table of a streamed evaluation: named flat columns with
/// per-chain, per-draw rows — the generated-quantities analog of a fit's
/// draw matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GqTable {
    /// Flat column names (`y_rep[1]`, `log_lik[3]`, `s`, ...).
    pub names: Vec<String>,
    /// Rows, indexed `[chain][draw][column]`.
    pub chains: Vec<Vec<Vec<f64>>>,
}

impl GqTable {
    /// Number of rows across all chains.
    pub fn n_draws(&self) -> usize {
        self.chains.iter().map(|c| c.len()).sum()
    }

    /// Index of a column by exact name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Pooled rows of every chain, in chain order.
    pub fn pooled(&self) -> Vec<Vec<f64>> {
        self.chains.iter().flat_map(|c| c.iter().cloned()).collect()
    }

    /// Pooled draws of one column across all chains.
    pub fn component(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.index_of(name)?;
        Some(
            self.chains
                .iter()
                .flat_map(|c| c.iter().map(move |row| row[idx]))
                .collect(),
        )
    }

    /// Per-chain series of one column.
    pub fn component_chains(&self, name: &str) -> Option<Vec<Vec<f64>>> {
        let idx = self.index_of(name)?;
        Some(
            self.chains
                .iter()
                .map(|c| c.iter().map(|row| row[idx]).collect())
                .collect(),
        )
    }

    /// The pooled draws × components matrix of one *container* quantity:
    /// every column named `name[...]` (or the scalar `name`), in flat
    /// component order. `None` when no column matches.
    pub fn matrix(&self, name: &str) -> Option<Vec<Vec<f64>>> {
        let prefix = format!("{name}[");
        let cols: Vec<usize> = self
            .names
            .iter()
            .enumerate()
            .filter(|(_, n)| *n == name || n.starts_with(&prefix))
            .map(|(i, _)| i)
            .collect();
        if cols.is_empty() {
            return None;
        }
        Some(
            self.chains
                .iter()
                .flat_map(|c| {
                    c.iter()
                        .map(|row| cols.iter().map(|&i| row[i]).collect::<Vec<f64>>())
                })
                .collect(),
        )
    }
}

/// Error from a streamed evaluation: the failing chain and draw plus the
/// evaluator's message.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamError {
    /// Chain index of the failing draw.
    pub chain: usize,
    /// Draw index within the chain.
    pub draw: usize,
    /// The evaluator's error message.
    pub message: String,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "draw {} of chain {} failed: {}",
            self.draw, self.chain, self.message
        )
    }
}

impl std::error::Error for StreamError {}

/// A deterministic per-(chain, draw) RNG seed derived from a master seed —
/// splitmix64 finalization over the mixed coordinates, so every draw owns an
/// independent stream regardless of chain scheduling order.
pub fn draw_seed(master: u64, chain: u64, draw: u64) -> u64 {
    let mut z = master
        ^ chain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ draw.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streams every draw of a multi-chain draw set through per-chain workers,
/// sharding chains over `std::thread::scope` (chains beyond the first run on
/// their own threads). `make_worker(chain)` builds one worker per chain —
/// its pooled scratch state lives on that chain's thread; the worker is then
/// called as `worker(draw_index, seed, row)` for every draw in order, with
/// `seed` derived by [`draw_seed`] from `master_seed`.
///
/// # Errors
/// The first failing draw aborts its chain and is reported with its
/// coordinates; other chains' completed work is discarded.
pub fn stream_chains<W>(
    chains: &[&[Vec<f64>]],
    master_seed: u64,
    make_worker: impl Fn(usize) -> W + Sync,
) -> Result<Vec<Vec<Vec<f64>>>, StreamError>
where
    W: FnMut(usize, u64, &[f64]) -> Result<Vec<f64>, String>,
{
    let run_chain = |c: usize| -> Result<Vec<Vec<f64>>, StreamError> {
        let mut worker = make_worker(c);
        let mut rows = Vec::with_capacity(chains[c].len());
        for (d, draw) in chains[c].iter().enumerate() {
            let seed = draw_seed(master_seed, c as u64, d as u64);
            rows.push(worker(d, seed, draw).map_err(|message| StreamError {
                chain: c,
                draw: d,
                message,
            })?);
        }
        Ok(rows)
    };
    if chains.len() <= 1 {
        return chains
            .first()
            .map_or(Ok(Vec::new()), |_| run_chain(0).map(|rows| vec![rows]));
    }
    std::thread::scope(|s| {
        let run_chain = &run_chain;
        // Chains beyond the first get their own threads; chain 0 runs on the
        // calling thread.
        let handles: Vec<_> = (1..chains.len())
            .map(|c| s.spawn(move || run_chain(c)))
            .collect();
        let mut results = vec![run_chain(0)?];
        for h in handles {
            results.push(h.join().expect("predictive chain thread panicked")?);
        }
        Ok(results)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_seeds_are_deterministic_and_distinct() {
        let a = draw_seed(7, 0, 0);
        assert_eq!(a, draw_seed(7, 0, 0));
        let mut seen = std::collections::HashSet::new();
        for chain in 0..4u64 {
            for draw in 0..100u64 {
                seen.insert(draw_seed(7, chain, draw));
            }
        }
        assert_eq!(seen.len(), 400, "seed collisions");
        assert_ne!(draw_seed(7, 0, 1), draw_seed(8, 0, 1));
    }

    #[test]
    fn streaming_shards_chains_and_is_order_independent() {
        let c0: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let c1: Vec<Vec<f64>> = (0..5).map(|i| vec![10.0 + i as f64]).collect();
        let chains = [c0.as_slice(), c1.as_slice()];
        let eval = |chain: usize| {
            move |_d: usize, seed: u64, row: &[f64]| -> Result<Vec<f64>, String> {
                Ok(vec![row[0] * 2.0, (seed % 1000) as f64, chain as f64])
            }
        };
        let out = stream_chains(&chains, 42, eval).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][3][0], 6.0);
        assert_eq!(out[1][2][0], 24.0);
        // Single-chain evaluation of chain 1 alone reproduces the same rows:
        // the per-(chain,draw) seeds do not depend on scheduling.
        let solo = stream_chains(&chains[1..], 42, |_| {
            move |_d: usize, seed: u64, row: &[f64]| -> Result<Vec<f64>, String> {
                Ok(vec![row[0] * 2.0, (seed % 1000) as f64, 1.0])
            }
        })
        .unwrap();
        // Chain index differs (it is positional), so compare the seeded
        // column only after re-deriving with the right coordinate.
        assert_eq!(solo[0][2][0], out[1][2][0]);
        // Errors carry their coordinates.
        let err = stream_chains(&chains, 42, |_| {
            |d: usize, _s: u64, _row: &[f64]| -> Result<Vec<f64>, String> {
                if d == 3 {
                    Err("boom".into())
                } else {
                    Ok(vec![0.0])
                }
            }
        })
        .unwrap_err();
        assert_eq!(err.draw, 3);
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn gq_table_accessors() {
        let table = GqTable {
            names: vec!["s".into(), "ll[1]".into(), "ll[2]".into()],
            chains: vec![
                vec![vec![1.0, 10.0, 20.0], vec![2.0, 11.0, 21.0]],
                vec![vec![3.0, 12.0, 22.0]],
            ],
        };
        assert_eq!(table.n_draws(), 3);
        assert_eq!(table.component("s").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            table.component_chains("s").unwrap(),
            vec![vec![1.0, 2.0], vec![3.0]]
        );
        let m = table.matrix("ll").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![10.0, 20.0]);
        assert_eq!(m[2], vec![12.0, 22.0]);
        assert_eq!(table.matrix("s").unwrap()[0], vec![1.0]);
        assert!(table.matrix("nope").is_none());
    }
}
