//! The target-density interface shared by all gradient-based samplers.
//!
//! Samplers used to take `&dyn Fn(&[f64]) -> (f64, Vec<f64>)`, forcing a
//! virtual call per gradient evaluation and a closure allocation at every
//! call site. [`GradTarget`] makes the samplers generic: model-backed targets
//! (e.g. `gprob::GModel` behind `deepstan`'s adapter) are dispatched
//! statically, while every existing closure keeps working through the
//! blanket implementation.

/// A log-density with gradient, evaluated on the unconstrained scale.
pub trait GradTarget {
    /// Returns `(log p(q), ∇ log p(q))`.
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>);
}

impl<F: Fn(&[f64]) -> (f64, Vec<f64>)> GradTarget for F {
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
        self(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quadratic;
    impl GradTarget for Quadratic {
        fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
            (-0.5 * q[0] * q[0], vec![-q[0]])
        }
    }

    #[test]
    fn closures_and_structs_both_implement_the_trait() {
        let closure = |q: &[f64]| (-0.5 * q[0] * q[0], vec![-q[0]]);
        let (lp_c, g_c) = closure.logp_grad(&[2.0]);
        let (lp_s, g_s) = Quadratic.logp_grad(&[2.0]);
        assert_eq!((lp_c, g_c), (lp_s, g_s));
    }
}
