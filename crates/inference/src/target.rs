//! The target-density interface shared by all gradient-based samplers.
//!
//! Two tiers:
//!
//! * [`GradTarget`] — the simple, stateless interface: `(log p, ∇ log p)` as
//!   a fresh `Vec` per call. Closures implement it via the blanket impl, so
//!   quick experiments and tests stay one-liners.
//! * [`GradTargetMut`] — the buffer-reusing interface the samplers actually
//!   drive: `logp_grad_into` writes the gradient into a caller-owned slice
//!   and may mutate internal scratch state (a `gprob::DensityWorkspace`,
//!   pooled tape leaves, ...). One target instance is one chain; multi-chain
//!   runs give each thread its own target, which is exactly the sharding
//!   model of `deepstan`'s `Session`.
//!
//! Every [`GradTarget`] is automatically a [`GradTargetMut`] (with one
//! `Vec` allocation per call), so existing closures keep working with the
//! rewritten samplers.

/// A log-density with gradient, evaluated on the unconstrained scale.
pub trait GradTarget {
    /// Returns `(log p(q), ∇ log p(q))`.
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>);
}

impl<F: Fn(&[f64]) -> (f64, Vec<f64>)> GradTarget for F {
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
        self(q)
    }
}

/// A log-density with gradient that may reuse internal scratch state and
/// writes the gradient into a caller-provided buffer — the interface the
/// samplers' hot loops call.
pub trait GradTargetMut {
    /// Writes `∇ log p(q)` into `grad` (which has length `q.len()`) and
    /// returns `log p(q)`.
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64;
}

/// Stateless targets are trivially buffer-reusing (at the cost of the `Vec`
/// each [`GradTarget::logp_grad`] call allocates).
impl<T: GradTarget + ?Sized> GradTargetMut for &T {
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
        let (lp, g) = self.logp_grad(q);
        grad.copy_from_slice(&g);
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quadratic;
    impl GradTarget for Quadratic {
        fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
            (-0.5 * q[0] * q[0], vec![-q[0]])
        }
    }

    #[test]
    fn closures_and_structs_both_implement_the_trait() {
        let closure = |q: &[f64]| (-0.5 * q[0] * q[0], vec![-q[0]]);
        let (lp_c, g_c) = closure.logp_grad(&[2.0]);
        let (lp_s, g_s) = Quadratic.logp_grad(&[2.0]);
        assert_eq!((lp_c, g_c), (lp_s, g_s));
    }

    #[test]
    fn grad_targets_adapt_to_the_buffered_interface() {
        let mut adapted = &Quadratic;
        let mut buf = [0.0];
        let lp = adapted.logp_grad_into(&[2.0], &mut buf);
        assert_eq!(lp, -2.0);
        assert_eq!(buf[0], -2.0);
    }
}
