//! The target-density interface shared by all gradient-based samplers.
//!
//! Two tiers:
//!
//! * [`GradTarget`] — the simple, stateless interface: `(log p, ∇ log p)` as
//!   a fresh `Vec` per call. Closures implement it via the blanket impl, so
//!   quick experiments and tests stay one-liners.
//! * [`GradTargetMut`] — the buffer-reusing interface the samplers actually
//!   drive: `logp_grad_into` writes the gradient into a caller-owned slice
//!   and may mutate internal scratch state (a `gprob::DensityWorkspace`,
//!   pooled tape leaves, ...). One target instance is one chain; multi-chain
//!   runs give each thread its own target, which is exactly the sharding
//!   model of `deepstan`'s `Session`.
//!
//! Every [`GradTarget`] is automatically a [`GradTargetMut`] (with one
//! `Vec` allocation per call), so existing closures keep working with the
//! rewritten samplers.
//!
//! A third tier, [`GradTargetBatch`], scores a *batch* of independent points
//! in one call. Lockstep multi-chain samplers and multi-draw ELBO estimators
//! hand the target all pending points at once, so lane-widened backends
//! (`gprob::dprog`'s struct-of-arrays register files) evaluate them with one
//! forward/reverse sweep per lane group instead of one interpreter walk per
//! point. The provided default simply loops [`GradTargetMut::logp_grad_into`]
//! — point `i`'s result is bitwise identical either way, which is what lets
//! the lockstep drivers promise per-chain bit-equality with the sequential
//! samplers.

/// A log-density with gradient, evaluated on the unconstrained scale.
pub trait GradTarget {
    /// Returns `(log p(q), ∇ log p(q))`.
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>);
}

impl<F: Fn(&[f64]) -> (f64, Vec<f64>)> GradTarget for F {
    fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
        self(q)
    }
}

/// A log-density with gradient that may reuse internal scratch state and
/// writes the gradient into a caller-provided buffer — the interface the
/// samplers' hot loops call.
pub trait GradTargetMut {
    /// Writes `∇ log p(q)` into `grad` (which has length `q.len()`) and
    /// returns `log p(q)`.
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64;
}

/// Stateless targets are trivially buffer-reusing (at the cost of the `Vec`
/// each [`GradTarget::logp_grad`] call allocates).
impl<T: GradTarget + ?Sized> GradTargetMut for &T {
    fn logp_grad_into(&mut self, q: &[f64], grad: &mut [f64]) -> f64 {
        let (lp, g) = self.logp_grad(q);
        grad.copy_from_slice(&g);
        lp
    }
}

/// A target that can score a batch of independent points in one call — the
/// surface lane-widened density programs plug into. Implementors override
/// [`GradTargetBatch::logp_grad_batch`] when they have a genuinely batched
/// backend; the provided default loops the single-point entry, so *any*
/// [`GradTargetMut`] can opt in with an empty `impl` block and batch-driven
/// samplers run unchanged (and bit-identically) over scalar targets.
pub trait GradTargetBatch: GradTargetMut {
    /// Scores `logps.len()` points packed row-major in `qs` (point `i` at
    /// `qs[i·dim .. (i+1)·dim]`), writing log-densities into `logps` and
    /// gradients row-major into `grads`. Point `i`'s results must be exactly
    /// what [`GradTargetMut::logp_grad_into`] would produce for that point.
    fn logp_grad_batch(&mut self, qs: &[f64], logps: &mut [f64], grads: &mut [f64]) {
        let n = logps.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(qs.len(), grads.len());
        let dim = qs.len() / n;
        for (i, lp) in logps.iter_mut().enumerate() {
            *lp = self.logp_grad_into(
                &qs[i * dim..(i + 1) * dim],
                &mut grads[i * dim..(i + 1) * dim],
            );
        }
    }
}

/// Stateless targets batch by looping, like their `GradTargetMut` adapter.
impl<T: GradTarget + ?Sized> GradTargetBatch for &T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quadratic;
    impl GradTarget for Quadratic {
        fn logp_grad(&self, q: &[f64]) -> (f64, Vec<f64>) {
            (-0.5 * q[0] * q[0], vec![-q[0]])
        }
    }

    #[test]
    fn closures_and_structs_both_implement_the_trait() {
        let closure = |q: &[f64]| (-0.5 * q[0] * q[0], vec![-q[0]]);
        let (lp_c, g_c) = closure.logp_grad(&[2.0]);
        let (lp_s, g_s) = Quadratic.logp_grad(&[2.0]);
        assert_eq!((lp_c, g_c), (lp_s, g_s));
    }

    #[test]
    fn grad_targets_adapt_to_the_buffered_interface() {
        let mut adapted = &Quadratic;
        let mut buf = [0.0];
        let lp = adapted.logp_grad_into(&[2.0], &mut buf);
        assert_eq!(lp, -2.0);
        assert_eq!(buf[0], -2.0);
    }
}
