//! Posterior summaries and convergence diagnostics.
//!
//! Implements the quantities the paper's evaluation relies on: per-parameter
//! posterior means and standard deviations, the PosteriorDB-style accuracy
//! criterion `|mean(θ) − mean(θ_ref)| < 0.3 · stddev(θ_ref)` (Section 6.1,
//! RQ2), split-R̂ and a simple autocorrelation-based effective sample size.

/// Summary statistics for one scalar parameter component.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation (sample, `n-1` denominator).
    pub stddev: f64,
}

/// Per-component posterior summaries of a set of draws (each draw is one
/// vector of components).
pub fn summarize(draws: &[Vec<f64>]) -> Vec<Summary> {
    if draws.is_empty() {
        return Vec::new();
    }
    let dim = draws[0].len();
    let n = draws.len() as f64;
    (0..dim)
        .map(|i| {
            let mean = draws.iter().map(|d| d[i]).sum::<f64>() / n;
            let var = if draws.len() > 1 {
                draws.iter().map(|d| (d[i] - mean).powi(2)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            Summary {
                mean,
                stddev: var.sqrt(),
            }
        })
        .collect()
}

/// The paper's accuracy criterion for one component: the error between the
/// posterior mean and the reference mean must be below 30% of the reference
/// standard deviation.
pub fn accuracy_pass(mean: f64, ref_mean: f64, ref_stddev: f64) -> bool {
    (mean - ref_mean).abs() < 0.3 * ref_stddev.max(1e-12)
}

/// Mean relative error `|mean − ref_mean| / ref_stddev` over components, the
/// quantity reported in the appendix tables.
pub fn mean_relative_error(means: &[f64], ref_means: &[f64], ref_stddevs: &[f64]) -> f64 {
    assert_eq!(means.len(), ref_means.len());
    let mut total = 0.0;
    for i in 0..means.len() {
        total += (means[i] - ref_means[i]).abs() / ref_stddevs[i].max(1e-12);
    }
    total / means.len().max(1) as f64
}

/// Split-R̂ for one component of a single chain: the chain is split in half
/// and the classic potential-scale-reduction statistic is computed over the
/// two halves. Delegates to [`multi_split_rhat`].
pub fn split_rhat(chain: &[f64]) -> f64 {
    multi_split_rhat(&[chain])
}

/// Cross-chain split-R̂ (Gelman et al.): every chain is split in half and
/// the potential-scale-reduction statistic is computed over all `2m`
/// half-sequences, so both between-chain disagreement and within-chain
/// drift inflate the statistic. Chains are truncated to the shortest
/// half-length. This is the convergence diagnostic `deepstan`'s multi-chain
/// `Fit` reports.
pub fn multi_split_rhat(chains: &[&[f64]]) -> f64 {
    let n = chains.iter().map(|c| c.len() / 2).min().unwrap_or(0);
    if n < 2 {
        return f64::NAN;
    }
    let mut halves: Vec<&[f64]> = Vec::with_capacity(2 * chains.len());
    for c in chains {
        halves.push(&c[..n]);
        halves.push(&c[n..2 * n]);
    }
    let m = halves.len() as f64;
    let means: Vec<f64> = halves
        .iter()
        .map(|h| h.iter().sum::<f64>() / n as f64)
        .collect();
    let vars: Vec<f64> = halves
        .iter()
        .zip(&means)
        .map(|(h, mu)| h.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n as f64 - 1.0))
        .collect();
    let mean_all = means.iter().sum::<f64>() / m;
    let b = n as f64 * means.iter().map(|mu| (mu - mean_all).powi(2)).sum::<f64>() / (m - 1.0);
    let w = vars.iter().sum::<f64>() / m;
    if w <= 0.0 {
        // Zero within-half variance: either every half is constant at the
        // same value (converged trivially) or the halves disagree (not
        // converged).
        return if b > 0.0 { f64::INFINITY } else { 1.0 };
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    (var_plus / w).sqrt()
}

/// Effective sample size pooled over chains: the per-chain
/// autocorrelation-based estimate, summed (independent chains contribute
/// independent information).
pub fn multi_ess(chains: &[&[f64]]) -> f64 {
    chains.iter().map(|c| ess(c)).sum()
}

/// Rank-normalizes draws pooled across chains (Vehtari et al. 2021, "Rank-
/// normalization, folding, and localization"): each draw is replaced by
/// `Φ⁻¹((r − 3/8) / (S + 1/4))` where `r` is its average rank among all `S`
/// pooled draws (ties share their average rank). The transform makes the
/// classic diagnostics robust to heavy tails and non-normal marginals.
pub fn rank_normalize(chains: &[&[f64]]) -> Vec<Vec<f64>> {
    let total: usize = chains.iter().map(|c| c.len()).sum();
    // Sort (value, chain, position) triples to assign pooled ranks.
    let mut order: Vec<(f64, usize, usize)> = Vec::with_capacity(total);
    for (ci, c) in chains.iter().enumerate() {
        for (ti, &x) in c.iter().enumerate() {
            order.push((x, ci, ti));
        }
    }
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<Vec<f64>> = chains.iter().map(|c| vec![0.0; c.len()]).collect();
    let s = total as f64;
    let mut i = 0;
    while i < order.len() {
        // Average rank over the tie run [i, j).
        let mut j = i + 1;
        while j < order.len() && order[j].0 == order[i].0 {
            j += 1;
        }
        // 1-based ranks i+1 ..= j averaged.
        let rank = (i + 1 + j) as f64 / 2.0;
        let z = minidiff::special::inv_std_normal_cdf((rank - 0.375) / (s + 0.25));
        for &(_, ci, ti) in &order[i..j] {
            out[ci][ti] = z;
        }
        i = j;
    }
    out
}

/// Rank-normalized split-R̂ (Vehtari et al. 2021): the maximum of the
/// classic split-R̂ computed on rank-normalized draws (bulk) and on
/// rank-normalized *folded* draws `|x − median|` (tails). Reported next to
/// the classic statistic on `Fit`; the recommended convergence threshold is
/// 1.01.
pub fn rank_normalized_split_rhat(chains: &[&[f64]]) -> f64 {
    let bulk = {
        let z = rank_normalize(chains);
        let views: Vec<&[f64]> = z.iter().map(|c| c.as_slice()).collect();
        multi_split_rhat(&views)
    };
    let folded = {
        let med = pooled_quantile(chains, 0.5);
        let folded: Vec<Vec<f64>> = chains
            .iter()
            .map(|c| c.iter().map(|x| (x - med).abs()).collect())
            .collect();
        let fviews: Vec<&[f64]> = folded.iter().map(|c| c.as_slice()).collect();
        let z = rank_normalize(&fviews);
        let views: Vec<&[f64]> = z.iter().map(|c| c.as_slice()).collect();
        multi_split_rhat(&views)
    };
    bulk.max(folded)
}

/// Tail effective sample size (Vehtari et al. 2021): the minimum of the
/// effective sample sizes of the 5% and 95% quantile estimates, each
/// computed from the indicator chains `I(x ≤ q̂)`. Low tail-ESS flags
/// unreliable credible-interval endpoints even when the bulk mixes well.
pub fn tail_ess(chains: &[&[f64]]) -> f64 {
    // Degenerate draws (a stuck sampler, or all chains frozen at one value)
    // carry no tail information at all: report NaN rather than letting the
    // constant indicator chains hit `ess`'s var<=0 branch and certify the
    // most pathological run as maximally healthy.
    let lo = pooled_quantile(chains, 0.0);
    let hi = pooled_quantile(chains, 1.0);
    if lo >= hi || lo.is_nan() || hi.is_nan() {
        return f64::NAN;
    }
    let mut worst = f64::INFINITY;
    for q in [0.05, 0.95] {
        let cut = pooled_quantile(chains, q);
        let indicators: Vec<Vec<f64>> = chains
            .iter()
            .map(|c| c.iter().map(|&x| f64::from(x <= cut)).collect())
            .collect();
        let views: Vec<&[f64]> = indicators.iter().map(|c| c.as_slice()).collect();
        worst = worst.min(multi_ess(&views));
    }
    worst
}

/// Empirical quantile of the pooled draws (linear interpolation).
fn pooled_quantile(chains: &[&[f64]], q: f64) -> f64 {
    let mut pooled: Vec<f64> = chains.iter().flat_map(|c| c.iter().copied()).collect();
    if pooled.is_empty() {
        return f64::NAN;
    }
    pooled.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (pooled.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    let frac = pos - lo as f64;
    pooled[lo] * (1.0 - frac) + pooled[hi] * frac
}

/// Effective sample size from the initial-monotone-sequence estimator over
/// lag-autocorrelations (a simplified version of Stan's ESS).
pub fn ess(chain: &[f64]) -> f64 {
    let n = chain.len();
    if n < 4 {
        return n as f64;
    }
    let mean = chain.iter().sum::<f64>() / n as f64;
    let var = chain.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return n as f64;
    }
    let mut rho_sum = 0.0;
    let mut lag = 1;
    while lag < n - 2 {
        let rho = |l: usize| -> f64 {
            let mut c = 0.0;
            for t in 0..n - l {
                c += (chain[t] - mean) * (chain[t + l] - mean);
            }
            c / (n as f64 * var)
        };
        let pair = rho(lag) + rho(lag + 1);
        if pair < 0.0 {
            break;
        }
        rho_sum += pair;
        lag += 2;
    }
    (n as f64 / (1.0 + 2.0 * rho_sum)).clamp(1.0, n as f64)
}

/// Builds a histogram of a sample over `bins` equal-width bins spanning
/// `[lo, hi]` — used to regenerate the Figure 10 posterior histograms.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        if v < lo || v >= hi {
            continue;
        }
        let b = ((v - lo) / width) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_match_hand_computation() {
        let draws = vec![vec![1.0, 10.0], vec![2.0, 10.0], vec![3.0, 10.0]];
        let s = summarize(&draws);
        assert!((s[0].mean - 2.0).abs() < 1e-12);
        assert!((s[0].stddev - 1.0).abs() < 1e-12);
        assert_eq!(s[1].stddev, 0.0);
        assert!(summarize(&[]).is_empty());
    }

    #[test]
    fn accuracy_criterion_matches_the_paper() {
        // |mean - ref| < 0.3 * sd_ref
        assert!(accuracy_pass(1.02, 1.0, 0.1));
        assert!(!accuracy_pass(1.05, 1.0, 0.1));
        assert!(accuracy_pass(0.0, 0.0, 0.0) || !accuracy_pass(0.1, 0.0, 0.0));
    }

    #[test]
    fn relative_error_averages_components() {
        let err = mean_relative_error(&[1.1, 2.0], &[1.0, 2.0], &[1.0, 1.0]);
        assert!((err - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rhat_is_near_one_for_iid_and_large_for_split_means() {
        let iid: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        assert!((split_rhat(&iid) - 1.0).abs() < 0.1);
        let drift: Vec<f64> = (0..1000).map(|i| if i < 500 { 0.0 } else { 5.0 }).collect();
        assert!(split_rhat(&drift) > 2.0);
    }

    #[test]
    fn multi_chain_rhat_detects_chain_disagreement() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 53) % 97) as f64 / 97.0).collect();
        // Two chains exploring the same distribution: near 1.
        let same = multi_split_rhat(&[&a, &b]);
        assert!((same - 1.0).abs() < 0.1, "{same}");
        // A chain stuck in a different mode blows the statistic up.
        let stuck: Vec<f64> = (0..500)
            .map(|i| 10.0 + ((i * 37) % 101) as f64 / 101.0)
            .collect();
        let far = multi_split_rhat(&[&a, &stuck]);
        assert!(far > 3.0, "{far}");
        // Degenerate inputs stay defined.
        assert!(multi_split_rhat(&[]).is_nan());
        assert!(multi_split_rhat(&[&[1.0, 2.0][..]]).is_nan());
    }

    #[test]
    fn rank_normalization_is_monotone_and_standardized() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 53) % 97) as f64).collect();
        let z = rank_normalize(&[&a, &b]);
        assert_eq!(z.len(), 2);
        assert_eq!(z[0].len(), 500);
        // Order preserved within a chain.
        for i in 1..500 {
            assert_eq!(a[i] > a[i - 1], z[0][i] > z[0][i - 1] || a[i] == a[i - 1]);
        }
        // Pooled transform is roughly standard normal.
        let pooled: Vec<f64> = z.iter().flatten().copied().collect();
        let mean = pooled.iter().sum::<f64>() / pooled.len() as f64;
        let var = pooled.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / pooled.len() as f64;
        assert!(mean.abs() < 1e-3, "{mean}");
        assert!((var - 1.0).abs() < 0.05, "{var}");
        // Ties share a rank: identical inputs map to identical z-scores.
        let t = [1.0, 2.0, 2.0, 3.0];
        let zt = rank_normalize(&[&t]);
        assert_eq!(zt[0][1], zt[0][2]);
    }

    #[test]
    fn rank_normalized_rhat_detects_disagreement_and_survives_heavy_tails() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 53) % 97) as f64 / 97.0).collect();
        let same = rank_normalized_split_rhat(&[&a, &b]);
        assert!((same - 1.0).abs() < 0.1, "{same}");
        // Disjoint chains: the rank transform caps how far apart they can
        // look (all mass in opposite tails), but the statistic is still far
        // above the 1.01 convergence threshold.
        let stuck: Vec<f64> = a.iter().map(|x| x + 10.0).collect();
        assert!(rank_normalized_split_rhat(&[&a, &stuck]) > 1.5);
        // A Cauchy-tailed transform keeps the statistic finite and near 1
        // for well-mixed chains (the rank transform absorbs the tails).
        let heavy_a: Vec<f64> = a
            .iter()
            .map(|u| ((u - 0.5) * std::f64::consts::PI * 0.98).tan())
            .collect();
        let heavy_b: Vec<f64> = b
            .iter()
            .map(|u| ((u - 0.5) * std::f64::consts::PI * 0.98).tan())
            .collect();
        let r = rank_normalized_split_rhat(&[&heavy_a, &heavy_b]);
        assert!(r.is_finite() && (r - 1.0).abs() < 0.15, "{r}");
    }

    #[test]
    fn tail_ess_flags_sticky_tails() {
        let iid: Vec<f64> = (0..2000)
            .map(|i| (((i * 2654435761_u64) % 1000) as f64) / 1000.0)
            .collect();
        let healthy = tail_ess(&[&iid]);
        assert!(healthy > 500.0, "{healthy}");
        // A chain that visits its lower tail in one long excursion (150
        // consecutive draws pinned at the minimum) has a strongly
        // autocorrelated tail indicator and a much lower tail-ESS, even
        // though the bulk is the same iid stream.
        let sticky: Vec<f64> = (0..2000)
            .map(|i| {
                if i < 150 {
                    0.0
                } else {
                    0.1 + 0.9 * (((i * 2654435761_u64) % 1000) as f64) / 1000.0
                }
            })
            .collect();
        assert!(tail_ess(&[&sticky]) < healthy / 2.0);
        // A fully stuck sampler (constant draws) has no tail information:
        // NaN, not a glowing full-length ESS.
        let stuck = vec![1.5; 400];
        assert!(tail_ess(&[&stuck, &stuck]).is_nan());
        assert!(tail_ess(&[]).is_nan());
    }

    #[test]
    fn multi_chain_ess_pools_independent_chains() {
        let a: Vec<f64> = (0..1000)
            .map(|i| (((i * 2654435761_u64) % 1000) as f64) / 1000.0)
            .collect();
        let pooled = multi_ess(&[&a, &a, &a, &a]);
        assert!((pooled - 4.0 * ess(&a)).abs() < 1e-9);
    }

    #[test]
    fn ess_detects_autocorrelation() {
        let iid: Vec<f64> = (0..2000)
            .map(|i| (((i * 2654435761_u64) % 1000) as f64) / 1000.0)
            .collect();
        let ess_iid = ess(&iid);
        assert!(ess_iid > 500.0, "{ess_iid}");
        // A slowly-moving chain has far fewer effective samples.
        let mut correlated = Vec::with_capacity(2000);
        let mut x = 0.0;
        for i in 0..2000 {
            x = 0.99 * x + 0.01 * ((i % 7) as f64);
            correlated.push(x);
        }
        assert!(ess(&correlated) < ess_iid / 2.0);
    }

    #[test]
    fn histogram_counts_sum_to_in_range_points() {
        let values = vec![-1.0, 0.1, 0.2, 0.9, 3.0];
        let h = histogram(&values, 0.0, 1.0, 10);
        assert_eq!(h.iter().sum::<usize>(), 3);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[9], 1);
    }
}
