//! `inference` — posterior inference algorithms and diagnostics.
//!
//! This crate supplies the inference machinery that the paper gets from the
//! Stan, Pyro and NumPyro runtimes:
//!
//! * [`nuts`] — the No-U-Turn Sampler (multinomial variant with dual-averaging
//!   step-size adaptation and diagonal mass-matrix estimation), Stan's and
//!   Pyro's preferred inference method and the one used for every accuracy /
//!   speed comparison in the paper's evaluation.
//! * [`hmc`] — plain fixed-length Hamiltonian Monte Carlo, kept as a simpler
//!   baseline and for tests.
//! * [`advi`] — automatic differentiation variational inference with a
//!   mean-field Gaussian family (the `Stan ADVI` baseline of Figure 10).
//! * [`svi`] — stochastic variational inference utilities (the Adam optimizer
//!   and optimization loop) used with explicit DeepStan guides.
//! * [`importance`] — likelihood-weighting importance sampling.
//! * [`diagnostics`] — posterior summaries, split-R̂, effective sample size,
//!   and the paper's accuracy criterion
//!   `|mean(θ) − mean(θ_ref)| < 0.3 · stddev(θ_ref)`.
//! * [`predictive`] — the chain-sharded streaming driver behind
//!   `Fit`-level generated-quantities / posterior-predictive evaluation,
//!   with deterministic per-(chain, draw) RNG streams.
//! * [`loo`] — model criticism over pointwise log-likelihood matrices:
//!   PSIS-LOO with Pareto-`k̂` diagnostics, WAIC, and `loo_compare`.
//! * [`cancel`] — the cooperative [`CancelToken`] every outer loop polls
//!   per draw / per step, so callers can bound wall-clock time (serve-tier
//!   deadlines) without perturbing the bitwise draw prefix.
//!
//! All samplers are generic over the target. The hot loops drive the
//! buffer-reusing [`target::GradTargetMut`] interface (`logp_grad_into`
//! writes the gradient into a caller-owned slice, so workspace-backed models
//! evaluate without per-step allocation); plain closures returning
//! `(log p, ∇ log p)` still work everywhere through [`target::GradTarget`]
//! and its adapter. One target instance is one chain — multi-chain runs
//! (e.g. `deepstan`'s `Session`) give each thread its own target. Cross-chain
//! convergence is assessed with [`diagnostics::multi_split_rhat`] /
//! [`diagnostics::multi_ess`].
//!
//! Because every sampler goes through `GradTargetMut`, NUTS, HMC and ADVI
//! all pick up the tape-free density programs (`gprob::dprog`) transparently:
//! a `gprob`-backed target routes `logp_grad_into` to the compiled register
//! program when the model's density lowered at bind time, and to the
//! recorded-tape interpreter when it declined. Nothing in this crate needs
//! to know which backend ran.
//!
//! Multi-point work additionally flows through [`target::GradTargetBatch`]:
//! [`nuts::nuts_sample_lockstep`] and [`hmc::hmc_sample_lockstep`] advance
//! all chains together and batch their pending leapfrog evaluations into one
//! call per round, and [`advi::advi_fit_batch`] scores each step's
//! Monte-Carlo guide draws in one pass — which is how lane-widened
//! struct-of-arrays density programs evaluate several chains per sweep. All
//! three are bitwise identical per chain/fit to their sequential
//! counterparts.
//!
//! # Example
//!
//! ```
//! use inference::nuts::{nuts_sample, NutsConfig};
//! // Standard normal target.
//! let target = |theta: &[f64]| (-0.5 * theta[0] * theta[0], vec![-theta[0]]);
//! let cfg = NutsConfig { warmup: 200, samples: 400, seed: 7, ..Default::default() };
//! let result = nuts_sample(&target, vec![0.5], &cfg);
//! let mean: f64 = result.draws.iter().map(|d| d[0]).sum::<f64>() / result.draws.len() as f64;
//! assert!(mean.abs() < 0.3);
//! ```

pub mod advi;
pub mod cancel;
pub mod diagnostics;
pub mod hmc;
pub mod importance;
pub mod loo;
pub mod nuts;
pub mod predictive;
pub mod svi;
pub mod target;

pub use advi::{advi_fit, advi_fit_batch, advi_fit_mut, AdviConfig, AdviResult};
pub use cancel::CancelToken;
pub use diagnostics::{
    accuracy_pass, ess, multi_ess, multi_split_rhat, split_rhat, summarize, Summary,
};
pub use hmc::{hmc_sample, hmc_sample_lockstep, hmc_sample_mut, HmcConfig, HmcResult};
pub use loo::{loo_compare, psis_loo, waic, CompareRow, ElpdEstimate};
pub use nuts::{nuts_sample, nuts_sample_lockstep, nuts_sample_mut, NutsConfig, NutsResult};
pub use predictive::{draw_seed, stream_chains, GqTable, StreamError};
pub use svi::{
    svi_optimize, svi_optimize_draws, svi_optimize_draws_cancellable, Adam, AdamConfig, SviResult,
};
pub use target::{GradTarget, GradTargetBatch, GradTargetMut};
