//! Stochastic variational inference utilities: the Adam optimizer and a
//! generic optimization loop over noisy ELBO gradients.
//!
//! The ELBO itself is assembled by the caller (the `deepstan` crate pairs a
//! compiled model with a compiled guide and differentiates through the
//! reparameterized guide samples); this module only provides the stochastic
//! optimization machinery, mirroring how Pyro's `SVI` object wraps an
//! arbitrary `model`/`guide` pair and an optimizer.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cancel::CancelToken;

/// Adam hyper-parameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// The Adam optimizer state for a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    /// Creates an optimizer for `dim` parameters.
    pub fn new(dim: usize, config: AdamConfig) -> Self {
        Adam {
            config,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Applies one ascent step in place (gradients are of an objective to
    /// *maximize*, e.g. the ELBO).
    pub fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len());
        self.t += 1;
        let c = &self.config;
        let t = self.t as f64;
        for i in 0..params.len() {
            let g = if grad[i].is_finite() { grad[i] } else { 0.0 };
            self.m[i] = c.beta1 * self.m[i] + (1.0 - c.beta1) * g;
            self.v[i] = c.beta2 * self.v[i] + (1.0 - c.beta2) * g * g;
            let m_hat = self.m[i] / (1.0 - c.beta1.powf(t));
            let v_hat = self.v[i] / (1.0 - c.beta2.powf(t));
            params[i] += c.lr * m_hat / (v_hat.sqrt() + c.eps);
        }
    }
}

/// The result of an SVI optimization run.
#[derive(Debug, Clone)]
pub struct SviResult {
    /// Optimized variational parameters.
    pub params: Vec<f64>,
    /// ELBO trace (one smoothed value per reporting interval).
    pub elbo_trace: Vec<f64>,
    /// True when the optimization stopped early because the caller's
    /// cancel token fired (see [`svi_optimize_draws_cancellable`]);
    /// `params` then holds the values as of the last completed step.
    pub cancelled: bool,
}

/// Maximizes a stochastic objective (the ELBO) with Adam.
///
/// `objective_grad` receives the current parameters and an RNG (for drawing
/// the Monte-Carlo noise of the reparameterized ELBO estimate) and returns
/// `(elbo_estimate, gradient)`.
pub fn svi_optimize<F: FnMut(&[f64], &mut StdRng) -> (f64, Vec<f64>)>(
    objective_grad: &mut F,
    init: Vec<f64>,
    steps: usize,
    config: AdamConfig,
    seed: u64,
) -> SviResult {
    let mut multi = |params: &[f64], _draws: usize, rng: &mut StdRng| objective_grad(params, rng);
    svi_optimize_draws_cancellable(
        &mut multi,
        init,
        steps,
        1,
        config,
        seed,
        &CancelToken::new(),
    )
}

/// [`svi_optimize`] with a multi-draw objective: `objective_grad` receives
/// the number of Monte-Carlo draws to average per step, letting a batched
/// backend (e.g. a lane-widened density program behind
/// [`crate::GradTargetBatch`]) score all `draws` guide samples in one sweep.
/// Gradients returned by the objective are already averaged over its draws.
///
/// With `draws == 1` and an objective that ignores the count, this is
/// exactly [`svi_optimize`]: the step loop, Adam state, and reporting
/// cadence are identical.
pub fn svi_optimize_draws<F: FnMut(&[f64], usize, &mut StdRng) -> (f64, Vec<f64>)>(
    objective_grad: &mut F,
    init: Vec<f64>,
    steps: usize,
    draws: usize,
    config: AdamConfig,
    seed: u64,
) -> SviResult {
    svi_optimize_draws_cancellable(
        objective_grad,
        init,
        steps,
        draws,
        config,
        seed,
        &CancelToken::new(),
    )
}

/// [`svi_optimize_draws`] with cooperative cancellation: `cancel` is
/// polled once per optimization step (never inside the objective), and a
/// fired token stops the loop with the parameters from the last completed
/// step and `cancelled: true`. With a never-firing token the run is
/// bitwise identical to [`svi_optimize_draws`].
#[allow(clippy::too_many_arguments)]
pub fn svi_optimize_draws_cancellable<F: FnMut(&[f64], usize, &mut StdRng) -> (f64, Vec<f64>)>(
    objective_grad: &mut F,
    init: Vec<f64>,
    steps: usize,
    draws: usize,
    config: AdamConfig,
    seed: u64,
    cancel: &CancelToken,
) -> SviResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = init;
    let mut adam = Adam::new(params.len(), config);
    let mut elbo_trace = Vec::new();
    let mut running = 0.0;
    let report_every = (steps / 50).max(1);
    let mut step_timer = obs::StepTimer::new("svi.step");
    let mut cancelled = false;
    for step in 0..steps {
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        step_timer.begin();
        let (elbo, grad) = objective_grad(&params, draws, &mut rng);
        adam.step(&mut params, &grad);
        running += elbo;
        step_timer.end();
        if (step + 1) % report_every == 0 {
            elbo_trace.push(running / report_every as f64);
            running = 0.0;
        }
    }
    SviResult {
        params,
        elbo_trace,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn adam_maximizes_a_quadratic() {
        // Maximize -(x-3)^2 - (y+1)^2.
        let mut params = vec![0.0, 0.0];
        let mut adam = Adam::new(
            2,
            AdamConfig {
                lr: 0.05,
                ..Default::default()
            },
        );
        for _ in 0..2000 {
            let grad = vec![-2.0 * (params[0] - 3.0), -2.0 * (params[1] + 1.0)];
            adam.step(&mut params, &grad);
        }
        assert!((params[0] - 3.0).abs() < 1e-3);
        assert!((params[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn adam_ignores_non_finite_gradients() {
        let mut params = vec![1.0];
        let mut adam = Adam::new(1, AdamConfig::default());
        adam.step(&mut params, &[f64::NAN]);
        assert!(params[0].is_finite());
    }

    #[test]
    fn single_draw_multi_draw_loop_matches_the_plain_loop_bitwise() {
        let make_objective = || {
            |params: &[f64], rng: &mut StdRng| -> (f64, Vec<f64>) {
                let noise: f64 = rng.gen::<f64>() - 0.5;
                let g = -2.0 * (params[0] - 3.0) + noise;
                (-(params[0] - 3.0).powi(2), vec![g])
            }
        };
        let mut plain = make_objective();
        let want = svi_optimize(&mut plain, vec![0.0], 300, AdamConfig::default(), 17);
        let inner = make_objective();
        let mut multi = |params: &[f64], draws: usize, rng: &mut StdRng| -> (f64, Vec<f64>) {
            assert_eq!(draws, 1);
            inner(params, rng)
        };
        let got = svi_optimize_draws(&mut multi, vec![0.0], 300, 1, AdamConfig::default(), 17);
        assert_eq!(want.params, got.params);
        assert_eq!(want.elbo_trace, got.elbo_trace);
    }

    #[test]
    fn svi_optimize_fits_a_gaussian_mean_field() {
        // Target: theta ~ N(2, 0.5^2). Variational family: N(mu, exp(omega)).
        // The reparameterized ELBO gradient has a closed form here; we just
        // give noisy gradients and check convergence of mu.
        let mut objective = |params: &[f64], rng: &mut StdRng| -> (f64, Vec<f64>) {
            let (mu, omega) = (params[0], params[1]);
            let sigma_q = omega.exp();
            let eps: f64 = {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let z = mu + sigma_q * eps;
            // log p(z) for N(2, 0.5), entropy of q added analytically.
            let sd = 0.5;
            let logp = -0.5 * ((z - 2.0) / sd).powi(2);
            let dlogp_dz = -(z - 2.0) / (sd * sd);
            let elbo = logp + omega; // + const entropy
            let grad = vec![dlogp_dz, dlogp_dz * sigma_q * eps + 1.0];
            (elbo, grad)
        };
        let result = svi_optimize(
            &mut objective,
            vec![0.0, 0.0],
            4000,
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
            1,
        );
        assert!(
            (result.params[0] - 2.0).abs() < 0.15,
            "mu {}",
            result.params[0]
        );
        assert!(
            (result.params[1].exp() - 0.5).abs() < 0.2,
            "sigma {}",
            result.params[1].exp()
        );
        assert!(!result.elbo_trace.is_empty());
        // The ELBO should improve over the run.
        let first = result.elbo_trace.first().unwrap();
        let last = result.elbo_trace.last().unwrap();
        assert!(last > first);
    }
}
