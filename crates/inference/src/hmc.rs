//! Plain Hamiltonian Monte Carlo with a fixed number of leapfrog steps.
//!
//! Kept as a simpler, easier-to-reason-about baseline next to
//! [`crate::nuts`]; also used by tests to cross-check posterior summaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::target::{GradTarget, GradTargetBatch, GradTargetMut};

/// Configuration for static HMC.
#[derive(Debug, Clone)]
pub struct HmcConfig {
    /// Warmup iterations (step size is tuned by a simple acceptance-rate
    /// heuristic during warmup).
    pub warmup: usize,
    /// Number of kept draws.
    pub samples: usize,
    /// Number of leapfrog steps per proposal.
    pub leapfrog_steps: usize,
    /// Initial step size.
    pub step_size: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HmcConfig {
    fn default() -> Self {
        HmcConfig {
            warmup: 500,
            samples: 500,
            leapfrog_steps: 20,
            step_size: 0.1,
            seed: 0,
        }
    }
}

/// The output of an HMC run.
#[derive(Debug, Clone)]
pub struct HmcResult {
    /// Post-warmup draws.
    pub draws: Vec<Vec<f64>>,
    /// Acceptance rate after warmup.
    pub accept_rate: f64,
    /// Final step size.
    pub step_size: f64,
}

/// Runs static HMC on a `(log p, ∇ log p)` target. Stateful targets should
/// use [`hmc_sample_mut`], which this function delegates to.
pub fn hmc_sample<T: GradTarget + ?Sized>(
    target: &T,
    init: Vec<f64>,
    config: &HmcConfig,
) -> HmcResult {
    let mut adapter = target;
    hmc_sample_mut(&mut adapter, init, config)
}

/// [`hmc_sample`] over the buffer-reusing [`GradTargetMut`] interface.
pub fn hmc_sample_mut<T: GradTargetMut + ?Sized>(
    target: &mut T,
    init: Vec<f64>,
    config: &HmcConfig,
) -> HmcResult {
    let dim = init.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut q = init;
    let mut grad = vec![0.0; dim];
    let mut logp = target.logp_grad_into(&q, &mut grad);
    if logp.is_nan() {
        logp = f64::NEG_INFINITY;
        grad.fill(0.0);
    }
    let mut step = config.step_size;
    let mut draws = Vec::with_capacity(config.samples);
    let mut accepted_post = 0usize;

    for iter in 0..(config.warmup + config.samples) {
        let p0: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let mut p = p0.clone();
        let mut q_new = q.clone();
        let mut grad_new = grad.clone();
        let mut logp_new = logp;

        // Leapfrog integration.
        for i in 0..dim {
            p[i] += 0.5 * step * grad_new[i];
        }
        for l in 0..config.leapfrog_steps {
            for i in 0..dim {
                q_new[i] += step * p[i];
            }
            let lp = target.logp_grad_into(&q_new, &mut grad_new);
            logp_new = if lp.is_nan() { f64::NEG_INFINITY } else { lp };
            let last = l + 1 == config.leapfrog_steps;
            let factor = if last { 0.5 } else { 1.0 };
            for i in 0..dim {
                p[i] += factor * step * grad_new[i];
            }
        }

        let h0 = logp - 0.5 * p0.iter().map(|x| x * x).sum::<f64>();
        let h1 = logp_new - 0.5 * p.iter().map(|x| x * x).sum::<f64>();
        let accept_prob = (h1 - h0).exp().min(1.0);
        let accept = accept_prob.is_finite() && rng.gen::<f64>() < accept_prob;
        if accept {
            q = q_new;
            logp = logp_new;
            grad = grad_new;
        }

        if iter < config.warmup {
            // Simple Robbins-Monro step-size tuning toward 65% acceptance.
            let target_accept = 0.65;
            let adapt = 1.0 + 0.05 * (accept_prob - target_accept);
            step = (step * adapt).clamp(1e-6, 5.0);
        } else {
            if accept {
                accepted_post += 1;
            }
            draws.push(q.clone());
        }
    }

    HmcResult {
        draws,
        accept_rate: accepted_post as f64 / config.samples.max(1) as f64,
        step_size: step,
    }
}

/// Runs `inits.len()` static-HMC chains in lockstep over one shared
/// [`GradTargetBatch`]: static HMC's evaluation schedule is the same for
/// every chain (one initial evaluation, then `leapfrog_steps` per
/// iteration), so each leapfrog step batches all chains' positions into a
/// single [`GradTargetBatch::logp_grad_batch`] call — one lane-widened sweep
/// per step for `gprob::dprog` targets.
///
/// Chains must agree on `warmup + samples` and `leapfrog_steps` (the
/// schedule), but may differ in seed, initial step size, or warmup split.
/// Each chain consumes its private RNG exactly as [`hmc_sample_mut`] would,
/// so per-chain results are bitwise identical to sequential runs.
///
/// Panics when `inits` and `configs` differ in length, initial points differ
/// in dimension, or the chains' evaluation schedules disagree.
pub fn hmc_sample_lockstep<T: GradTargetBatch + ?Sized>(
    target: &mut T,
    inits: Vec<Vec<f64>>,
    configs: &[HmcConfig],
) -> Vec<HmcResult> {
    assert_eq!(
        inits.len(),
        configs.len(),
        "one HmcConfig per initial point"
    );
    let n = inits.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = inits[0].len();
    assert!(
        inits.iter().all(|q| q.len() == dim),
        "all chains must share one dimension"
    );
    let total = configs[0].warmup + configs[0].samples;
    let leapfrog_steps = configs[0].leapfrog_steps;
    assert!(
        configs
            .iter()
            .all(|c| c.warmup + c.samples == total && c.leapfrog_steps == leapfrog_steps),
        "lockstep HMC requires equal iteration and leapfrog counts across chains"
    );

    let mut rngs: Vec<StdRng> = configs
        .iter()
        .map(|c| StdRng::seed_from_u64(c.seed))
        .collect();
    let mut batch_q: Vec<f64> = inits.concat();
    let mut batch_logp = vec![0.0; n];
    let mut batch_grad = vec![0.0; n * dim];
    target.logp_grad_batch(&batch_q, &mut batch_logp, &mut batch_grad);

    let mut q = inits;
    let mut grad: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut logp = vec![0.0; n];
    for c in 0..n {
        if batch_logp[c].is_nan() {
            logp[c] = f64::NEG_INFINITY;
            grad.push(vec![0.0; dim]);
        } else {
            logp[c] = batch_logp[c];
            grad.push(batch_grad[c * dim..(c + 1) * dim].to_vec());
        }
    }

    let mut step: Vec<f64> = configs.iter().map(|c| c.step_size).collect();
    let mut draws: Vec<Vec<Vec<f64>>> = configs
        .iter()
        .map(|c| Vec::with_capacity(c.samples))
        .collect();
    let mut accepted_post = vec![0usize; n];

    let mut p0: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
    let mut p: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
    let mut q_new: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
    let mut grad_new: Vec<Vec<f64>> = vec![vec![0.0; dim]; n];
    let mut logp_new = vec![0.0; n];

    for iter in 0..total {
        for c in 0..n {
            for v in p0[c].iter_mut() {
                *v = standard_normal(&mut rngs[c]);
            }
            p[c].copy_from_slice(&p0[c]);
            q_new[c].copy_from_slice(&q[c]);
            grad_new[c].copy_from_slice(&grad[c]);
            logp_new[c] = logp[c];
            for i in 0..dim {
                p[c][i] += 0.5 * step[c] * grad_new[c][i];
            }
        }

        for l in 0..leapfrog_steps {
            batch_q.clear();
            for c in 0..n {
                for i in 0..dim {
                    q_new[c][i] += step[c] * p[c][i];
                }
                batch_q.extend_from_slice(&q_new[c]);
            }
            target.logp_grad_batch(&batch_q, &mut batch_logp, &mut batch_grad);
            let last = l + 1 == leapfrog_steps;
            let factor = if last { 0.5 } else { 1.0 };
            for c in 0..n {
                grad_new[c].copy_from_slice(&batch_grad[c * dim..(c + 1) * dim]);
                logp_new[c] = if batch_logp[c].is_nan() {
                    f64::NEG_INFINITY
                } else {
                    batch_logp[c]
                };
                for i in 0..dim {
                    p[c][i] += factor * step[c] * grad_new[c][i];
                }
            }
        }

        for c in 0..n {
            let h0 = logp[c] - 0.5 * p0[c].iter().map(|x| x * x).sum::<f64>();
            let h1 = logp_new[c] - 0.5 * p[c].iter().map(|x| x * x).sum::<f64>();
            let accept_prob = (h1 - h0).exp().min(1.0);
            let accept = accept_prob.is_finite() && rngs[c].gen::<f64>() < accept_prob;
            if accept {
                q[c].copy_from_slice(&q_new[c]);
                logp[c] = logp_new[c];
                grad[c].copy_from_slice(&grad_new[c]);
            }

            if iter < configs[c].warmup {
                let target_accept = 0.65;
                let adapt = 1.0 + 0.05 * (accept_prob - target_accept);
                step[c] = (step[c] * adapt).clamp(1e-6, 5.0);
            } else {
                if accept {
                    accepted_post[c] += 1;
                }
                draws[c].push(q[c].clone());
            }
        }
    }

    draws
        .into_iter()
        .zip(accepted_post)
        .zip(step)
        .zip(configs)
        .map(|(((draws, accepted), step_size), cfg)| HmcResult {
            draws,
            accept_rate: accepted as f64 / cfg.samples.max(1) as f64,
            step_size,
        })
        .collect()
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::summarize;

    #[test]
    fn recovers_shifted_normal() {
        let target = |q: &[f64]| {
            let z = q[0] - 3.0;
            (-0.5 * z * z, vec![-z])
        };
        let cfg = HmcConfig {
            warmup: 500,
            samples: 1500,
            seed: 11,
            ..Default::default()
        };
        let res = hmc_sample(&target, vec![0.0], &cfg);
        let s = summarize(&res.draws);
        assert!((s[0].mean - 3.0).abs() < 0.2, "mean {}", s[0].mean);
        assert!(res.accept_rate > 0.4, "accept {}", res.accept_rate);
    }

    #[test]
    fn lockstep_chains_match_sequential_chains_bitwise() {
        let target = |q: &[f64]| {
            let z = q[0] - 3.0;
            (-0.5 * z * z - 0.5 * q[1] * q[1], vec![-z, -q[1]])
        };
        let configs: Vec<HmcConfig> = (0..3)
            .map(|c| HmcConfig {
                warmup: 40,
                samples: 30,
                leapfrog_steps: 8,
                seed: 21 + c,
                ..Default::default()
            })
            .collect();
        let inits = vec![vec![0.0, 0.5], vec![1.0, -0.5], vec![-1.0, 0.0]];
        let mut batched = &target;
        let lockstep = hmc_sample_lockstep(&mut batched, inits.clone(), &configs);
        for ((init, cfg), got) in inits.into_iter().zip(&configs).zip(&lockstep) {
            let want = hmc_sample(&target, init, cfg);
            assert_eq!(want.draws, got.draws);
            assert_eq!(want.accept_rate, got.accept_rate);
            assert_eq!(want.step_size.to_bits(), got.step_size.to_bits());
        }
    }

    #[test]
    fn step_size_stays_positive_under_bad_gradients() {
        let target = |q: &[f64]| {
            if q[0].abs() > 5.0 {
                (f64::NEG_INFINITY, vec![0.0])
            } else {
                (-0.5 * q[0] * q[0], vec![-q[0]])
            }
        };
        let res = hmc_sample(&target, vec![0.0], &HmcConfig::default());
        assert!(res.step_size > 0.0);
        assert_eq!(res.draws.len(), 500);
    }
}
