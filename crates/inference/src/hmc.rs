//! Plain Hamiltonian Monte Carlo with a fixed number of leapfrog steps.
//!
//! Kept as a simpler, easier-to-reason-about baseline next to
//! [`crate::nuts`]; also used by tests to cross-check posterior summaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::target::{GradTarget, GradTargetMut};

/// Configuration for static HMC.
#[derive(Debug, Clone)]
pub struct HmcConfig {
    /// Warmup iterations (step size is tuned by a simple acceptance-rate
    /// heuristic during warmup).
    pub warmup: usize,
    /// Number of kept draws.
    pub samples: usize,
    /// Number of leapfrog steps per proposal.
    pub leapfrog_steps: usize,
    /// Initial step size.
    pub step_size: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HmcConfig {
    fn default() -> Self {
        HmcConfig {
            warmup: 500,
            samples: 500,
            leapfrog_steps: 20,
            step_size: 0.1,
            seed: 0,
        }
    }
}

/// The output of an HMC run.
#[derive(Debug, Clone)]
pub struct HmcResult {
    /// Post-warmup draws.
    pub draws: Vec<Vec<f64>>,
    /// Acceptance rate after warmup.
    pub accept_rate: f64,
    /// Final step size.
    pub step_size: f64,
}

/// Runs static HMC on a `(log p, ∇ log p)` target. Stateful targets should
/// use [`hmc_sample_mut`], which this function delegates to.
pub fn hmc_sample<T: GradTarget + ?Sized>(
    target: &T,
    init: Vec<f64>,
    config: &HmcConfig,
) -> HmcResult {
    let mut adapter = target;
    hmc_sample_mut(&mut adapter, init, config)
}

/// [`hmc_sample`] over the buffer-reusing [`GradTargetMut`] interface.
pub fn hmc_sample_mut<T: GradTargetMut + ?Sized>(
    target: &mut T,
    init: Vec<f64>,
    config: &HmcConfig,
) -> HmcResult {
    let dim = init.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut q = init;
    let mut grad = vec![0.0; dim];
    let mut logp = target.logp_grad_into(&q, &mut grad);
    if logp.is_nan() {
        logp = f64::NEG_INFINITY;
        grad.fill(0.0);
    }
    let mut step = config.step_size;
    let mut draws = Vec::with_capacity(config.samples);
    let mut accepted_post = 0usize;

    for iter in 0..(config.warmup + config.samples) {
        let p0: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let mut p = p0.clone();
        let mut q_new = q.clone();
        let mut grad_new = grad.clone();
        let mut logp_new = logp;

        // Leapfrog integration.
        for i in 0..dim {
            p[i] += 0.5 * step * grad_new[i];
        }
        for l in 0..config.leapfrog_steps {
            for i in 0..dim {
                q_new[i] += step * p[i];
            }
            let lp = target.logp_grad_into(&q_new, &mut grad_new);
            logp_new = if lp.is_nan() { f64::NEG_INFINITY } else { lp };
            let last = l + 1 == config.leapfrog_steps;
            let factor = if last { 0.5 } else { 1.0 };
            for i in 0..dim {
                p[i] += factor * step * grad_new[i];
            }
        }

        let h0 = logp - 0.5 * p0.iter().map(|x| x * x).sum::<f64>();
        let h1 = logp_new - 0.5 * p.iter().map(|x| x * x).sum::<f64>();
        let accept_prob = (h1 - h0).exp().min(1.0);
        let accept = accept_prob.is_finite() && rng.gen::<f64>() < accept_prob;
        if accept {
            q = q_new;
            logp = logp_new;
            grad = grad_new;
        }

        if iter < config.warmup {
            // Simple Robbins-Monro step-size tuning toward 65% acceptance.
            let target_accept = 0.65;
            let adapt = 1.0 + 0.05 * (accept_prob - target_accept);
            step = (step * adapt).clamp(1e-6, 5.0);
        } else {
            if accept {
                accepted_post += 1;
            }
            draws.push(q.clone());
        }
    }

    HmcResult {
        draws,
        accept_rate: accepted_post as f64 / config.samples.max(1) as f64,
        step_size: step,
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::summarize;

    #[test]
    fn recovers_shifted_normal() {
        let target = |q: &[f64]| {
            let z = q[0] - 3.0;
            (-0.5 * z * z, vec![-z])
        };
        let cfg = HmcConfig {
            warmup: 500,
            samples: 1500,
            seed: 11,
            ..Default::default()
        };
        let res = hmc_sample(&target, vec![0.0], &cfg);
        let s = summarize(&res.draws);
        assert!((s[0].mean - 3.0).abs() < 0.2, "mean {}", s[0].mean);
        assert!(res.accept_rate > 0.4, "accept {}", res.accept_rate);
    }

    #[test]
    fn step_size_stays_positive_under_bad_gradients() {
        let target = |q: &[f64]| {
            if q[0].abs() > 5.0 {
                (f64::NEG_INFINITY, vec![0.0])
            } else {
                (-0.5 * q[0] * q[0], vec![-q[0]])
            }
        };
        let res = hmc_sample(&target, vec![0.0], &HmcConfig::default());
        assert!(res.step_size > 0.0);
        assert_eq!(res.draws.len(), 500);
    }
}
