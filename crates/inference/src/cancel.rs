//! Cooperative cancellation for long-running inference loops.
//!
//! A [`CancelToken`] is a cheaply cloneable handle carrying an atomic
//! cancel flag and an optional wall-clock deadline. Samplers and
//! optimizers poll it **once per outer iteration** (per draw, per
//! adaptation step, per importance particle) and never inside a gradient
//! evaluation, so cancellation cannot perturb the bitwise contract of the
//! numeric kernels: the draws produced before the cancellation point are
//! identical to the same-seed prefix of an uncancelled run.
//!
//! Tokens form an optional parent chain: a child observes its parent's
//! cancellation in addition to its own flag/deadline. The serve tier uses
//! this to layer a server-wide drain token over per-request deadline
//! tokens — cancelling the parent sweeps every in-flight request without
//! touching their individual deadlines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A cooperative cancellation handle: an atomic flag, an optional
/// deadline, and an optional parent token. Cloning shares the underlying
/// state. The [`Default`] token never cancels, so threading a token
/// through a config struct costs nothing for callers that don't use it.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that never cancels until [`cancel`](CancelToken::cancel)
    /// is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that reports cancelled once `timeout` has elapsed from
    /// now (or earlier, if [`cancel`](CancelToken::cancel) is called).
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// A token that reports cancelled once the wall clock reaches
    /// `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child of `self` with its own deadline: cancelled when the
    /// parent is cancelled, when `timeout` elapses, or when the child
    /// itself is cancelled — whichever happens first.
    pub fn child_with_timeout(&self, timeout: Duration) -> CancelToken {
        self.child_inner(Some(Instant::now() + timeout))
    }

    /// A child of `self` without a deadline of its own: cancelled when
    /// the parent is cancelled or the child itself is.
    pub fn child(&self) -> CancelToken {
        self.child_inner(None)
    }

    fn child_inner(&self, deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                parent: Some(self.clone()),
            }),
        }
    }

    /// Flags this token (and every clone of it) as cancelled. Children
    /// created from it observe the cancellation too; its parent (if any)
    /// is unaffected.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once the token is cancelled: its flag was set, its deadline
    /// passed, or an ancestor cancelled. Cheap enough to poll per draw.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Time remaining until this token's own deadline (ignoring parent
    /// deadlines), or `None` when it has no deadline. Zero once passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_cancels() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::from_millis(0)));
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn child_observes_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
    }

    #[test]
    fn child_cancellation_leaves_parent_alone() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn child_deadline_cancels_without_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_millis(0));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }
}
