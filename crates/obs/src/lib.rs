//! `obs` — zero-dependency, lock-light process telemetry.
//!
//! Every performance-critical layer of the workspace (resolver/DProg
//! lowering, the x86_64 JIT, lockstep NUTS, the serve tier) reports into
//! one process-wide [`Registry`] of named metrics, and anything holding a
//! [`Snapshot`] — a test, `Fit::profile()`, or a `stats` frame served over
//! the wire — can read a consistent view of where time went.
//!
//! # Metric model
//!
//! Three metric kinds, all safe to update concurrently without locks:
//!
//! * [`Counter`] — a monotone `u64` (`AtomicU64` with relaxed ordering).
//!   Request counts, cache hits, decline reasons, leapfrog totals.
//! * [`Gauge`] — a point-in-time `f64` (stored as bits in an `AtomicU64`).
//!   Pool depth, idle workspaces, the last adapted step size.
//! * [`Histogram`] — a fixed 64-bucket power-of-2 (log₂) histogram of
//!   `u64` samples, plus exact `count`/`sum`/`max`. Bucket 0 holds the
//!   value 0; bucket *i* (1 ≤ i ≤ 62) holds `[2^(i-1), 2^i)`; bucket 63
//!   holds everything from `2^62` up. Quantiles (p50/p90/p99) interpolate
//!   linearly inside the bucket containing the target rank, so the
//!   estimate is never off by more than the width of that bucket (a
//!   factor of 2). Latency histograms record **nanoseconds**; their names
//!   end in `_ns` by convention.
//!
//! Metrics are created on first use by name ([`Registry::counter`] /
//! [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram)); the
//! returned `Arc` handle is lock-free to update, so hot call sites cache
//! it in a `OnceLock` and never touch the registry map again. Names must
//! not contain whitespace (the snapshot format is line/space delimited);
//! the registry replaces any whitespace with `_` on registration.
//!
//! # Timing spans
//!
//! [`Span::enter("jit_emit")`](Span::enter) starts an RAII timer; when the
//! span drops, the elapsed time lands in the histogram named
//! `<name>_ns` in the global registry, and — when tracing is on — a
//! Chrome trace event is appended. Spans instrument *phases* (parse,
//! resolve, DProg lower, JIT emit, ADVI steps, serve requests), never the
//! per-evaluation gradient path: the overhead contract below.
//!
//! # Snapshot format
//!
//! [`Registry::snapshot`] captures every metric into a [`Snapshot`];
//! [`Snapshot::to_text`] renders a stable, line-oriented text form that
//! [`Snapshot::parse`] round-trips (this is the payload of the serve
//! tier's `stats` response frame):
//!
//! ```text
//! counter <name> <u64>
//! gauge <name> <f64>
//! hist <name> count <u64> sum <u64> max <u64> buckets <idx>:<count> ...
//! ```
//!
//! One metric per line, kinds grouped in the order above, names sorted
//! within each kind, empty buckets omitted. Snapshots merge bucket-wise
//! ([`Snapshot::merge`], associative) and subtract
//! ([`Snapshot::delta`]) so a load generator can report per-level
//! server-side breakdowns from before/after polls.
//!
//! # Trace-event dump
//!
//! Setting `GPROB_TRACE=<path>` makes every span append one Chrome
//! trace-event object to `<path>`:
//!
//! ```json
//! {"name":"jit_emit","ph":"X","ts":1234.5,"dur":87.2,"pid":1,"tid":3}
//! ```
//!
//! `ts`/`dur` are microseconds; `ts` is relative to the first event.
//! The file opens with `[` and each event ends with `,\n`; the Chrome
//! trace format explicitly tolerates the missing closing bracket, so the
//! file is loadable in `chrome://tracing` / Perfetto at any point, even
//! after a crash. Events are appended under a mutex — tracing is an
//! offline-inspection mode, not a production path.
//!
//! # Overhead contract
//!
//! * The gradient evaluation path carries **no** instrumentation — not
//!   even a counter. Inference loops accumulate locally (plain integers)
//!   and flush once per chain/fit.
//! * Counters and gauges are single relaxed atomic ops and are always
//!   live: the back-compat accessors (`deepstan::compile_count`,
//!   `gprob::bind_count`, serve cache stats) depend on them.
//! * Everything that calls `Instant::now` — spans and the step/request
//!   timing histograms — is gated by [`enabled`], which reads one relaxed
//!   `AtomicBool`. Set `GPROB_OBS=0` (or `off`) to disable timing before
//!   the process starts, or call [`set_enabled`] at runtime (the
//!   bench-smoke overhead guard flips it mid-process to compare).
//!
//! # Quickstart
//!
//! ```
//! // Time a phase into the histogram "demo.phase_ns":
//! {
//!     let _span = obs::Span::enter("demo.phase");
//!     // ... work ...
//! }
//! // Count an event and read everything back:
//! obs::counter("demo.events").inc();
//! let snap = obs::global().snapshot();
//! assert!(snap.counter("demo.events").unwrap_or(0) >= 1);
//! let text = snap.to_text();
//! let parsed = obs::Snapshot::parse(&text).unwrap();
//! assert_eq!(parsed.to_text(), text);
//! ```
//!
//! In-process inference users read the same registry through
//! `deepstan::Fit::profile()`; remote users poll the serve tier's `stats`
//! frame (`serve::Client::stats`), which ships `to_text()` over the wire.

mod metrics;
mod registry;
mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{global, Registry, Snapshot};
pub use span::{Span, StepTimer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let on = match std::env::var("GPROB_OBS") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                !(v == "0" || v == "off" || v == "false")
            }
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether timing instrumentation (spans, step/request histograms — i.e.
/// everything that calls `Instant::now`) is live. Counters and gauges are
/// *not* gated: they are single relaxed atomics and back-compat surfaces
/// depend on them. Defaults to `true`; `GPROB_OBS=0|off|false` disables.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Runtime override of the `GPROB_OBS` gate — the bench-smoke overhead
/// guard flips this to compare timed vs. untimed runs in one process.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Shorthand for [`global()`]`.counter(name)`.
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    global().counter(name)
}

/// Shorthand for [`global()`]`.gauge(name)`.
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for [`global()`]`.histogram(name)`.
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    global().histogram(name)
}
