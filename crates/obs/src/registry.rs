//! The process [`Registry`] of named metrics and its serializable
//! [`Snapshot`] (the `stats`-frame payload and the `Fit::profile()` data
//! source). See the crate docs for the text format grammar.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};

/// A named collection of metrics. The maps are only locked to create or
/// enumerate metrics; updating through the returned `Arc` handles is
/// lock-free, and hot call sites cache the handle in a `OnceLock`.
///
/// Every lock acquisition recovers from poisoning
/// (`unwrap_or_else(|e| e.into_inner())`): the maps are never left
/// mid-edit by the operations here (`BTreeMap::entry` either inserts or
/// it doesn't), so a panic elsewhere while a guard is held cannot corrupt
/// them, and telemetry must keep flowing after a worker panic — the serve
/// tier counts those panics *through this registry*.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Whitespace would break the line/space-delimited snapshot format.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

impl Registry {
    /// A fresh, empty registry (tests; production code shares
    /// [`global()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(sanitize(name)).or_default().clone()
    }

    /// The gauge named `name`, created at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(sanitize(name)).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(sanitize(name)).or_default().clone()
    }

    /// Captures every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumented crate reports into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a registry: serializable to the stable text
/// format ([`to_text`](Snapshot::to_text) / [`parse`](Snapshot::parse)),
/// mergeable, and subtractable for per-interval views.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Element-wise addition: counters and histogram buckets add, gauges
    /// take `other`'s value (last-writer-wins — a gauge is a level, not a
    /// flow). Associative over the histogram/counter content, with the
    /// empty snapshot as identity.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The change since `base` (an earlier snapshot of the same
    /// registry): counters and histograms subtract (saturating), gauges
    /// keep the later value. Metrics absent from `base` pass through
    /// whole.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let b = base.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(b))
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let d = match base.histograms.get(name) {
                    Some(b) => h.delta(b),
                    None => h.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the stable text form (see the crate docs for the
    /// grammar). Counters first, then gauges, then histograms; names
    /// sorted within each kind; empty histogram buckets omitted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!(
                "hist {name} count {} sum {} max {} buckets",
                hist.count, hist.sum, hist.max
            ));
            for (index, &n) in hist.buckets.iter().enumerate() {
                if n > 0 {
                    out.push_str(&format!(" {index}:{n}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`to_text`](Snapshot::to_text) form back.
    ///
    /// # Errors
    /// A description of the first malformed line.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let mut snapshot = Snapshot::default();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(' ');
            let kind = fields.next().unwrap_or("");
            let name = fields
                .next()
                .ok_or_else(|| format!("metric line missing name: `{line}`"))?;
            match kind {
                "counter" => {
                    let value: u64 = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad counter line: `{line}`"))?;
                    snapshot.counters.insert(name.to_string(), value);
                }
                "gauge" => {
                    let value: f64 = fields
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad gauge line: `{line}`"))?;
                    snapshot.gauges.insert(name.to_string(), value);
                }
                "hist" => {
                    let mut hist = HistogramSnapshot::empty();
                    let mut expect = |label: &str| -> Result<u64, String> {
                        if fields.next() != Some(label) {
                            return Err(format!("hist line missing `{label}`: `{line}`"));
                        }
                        fields
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("bad hist `{label}` in `{line}`"))
                    };
                    hist.count = expect("count")?;
                    hist.sum = expect("sum")?;
                    hist.max = expect("max")?;
                    if fields.next() != Some("buckets") {
                        return Err(format!("hist line missing `buckets`: `{line}`"));
                    }
                    for pair in fields {
                        let (index, n) = pair
                            .split_once(':')
                            .ok_or_else(|| format!("bad bucket `{pair}` in `{line}`"))?;
                        let index: usize = index
                            .parse()
                            .map_err(|_| format!("bad bucket index `{pair}` in `{line}`"))?;
                        if index >= BUCKETS {
                            return Err(format!("bucket index out of range in `{line}`"));
                        }
                        hist.buckets[index] = n
                            .parse()
                            .map_err(|_| format!("bad bucket count `{pair}` in `{line}`"))?;
                    }
                    snapshot.histograms.insert(name.to_string(), hist);
                }
                other => return Err(format!("unknown metric kind `{other}` in `{line}`")),
            }
        }
        Ok(snapshot)
    }

    /// The subset of metrics whose name starts with any of `prefixes` —
    /// how `Fit::profile()` selects the inference/compile sections.
    pub fn filtered(&self, prefixes: &[&str]) -> Snapshot {
        let keep = |name: &String| prefixes.iter().any(|p| name.starts_with(p));
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_metric_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn whitespace_in_names_is_sanitized() {
        let r = Registry::new();
        r.counter("bad name\twith ws").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("bad_name_with_ws"), Some(1));
        let reparsed = Snapshot::parse(&snap.to_text()).unwrap();
        assert_eq!(reparsed, snap);
    }

    #[test]
    fn text_round_trip() {
        let r = Registry::new();
        r.counter("a.count").add(7);
        r.gauge("b.level").set(2.5);
        let h = r.histogram("c.lat_ns");
        h.record(0);
        h.record(3);
        h.record(1_000_000);
        let snap = r.snapshot();
        let text = snap.to_text();
        let parsed = Snapshot::parse(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn poisoned_lock_does_not_wedge_later_callers() {
        let r = Registry::new();
        r.counter("survivor").inc();
        // Poison the counters mutex: panic while its guard is held, as a
        // panicking worker thread would.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.counters.lock().unwrap();
            panic!("poison the registry lock");
        }));
        assert!(r.counters.lock().is_err(), "lock should be poisoned");
        // Every entry point recovers instead of propagating the panic.
        r.counter("survivor").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("survivor"), Some(2));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Snapshot::parse("counter x notanumber").is_err());
        assert!(Snapshot::parse("widget x 3").is_err());
        assert!(Snapshot::parse("hist x count 1 sum 1 max 1 buckets 99:1").is_err());
    }
}
