//! The three metric kinds: [`Counter`], [`Gauge`], and the 64-bucket
//! power-of-2 [`Histogram`] with its mergeable [`HistogramSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (fixed power-of-2 layout).
pub const BUCKETS: usize = 64;

/// A monotone event counter (`AtomicU64`, relaxed ordering).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero (registry use; most callers go through
    /// [`crate::Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time `f64` value (bits stored in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; gauges are low-rate).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket index for a sample: 0 holds the value 0, bucket `i` (1..=62)
/// holds `[2^(i-1), 2^i)`, bucket 63 holds everything from `2^62` up.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (BUCKETS - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Exclusive upper bound of a bucket (`u64::MAX` for the last).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        1
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// A fixed 64-bucket log₂ histogram of `u64` samples with exact
/// `count`/`sum`/`max`. All updates are relaxed atomics; reads may tear
/// across fields under concurrent writes (snapshots are advisory, not
/// transactional — the serve tier snapshots between requests).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value in one shot — how inference
    /// loops flush locally-accumulated tallies once per chain.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Captures the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: mergeable, subtractable, and
/// the unit the snapshot text format serializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket sample counts (see [`Histogram`] for the layout).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Bucket-wise addition: `count`/`sum` add, `max` takes the larger.
    /// Associative and commutative with [`empty`](Self::empty) as
    /// identity, so chain/worker snapshots fold in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Bucket-wise saturating subtraction of an earlier snapshot of the
    /// *same* histogram — the per-interval view a before/after poll pair
    /// yields. `max` keeps the later value (an over-estimate for the
    /// interval; the true interval max is not recoverable from totals).
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(base.buckets[i])),
        }
    }

    /// Mean sample value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`; `NaN` when empty).
    ///
    /// Finds the bucket containing the rank-`ceil(q·count)` sample and
    /// interpolates linearly inside it, clamping to the recorded `max`.
    /// The estimate is within the containing bucket's bounds, i.e. at
    /// most a factor of 2 from the exact order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower(index) as f64;
                let hi = (bucket_upper(index).min(self.max.max(1))) as f64;
                let within = (rank - seen) as f64 / n as f64;
                let estimate = lo + within * (hi - lo).max(0.0);
                return estimate.min(self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..BUCKETS - 1 {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(2 * lo - 1), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_index((1u64 << 62) - 1), BUCKETS - 2);
    }

    #[test]
    fn gauge_add_is_exact() {
        let g = Gauge::new();
        g.set(1.5);
        g.add(2.25);
        g.add(-0.75);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2008);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }
}
