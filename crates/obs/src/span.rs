//! RAII timing spans: enter/drop brackets a phase, the elapsed time lands
//! in a named histogram, and — when `GPROB_TRACE` is set — a Chrome
//! trace event is appended.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// An RAII phase timer. [`Span::enter("jit_emit")`](Span::enter) starts
/// the clock; dropping the span records the elapsed nanoseconds into the
/// global histogram `jit_emit_ns` and emits a trace event when tracing
/// is installed. When [`crate::enabled`] is false the span is inert (no
/// `Instant::now`, no registry lookup).
#[must_use = "a span times the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing the phase `name` (recorded into histogram
    /// `<name>_ns` on drop).
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        let histogram = crate::global().histogram(&format!("{name}_ns"));
        Span {
            inner: Some(SpanInner {
                name,
                histogram,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed();
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            inner.histogram.record(ns);
            crate::trace::event(inner.name, inner.start, ns);
        }
    }
}

/// Repeated-phase timer for step loops (ADVI/SVI optimization steps):
/// resolves its histogram once at construction, then each
/// [`begin`](StepTimer::begin)/[`end`](StepTimer::end) pair costs two
/// `Instant::now` calls and one atomic record — or nothing at all when
/// [`crate::enabled`] was false at construction. Unlike [`Span`] it emits
/// no trace events (thousands of steps would swamp a trace file).
pub struct StepTimer {
    histogram: Option<Arc<Histogram>>,
    start: Option<Instant>,
}

impl StepTimer {
    /// A timer feeding the global histogram `<name>_ns`; inert when
    /// telemetry is disabled.
    pub fn new(name: &str) -> StepTimer {
        let histogram = crate::enabled().then(|| crate::global().histogram(&format!("{name}_ns")));
        StepTimer {
            histogram,
            start: None,
        }
    }

    /// Marks the start of one step.
    #[inline]
    pub fn begin(&mut self) {
        if self.histogram.is_some() {
            self.start = Some(Instant::now());
        }
    }

    /// Records the step begun by the matching [`begin`](StepTimer::begin)
    /// (no-op without one).
    #[inline]
    pub fn end(&mut self) {
        if let (Some(histogram), Some(start)) = (&self.histogram, self.start.take()) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_timer_counts_steps() {
        let mut timer = StepTimer::new("obs.test.step");
        for _ in 0..3 {
            timer.begin();
            timer.end();
        }
        let snap = crate::global().snapshot();
        assert_eq!(snap.histogram("obs.test.step_ns").map(|h| h.count), Some(3));
    }

    #[test]
    fn span_records_into_named_histogram() {
        {
            let _span = Span::enter("obs.test.span");
            std::hint::black_box(0u64);
        }
        let snap = crate::global().snapshot();
        let hist = snap.histogram("obs.test.span_ns").expect("span histogram");
        assert!(hist.count >= 1);
    }
}
