//! Chrome trace-event dump: every span appends one complete (`"ph":"X"`)
//! event to the file named by `GPROB_TRACE`, loadable in
//! `chrome://tracing` / Perfetto. See the crate docs for the schema; the
//! closing `]` is intentionally never written (the format tolerates it),
//! so the file is valid after a crash or mid-run.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

struct TraceWriter {
    file: File,
    anchor: Instant,
}

static WRITER: OnceLock<Mutex<Option<TraceWriter>>> = OnceLock::new();
static ACTIVE: AtomicU64 = AtomicU64::new(0);

fn slot() -> &'static Mutex<Option<TraceWriter>> {
    WRITER.get_or_init(|| {
        let from_env = std::env::var_os("GPROB_TRACE").and_then(|path| {
            if path.is_empty() {
                return None;
            }
            let mut file = File::create(&path).ok()?;
            file.write_all(b"[\n").ok()?;
            Some(TraceWriter {
                file,
                anchor: Instant::now(),
            })
        });
        if from_env.is_some() {
            ACTIVE.store(1, Ordering::Release);
        }
        Mutex::new(from_env)
    })
}

/// Installs the trace sink explicitly (tests; production use goes
/// through the `GPROB_TRACE` env var, read lazily at the first span).
///
/// # Errors
/// File creation failure, or `AlreadyExists` when a sink — env-derived
/// or installed — is already active.
pub fn install(path: &Path) -> std::io::Result<()> {
    let mut guard = slot().lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "trace sink already installed",
        ));
    }
    let mut file = File::create(path)?;
    file.write_all(b"[\n")?;
    *guard = Some(TraceWriter {
        file,
        anchor: Instant::now(),
    });
    ACTIVE.store(1, Ordering::Release);
    Ok(())
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec!['_'],
            c => vec![c],
        })
        .collect()
}

/// Appends one complete-event record. No-op unless a sink is active
/// (one relaxed atomic load on the cold path before taking the lock —
/// but the env var has to be read at least once, so force `slot()`).
pub(crate) fn event(name: &str, start: Instant, dur_ns: u64) {
    let slot = slot();
    if ACTIVE.load(Ordering::Acquire) == 0 {
        return;
    }
    let tid = TID.with(|t| *t);
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    let Some(writer) = guard.as_mut() else { return };
    let ts_us = start
        .checked_duration_since(writer.anchor)
        .map(|d| d.as_secs_f64() * 1e6)
        .unwrap_or(0.0);
    let dur_us = dur_ns as f64 / 1e3;
    let line = format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{tid}}},\n",
        escape(name)
    );
    let _ = writer.file.write_all(line.as_bytes());
    let _ = writer.file.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the process-wide sink (OnceLock): install, emit via a
    // real span, and check the file shape.
    #[test]
    fn installed_sink_receives_span_events() {
        let path = std::env::temp_dir().join(format!("obs_trace_{}.json", std::process::id()));
        install(&path).expect("install trace sink");
        {
            let _span = crate::Span::enter("trace.test.phase");
        }
        let contents = std::fs::read_to_string(&path).expect("read trace file");
        assert!(contents.starts_with("[\n"));
        assert!(contents.contains("\"name\":\"trace.test.phase\""));
        assert!(contents.contains("\"ph\":\"X\""));
        assert!(install(&path).is_err(), "second install must be rejected");
        let _ = std::fs::remove_file(&path);
    }
}
