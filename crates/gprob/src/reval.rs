//! Evaluation of slot-resolved programs over [`Frame`] environments.
//!
//! This is the hot path of the runtime: the mirror of [`crate::eval`] /
//! [`crate::interp`] for the resolved IR of [`crate::resolved`]. Every
//! variable access is a vector index instead of a string hash. Value-level
//! helpers (binary operators, the builtin library, distribution scoring and
//! sampling) are shared with the string-keyed evaluator, so the two runtimes
//! cannot drift apart semantically.
//!
//! User-defined functions and external functions (DeepStan networks) remain
//! name-addressed; they receive the frame through the
//! [`crate::value::EnvView`] boundary without any copying.

use std::cell::RefCell;
use std::rc::Rc;

use minidiff::Real;
use rand::rngs::StdRng;
use stan_frontend::ast::FunDecl;

use probdist::sweep::{lpdf_sweep, SweepArg, SweepVals};

use crate::eval::{
    call_builtin, call_user_function, eval_binary, eval_unary, set_nested, slice_value,
    tilde_lpdf_kind_batched, EvalCtx, ExternalFns,
};

use crate::interp::draw_site;
use crate::resolved::{
    CallTarget, Frame, FrameView, RDecl, RDeclKind, RDistCall, RExpr, RGExpr, RIndex, RLoopKind,
    RSweep, ResolvedProgram, SweepArgSpec,
};
use crate::value::{RuntimeError, Value};

/// Evaluation context for resolved programs: the resolved program (for the
/// symbol table), the user-function table, and the shared value-level
/// context (builtins RNG, externals) reused from the string evaluator.
pub struct RCtx<'a, T: Real> {
    /// The resolved program (symbol table, slot count).
    pub resolved: &'a ResolvedProgram,
    /// User-defined functions, indexed by [`CallTarget::User`].
    pub functions: &'a [FunDecl],
    /// Value-level context shared with the string evaluator (used when
    /// dropping into interpreted user functions and builtins).
    pub eval: EvalCtx<'a, T>,
}

impl<'a, T: Real> RCtx<'a, T> {
    /// Builds a context over a resolved program and its function table. The
    /// user-function dispatch table is borrowed from the resolved program —
    /// contexts are free to construct, so the density hot path can build one
    /// per evaluation without cloning a single `String`.
    pub fn new(
        resolved: &'a ResolvedProgram,
        functions: &'a [FunDecl],
        externals: &'a dyn ExternalFns<T>,
    ) -> Self {
        RCtx {
            resolved,
            functions,
            eval: EvalCtx::with_table(functions, &resolved.fn_table).externals(externals),
        }
    }

    fn unbound(&self, slot: u32) -> RuntimeError {
        RuntimeError::new(format!(
            "unbound variable `{}`",
            self.resolved.name_of(slot)
        ))
    }
}

/// A possibly-borrowed evaluation result. Slot reads and container-element
/// reads borrow straight from the frame — the key win over the string
/// runtime, which clones a container out of the environment before every
/// `y[i]` access (quadratic in vector length across an observation loop).
pub enum RefValue<'a, T: Real> {
    /// A value borrowed from the frame.
    Borrowed(&'a Value<T>),
    /// A freshly computed value.
    Owned(Value<T>),
}

impl<'a, T: Real> RefValue<'a, T> {
    /// A shared reference to the value.
    #[inline]
    pub fn as_value(&self) -> &Value<T> {
        match self {
            RefValue::Borrowed(v) => v,
            RefValue::Owned(v) => v,
        }
    }

    /// Extracts an owned value (cloning only if borrowed).
    #[inline]
    pub fn into_owned(self) -> Value<T> {
        match self {
            RefValue::Borrowed(v) => v.clone(),
            RefValue::Owned(v) => v,
        }
    }
}

impl<T: Real> std::borrow::Borrow<Value<T>> for RefValue<'_, T> {
    fn borrow(&self) -> &Value<T> {
        self.as_value()
    }
}

/// Evaluates a resolved expression, borrowing from the frame when the
/// expression is a plain slot read or an element access into one.
///
/// # Errors
/// Same as [`reval_expr`].
pub fn reval_ref<'a, T: Real>(
    e: &RExpr,
    frame: &'a Frame<T>,
    ctx: &RCtx<T>,
) -> Result<RefValue<'a, T>, RuntimeError> {
    match e {
        RExpr::Slot(slot) => frame
            .get(*slot)
            .map(RefValue::Borrowed)
            .ok_or_else(|| ctx.unbound(*slot)),
        RExpr::Index(base, indices) => {
            let mut cur = reval_ref(base, frame, ctx)?;
            for idx in indices {
                match idx {
                    RIndex::Slice(lo, hi) => {
                        let lo = reval_expr(lo, frame, ctx)?.as_int()?;
                        let hi = reval_expr(hi, frame, ctx)?.as_int()?;
                        cur = RefValue::Owned(slice_value(cur.as_value(), lo, hi)?);
                    }
                    RIndex::One(i) => {
                        let i = reval_expr(i, frame, ctx)?.as_int()?;
                        cur = match cur {
                            // Indexing a borrowed nested array yields a
                            // borrow of the element; scalars are copied out.
                            RefValue::Borrowed(Value::Array(items)) => {
                                let len = items.len();
                                if i < 1 || i as usize > len {
                                    return Err(RuntimeError::new(format!(
                                        "index {i} out of bounds for length {len}"
                                    )));
                                }
                                RefValue::Borrowed(&items[(i - 1) as usize])
                            }
                            other => RefValue::Owned(other.as_value().index(i)?),
                        };
                    }
                }
            }
            Ok(cur)
        }
        other => reval_expr(other, frame, ctx).map(RefValue::Owned),
    }
}

/// Evaluates a resolved expression against a frame.
///
/// # Errors
/// Returns a [`RuntimeError`] on unbound slots, unknown functions, shape
/// mismatches, or out-of-bounds indexing.
pub fn reval_expr<T: Real>(
    e: &RExpr,
    frame: &Frame<T>,
    ctx: &RCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    match e {
        RExpr::IntLit(v) => Ok(Value::Int(*v)),
        RExpr::RealLit(v) => Ok(Value::Real(T::from_f64(*v))),
        RExpr::StringLit(_) => Ok(Value::Unit),
        RExpr::Slot(slot) => frame.get(*slot).cloned().ok_or_else(|| ctx.unbound(*slot)),
        RExpr::Unary(op, a) => {
            let va = reval_expr(a, frame, ctx)?;
            eval_unary(*op, va)
        }
        RExpr::Binary(op, a, b) => {
            let va = reval_expr(a, frame, ctx)?;
            let vb = reval_expr(b, frame, ctx)?;
            eval_binary(*op, va, vb)
        }
        RExpr::Index(..) => reval_ref(e, frame, ctx).map(RefValue::into_owned),
        RExpr::ArrayLit(items) => {
            let vals: Vec<Value<T>> = items
                .iter()
                .map(|i| reval_expr(i, frame, ctx))
                .collect::<Result<_, _>>()?;
            crate::eval::promote_array_lit(vals)
        }
        RExpr::VectorLit(items) => {
            let vals: Vec<T> = items
                .iter()
                .map(|i| reval_expr(i, frame, ctx)?.as_real())
                .collect::<Result<_, _>>()?;
            Ok(Value::Vector(vals))
        }
        RExpr::Range(lo, hi) => {
            let lo = reval_expr(lo, frame, ctx)?.as_int()?;
            let hi = reval_expr(hi, frame, ctx)?.as_int()?;
            Ok(Value::IntArray((lo..=hi).collect()))
        }
        RExpr::Ternary(c, a, b) => {
            let cond = reval_expr(c, frame, ctx)?.as_real()?;
            if cond.value() != 0.0 {
                reval_expr(a, frame, ctx)
            } else {
                reval_expr(b, frame, ctx)
            }
        }
        RExpr::Call(name, target, args) => {
            let vals: Vec<Value<T>> = args
                .iter()
                .map(|a| reval_expr(a, frame, ctx))
                .collect::<Result<_, _>>()?;
            // 1. External hook (neural networks) — probed first, as in the
            //    string evaluator.
            let view = FrameView {
                frame,
                interner: &ctx.resolved.interner,
            };
            if let Some(result) = ctx.eval.externals.call(name, &vals, &view) {
                return result;
            }
            // 2. User-defined functions, dispatch-resolved at compile time.
            if let CallTarget::User(idx) = target {
                return call_user_function(&ctx.functions[*idx as usize], &vals, &view, &ctx.eval);
            }
            // 3. Built-ins.
            call_builtin(name, &vals, &ctx.eval)
        }
    }
}

/// Builds the default (zero) value for a resolved declaration.
///
/// # Errors
/// Fails if a dimension expression cannot be evaluated.
pub fn default_rvalue<T: Real>(
    decl: &RDecl,
    frame: &Frame<T>,
    ctx: &RCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    let int_dim = |e: &RExpr| -> Result<i64, RuntimeError> { reval_expr(e, frame, ctx)?.as_int() };
    let zero_vec = |n: i64| Value::Vector(vec![T::from_f64(0.0); n.max(0) as usize]);
    let base: Value<T> = match &decl.kind {
        RDeclKind::Int => Value::Int(0),
        RDeclKind::Real => Value::Real(T::from_f64(0.0)),
        RDeclKind::Vector(n) => zero_vec(int_dim(n)?),
        RDeclKind::Matrix(r, c) => {
            let (rows, cols) = (int_dim(r)?, int_dim(c)?);
            Value::Array((0..rows).map(|_| zero_vec(cols)).collect())
        }
        RDeclKind::Square(n) => {
            let n = int_dim(n)?;
            Value::Array((0..n).map(|_| zero_vec(n)).collect())
        }
    };
    let mut val = base;
    for dim in decl.dims.iter().rev() {
        let n = int_dim(dim)?;
        match (&val, &decl.kind) {
            (Value::Int(_), _) => val = Value::IntArray(vec![0; n.max(0) as usize]),
            (Value::Real(_), _) => val = zero_vec(n),
            _ => val = Value::Array(vec![val.clone(); n.max(0) as usize]),
        }
    }
    Ok(val)
}

/// How `sample` sites are resolved by the frame interpreter.
pub enum RMode<'a, T: Real> {
    /// Look values up in a trace frame; contribute their log-density.
    Trace(&'a Frame<T>),
    /// Draw fresh untracked values from the prior.
    Prior(Rc<RefCell<StdRng>>),
    /// Draw reparameterized (gradient-tracked) values.
    Reparam(Rc<RefCell<StdRng>>),
}

/// Scores `value ~ dist(args)` through the kind resolved at compile time,
/// falling back to the name-matching path (and its "unknown distribution"
/// error) only for unresolved families. When the program was resolved with
/// batching (`fused`), vectorized statements go through the sweep kernels
/// ([`tilde_lpdf_kind_batched`]); the scalar configuration keeps the
/// element-wise path for differential comparison.
fn score_tilde<T: Real, V: std::borrow::Borrow<Value<T>>>(
    dist: &RDistCall,
    value: &Value<T>,
    args: &[V],
    fused: bool,
) -> Result<T, RuntimeError> {
    match dist.kind {
        Some(kind) if fused => tilde_lpdf_kind_batched(value, kind, args),
        Some(kind) => crate::eval::tilde_lpdf_kind(value, kind, args),
        None => crate::eval::tilde_lpdf(value, &dist.name, args),
    }
}

/// Borrows the 1-based inclusive window `[lo+offset, hi+offset]` of a flat
/// container as a contiguous slice, or `None` when the value is not a flat
/// container or the window is out of bounds (the scalar fallback then owns
/// the error reporting). Shared with the generated-quantities sweeps
/// ([`crate::gq`]).
pub(crate) fn slice_window<T: Real>(
    v: &Value<T>,
    lo: i64,
    hi: i64,
    offset: i64,
) -> Option<SweepVals<'_, T>> {
    let start = lo + offset;
    let end = hi + offset;
    if start < 1 {
        return None;
    }
    let (s, e) = ((start - 1) as usize, end as usize);
    match v {
        Value::Vector(x) if e <= x.len() => Some(SweepVals::Reals(&x[s..e])),
        Value::IntArray(x) if e <= x.len() => Some(SweepVals::Ints(&x[s..e])),
        _ => None,
    }
}

/// The result of running a resolved GProb body.
#[derive(Debug, Clone)]
pub struct RRunResult<T: Real> {
    /// Accumulated log-score.
    pub score: T,
    /// The part of `score` contributed by `sample` sites alone (the prior
    /// log-density of the drawn values). `score - site_score` is therefore
    /// the observation log-likelihood — the importance weight when the run
    /// itself was the proposal.
    pub site_score: T,
    /// Values of all `sample` sites, keyed by their frame slot. Populated
    /// only in the sampling modes ([`RMode::Prior`] / [`RMode::Reparam`]);
    /// in [`RMode::Trace`] the caller already owns the trace, so collecting
    /// a copy would only add a clone per site to the density hot path.
    pub trace: Frame<T>,
    /// The value of the final `return` expression.
    pub value: Value<T>,
}

/// The slot-frame probabilistic interpreter (mirror of [`crate::interp::Interp`]).
pub struct RInterp<'a, T: Real> {
    ctx: &'a RCtx<'a, T>,
    mode: RMode<'a, T>,
    score: T,
    site_score: T,
    trace: Frame<T>,
    /// Pooled scratch for `Elementwise` sweep arguments, lent by a
    /// [`crate::workspace::DensityWorkspace`]; interpreters without one fall
    /// back to per-sweep local buffers.
    scratch: Option<&'a mut [Vec<T>; 3]>,
    /// When `false`, observation sites (`Observe`, `ObserveSweep`, `Factor`)
    /// contribute nothing to the score and their likelihood arithmetic is
    /// skipped entirely — the draw-only proposal mode of batched importance
    /// sampling, where the likelihood is recovered from a separate batched
    /// density evaluation. Sample sites are unaffected, so RNG consumption
    /// is identical to a scoring run.
    score_observes: bool,
}

impl<'a, T: Real> RInterp<'a, T> {
    /// Creates an interpreter in the given mode.
    pub fn new(ctx: &'a RCtx<'a, T>, mode: RMode<'a, T>) -> Self {
        let trace = match mode {
            // Density evaluation never reads the collected trace.
            RMode::Trace(_) => Frame::new(0),
            _ => ctx.resolved.frame(),
        };
        RInterp {
            mode,
            score: T::from_f64(0.0),
            site_score: T::from_f64(0.0),
            trace,
            ctx,
            scratch: None,
            score_observes: true,
        }
    }

    /// Disables observation scoring (builder style): `Observe` /
    /// `ObserveSweep` / `Factor` sites are skipped without evaluating their
    /// log-densities. Used by [`crate::GModel::run_prior_draw`] to generate
    /// importance-sampling proposals whose likelihood is scored afterwards
    /// through the batched density program.
    pub fn without_observe_scores(mut self) -> Self {
        self.score_observes = false;
        self
    }

    /// Attaches a pooled scratch-buffer set for `Elementwise` sweep
    /// arguments (builder style) — workspace-backed density evaluations pass
    /// their [`crate::workspace::DensityWorkspace`] buffers here so compound
    /// sweep arguments stop allocating per evaluation.
    pub fn with_scratch(mut self, scratch: &'a mut [Vec<T>; 3]) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Runs a resolved body in the given frame.
    ///
    /// # Errors
    /// Propagates evaluation errors, unknown distributions, and missing
    /// trace values.
    pub fn run(
        &mut self,
        body: &RGExpr,
        frame: &mut Frame<T>,
    ) -> Result<RRunResult<T>, RuntimeError> {
        let value = self.eval(body, frame)?;
        Ok(RRunResult {
            score: self.score,
            site_score: self.site_score,
            trace: std::mem::replace(&mut self.trace, Frame::new(0)),
            value,
        })
    }

    fn eval(&mut self, e: &RGExpr, frame: &mut Frame<T>) -> Result<Value<T>, RuntimeError> {
        match e {
            RGExpr::Unit => Ok(Value::Unit),
            RGExpr::Return(expr) => reval_expr(expr, frame, self.ctx),
            RGExpr::LetDecl { decl, body } => {
                let v = match &decl.init {
                    Some(e) => reval_expr(e, frame, self.ctx)?,
                    None => default_rvalue(decl, frame, self.ctx)?,
                };
                frame.set(decl.slot, v);
                self.eval(body, frame)
            }
            RGExpr::LetDet { slot, value, body } => {
                let v = reval_expr(value, frame, self.ctx)?;
                frame.set(*slot, v);
                self.eval(body, frame)
            }
            RGExpr::LetIndexed {
                slot,
                indices,
                value,
                body,
            } => {
                let v = reval_expr(value, frame, self.ctx)?;
                let idx: Vec<i64> = indices
                    .iter()
                    .map(|i| reval_expr(i, frame, self.ctx)?.as_int())
                    .collect::<Result<_, _>>()?;
                let target = frame
                    .get_mut(*slot)
                    .ok_or_else(|| self.ctx.unbound(*slot))?;
                set_nested(target, &idx, v)?;
                self.eval(body, frame)
            }
            RGExpr::LetSample { slot, dist, body } => {
                let value = self.handle_sample(*slot, dist, frame)?;
                if !matches!(self.mode, RMode::Trace(_)) {
                    self.trace.set(*slot, value.clone());
                }
                frame.set(*slot, value);
                self.eval(body, frame)
            }
            RGExpr::Observe { dist, value, body } => {
                if self.score_observes {
                    // Borrow both the observed value and the distribution
                    // arguments from the frame — no container is cloned.
                    let score = {
                        let observed = reval_ref(value, frame, self.ctx)?;
                        let args = self.eval_dist_args(dist, frame)?;
                        score_tilde(dist, observed.as_value(), &args, self.fused())?
                    };
                    self.score = self.score + score;
                }
                self.eval(body, frame)
            }
            RGExpr::ObserveSweep {
                sweep,
                fallback,
                body,
            } => {
                if !self.score_observes {
                    // Draw-only mode: the whole sweep (and its scalar
                    // fallback, whose body is a single observe) is a no-op.
                    // The scalar loop would clear its loop variable on exit;
                    // clearing an unset slot is harmless, so preserve that.
                    frame.clear(sweep.loop_slot);
                    return self.eval(body, frame);
                }
                match self.try_sweep(sweep, frame) {
                    Some(score) => {
                        self.score = self.score + score;
                        // The scalar loop clears its loop variable on exit;
                        // the lowered sweep preserves that.
                        frame.clear(sweep.loop_slot);
                    }
                    // Shapes (or an evaluation error) didn't admit the
                    // batched path: run the original loop, which reproduces
                    // the scalar result or error exactly.
                    None => {
                        self.eval(fallback, frame)?;
                    }
                }
                self.eval(body, frame)
            }
            RGExpr::Factor { value, body } => {
                if self.score_observes {
                    let v = reval_ref(value, frame, self.ctx)?;
                    self.score = self.score + v.as_value().sum_as_real()?;
                }
                self.eval(body, frame)
            }
            RGExpr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = reval_expr(cond, frame, self.ctx)?.as_real()?;
                if c.value() != 0.0 {
                    self.eval(then_branch, frame)
                } else {
                    self.eval(else_branch, frame)
                }
            }
            RGExpr::LetLoop {
                kind,
                loop_body,
                body,
            } => {
                match kind {
                    RLoopKind::Range { slot, lo, hi } => {
                        let lo = reval_expr(lo, frame, self.ctx)?.as_int()?;
                        let hi = reval_expr(hi, frame, self.ctx)?.as_int()?;
                        for i in lo..=hi {
                            frame.set(*slot, Value::Int(i));
                            self.eval(loop_body, frame)?;
                        }
                        frame.clear(*slot);
                    }
                    RLoopKind::ForEach { slot, collection } => {
                        let coll = reval_expr(collection, frame, self.ctx)?;
                        for i in 1..=coll.len() as i64 {
                            frame.set(*slot, coll.index(i)?);
                            self.eval(loop_body, frame)?;
                        }
                        frame.clear(*slot);
                    }
                    RLoopKind::While { cond } => {
                        let mut iterations = 0usize;
                        loop {
                            let c = reval_expr(cond, frame, self.ctx)?.as_real()?;
                            if c.value() == 0.0 {
                                break;
                            }
                            iterations += 1;
                            if iterations > 10_000_000 {
                                return Err(RuntimeError::new(
                                    "while loop exceeded the iteration budget",
                                ));
                            }
                            self.eval(loop_body, frame)?;
                        }
                    }
                }
                self.eval(body, frame)
            }
        }
    }

    fn eval_dist_args<'f>(
        &self,
        dist: &RDistCall,
        frame: &'f Frame<T>,
    ) -> Result<Vec<RefValue<'f, T>>, RuntimeError> {
        dist.args
            .iter()
            .map(|a| reval_ref(a, frame, self.ctx))
            .collect()
    }

    fn fused(&self) -> bool {
        self.ctx.resolved.fused
    }

    /// Attempts the batched evaluation of a lowered observation sweep.
    ///
    /// Returns the sweep's total log score, or `None` when the runtime
    /// shapes don't admit slice borrowing — a non-vector target, an
    /// out-of-window affine index, a non-scalar invariant argument, or any
    /// evaluation error — in which case the caller re-runs the retained
    /// scalar loop (which reproduces the exact scalar result or error).
    ///
    /// Evaluation order differs from the scalar loop only in grouping (all
    /// elements of one argument before the next); every evaluated expression
    /// is pure, so the observable semantics are identical.
    fn try_sweep(&mut self, sweep: &RSweep, frame: &mut Frame<T>) -> Option<T> {
        let lo = reval_expr(&sweep.lo, frame, self.ctx).ok()?.as_int().ok()?;
        let hi = reval_expr(&sweep.hi, frame, self.ctx).ok()?.as_int().ok()?;
        if hi < lo {
            // Empty range: the scalar loop scores nothing (and still clears
            // the loop variable, which our caller does).
            return Some(T::from_f64(0.0));
        }
        let n = (hi - lo + 1) as usize;

        // 1. Materialize invariant and element-wise arguments. Element-wise
        //    evaluation binds the loop slot per element, exactly like the
        //    scalar loop body would, writing into the workspace's pooled
        //    scratch buffers (or per-sweep locals when no workspace is
        //    attached).
        enum OwnedArg<T: Real> {
            Scalar(T),
            Elems,
            Indexed,
        }
        // The lowering pass only builds sweeps with <= 3 arguments (the
        // widest kernel arity), so everything below the per-element scratch
        // fits fixed-size buffers — no per-evaluation Vec for the argument
        // bookkeeping itself.
        let k = sweep.args.len();
        debug_assert!(k <= 3, "lowering admits at most 3 sweep arguments");
        if k > 3 {
            return None;
        }
        let mut local: [Vec<T>; 3];
        let scratch: &mut [Vec<T>; 3] = match &mut self.scratch {
            Some(s) => s,
            None => {
                local = [Vec::new(), Vec::new(), Vec::new()];
                &mut local
            }
        };
        let ctx = self.ctx;
        let mut owned: [OwnedArg<T>; 3] = [OwnedArg::Indexed, OwnedArg::Indexed, OwnedArg::Indexed];
        for ((spec, slot), buf) in sweep
            .args
            .iter()
            .zip(owned.iter_mut())
            .zip(scratch.iter_mut())
        {
            match spec {
                SweepArgSpec::Invariant(e) => {
                    match reval_expr(e, frame, ctx).ok()? {
                        Value::Real(x) => *slot = OwnedArg::Scalar(x),
                        Value::Int(i) => *slot = OwnedArg::Scalar(T::from_f64(i as f64)),
                        // Container-valued invariant arguments error on the
                        // scalar path for these families; let it report.
                        _ => return None,
                    }
                }
                SweepArgSpec::Elementwise(e) => {
                    buf.clear();
                    buf.reserve(n);
                    for v in lo..=hi {
                        frame.set(sweep.loop_slot, Value::Int(v));
                        buf.push(reval_expr(e, frame, ctx).ok()?.as_real().ok()?);
                    }
                    *slot = OwnedArg::Elems;
                }
                SweepArgSpec::Indexed(_) => {}
            }
        }
        let scratch: &[Vec<T>; 3] = scratch;

        // 2. Borrow the target window and the directly indexed argument
        //    windows as contiguous slices (no per-element RefValue
        //    indexing). The frame is read-only from here on.
        let frame_ro: &Frame<T> = frame;
        let target_base = reval_ref(&sweep.target.base, frame_ro, ctx).ok()?;
        let xs = slice_window(target_base.as_value(), lo, hi, sweep.target.offset)?;
        let mut indexed: [Option<RefValue<T>>; 3] = [None, None, None];
        for (spec, slot) in sweep.args.iter().zip(indexed.iter_mut()) {
            if let SweepArgSpec::Indexed(access) = spec {
                *slot = Some(reval_ref(&access.base, frame_ro, ctx).ok()?);
            }
        }
        let zero = T::from_f64(0.0);
        let mut args: [SweepArg<T>; 3] = [SweepArg::Scalar(zero); 3];
        for (j, spec) in sweep.args.iter().enumerate() {
            args[j] = match (spec, &owned[j], &indexed[j]) {
                (_, OwnedArg::Scalar(x), _) => SweepArg::Scalar(*x),
                (_, OwnedArg::Elems, _) => SweepArg::Reals(&scratch[j]),
                (SweepArgSpec::Indexed(access), OwnedArg::Indexed, Some(base)) => {
                    match slice_window(base.as_value(), lo, hi, access.offset)? {
                        SweepVals::Reals(v) => SweepArg::Reals(v),
                        SweepVals::Ints(v) => SweepArg::Ints(v),
                    }
                }
                _ => return None,
            };
        }

        // 3. One fused kernel call for the whole sweep.
        lpdf_sweep(sweep.kind, xs, &args[..k]).ok()
    }

    fn handle_sample(
        &mut self,
        slot: u32,
        dist: &RDistCall,
        frame: &mut Frame<T>,
    ) -> Result<Value<T>, RuntimeError> {
        match &self.mode {
            RMode::Trace(trace) => {
                let value = trace.get(slot).ok_or_else(|| {
                    RuntimeError::new(format!(
                        "trace is missing a value for sample site `{}`",
                        self.ctx.resolved.name_of(slot)
                    ))
                })?;
                let args = self.eval_dist_args(dist, frame)?;
                let score = score_tilde(dist, value, &args, self.fused())?;
                self.score = self.score + score;
                self.site_score = self.site_score + score;
                // The clone binds the traced value into the frame; the trace
                // itself stays untouched.
                Ok(value.clone())
            }
            RMode::Prior(rng) | RMode::Reparam(rng) => {
                let reparam = matches!(self.mode, RMode::Reparam(_));
                let args: Vec<Value<T>> = self
                    .eval_dist_args(dist, frame)?
                    .into_iter()
                    .map(RefValue::into_owned)
                    .collect();
                let mut dims: Vec<i64> = Vec::with_capacity(dist.shape.len());
                for s in &dist.shape {
                    dims.push(reval_expr(s, frame, self.ctx)?.as_int()?);
                }
                let value = draw_site(&dist.name, &args, &dims, rng, reparam)?;
                let score = score_tilde(dist, &value, &args, self.fused())?;
                self.score = self.score + score;
                self.site_score = self.site_score + score;
                Ok(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DistCall, GExpr, GProbProgram};
    use crate::resolved::resolve_program;
    use crate::value::Env;
    use rand::SeedableRng;
    use stan_frontend::ast::Expr;

    fn coin_program() -> GProbProgram {
        GProbProgram {
            body: GExpr::LetSample {
                name: "z".into(),
                dist: DistCall::new("uniform", vec![Expr::RealLit(0.0), Expr::RealLit(1.0)]),
                body: Box::new(GExpr::Observe {
                    dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
                    value: Expr::var("z"),
                    body: Box::new(GExpr::LetLoop {
                        kind: crate::ir::LoopKind::Range {
                            var: "i".into(),
                            lo: Expr::IntLit(1),
                            hi: Expr::var("N"),
                        },
                        state: vec![],
                        loop_body: Box::new(GExpr::Observe {
                            dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
                            value: Expr::Index(Box::new(Expr::var("x")), vec![Expr::var("i")]),
                            body: Box::new(GExpr::Unit),
                        }),
                        body: Box::new(GExpr::Return(Expr::var("z"))),
                    }),
                }),
            },
            ..Default::default()
        }
    }

    #[test]
    fn trace_mode_matches_string_interpreter() {
        let program = coin_program();
        let resolved = resolve_program(&program);
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(4));
        data.insert("x".into(), Value::IntArray(vec![1, 0, 1, 1]));
        // String-keyed baseline.
        let mut trace_env: Env<f64> = Env::new();
        trace_env.insert("z".into(), Value::Real(0.7));
        let expect = crate::interp::score_trace(&program.body, &data, &trace_env).unwrap();
        // Slot-resolved path.
        let mut frame = resolved.frame_from_env(&data);
        let mut trace = resolved.frame::<f64>();
        trace.set(resolved.slot_of("z").unwrap(), Value::Real(0.7));
        let ctx = RCtx::new(&resolved, &[], &crate::eval::NoExternals);
        let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
        let run = interp.run(&resolved.body, &mut frame).unwrap();
        assert!(
            (run.score - expect).abs() < 1e-15,
            "{} vs {expect}",
            run.score
        );
        assert_eq!(run.value, Value::Real(0.7));
        // Loop variable slot was cleared on exit.
        assert!(frame.get(resolved.slot_of("i").unwrap()).is_none());
    }

    #[test]
    fn prior_mode_draws_and_scores() {
        let program = coin_program();
        let resolved = resolve_program(&program);
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(4));
        data.insert("x".into(), Value::IntArray(vec![1, 0, 1, 1]));
        let ctx = RCtx::new(&resolved, &[], &crate::eval::NoExternals);
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(11)));
        for _ in 0..20 {
            let mut frame = resolved.frame_from_env(&data);
            let mut interp = RInterp::new(&ctx, RMode::Prior(rng.clone()));
            let run = interp.run(&resolved.body, &mut frame).unwrap();
            let z = run
                .trace
                .get(resolved.slot_of("z").unwrap())
                .unwrap()
                .as_real()
                .unwrap();
            assert!((0.0..=1.0).contains(&z));
            assert!(run.score.is_finite());
        }
    }

    #[test]
    fn lowered_sweeps_match_the_scalar_loop_and_fall_back_on_bad_windows() {
        let program = coin_program();
        let fused = resolve_program(&program);
        let scalar = crate::resolved::resolve_program_scalar(&program);
        assert_eq!(crate::resolved::count_sweeps(&fused.body), 1);
        assert_eq!(crate::resolved::count_sweeps(&scalar.body), 0);
        let mut data: Env<f64> = Env::new();
        data.insert("N".into(), Value::Int(4));
        data.insert("x".into(), Value::IntArray(vec![1, 0, 1, 1]));
        let run_on = |resolved: &crate::resolved::ResolvedProgram| {
            let mut frame = resolved.frame_from_env(&data);
            let mut trace = resolved.frame::<f64>();
            trace.set(resolved.slot_of("z").unwrap(), Value::Real(0.7));
            let ctx = RCtx::new(resolved, &[], &crate::eval::NoExternals);
            let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
            let run = interp.run(&resolved.body, &mut frame).unwrap();
            // Loop variable cleared on both paths.
            assert!(frame.get(resolved.slot_of("i").unwrap()).is_none());
            run.score
        };
        let a = run_on(&fused);
        let b = run_on(&scalar);
        assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        // Out-of-window bounds (N larger than the data vector): the sweep
        // falls back to the scalar loop, which reports the scalar error.
        data.insert("N".into(), Value::Int(9));
        let err_fused = {
            let mut frame = fused.frame_from_env(&data);
            let mut trace = fused.frame::<f64>();
            trace.set(fused.slot_of("z").unwrap(), Value::Real(0.7));
            let ctx = RCtx::new(&fused, &[], &crate::eval::NoExternals);
            let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
            interp.run(&fused.body, &mut frame).unwrap_err()
        };
        assert!(
            err_fused.message().contains("out of bounds"),
            "{}",
            err_fused.message()
        );
        // Empty ranges score nothing and still clear the loop slot.
        data.insert("N".into(), Value::Int(0));
        let mut frame = fused.frame_from_env(&data);
        let mut trace = fused.frame::<f64>();
        trace.set(fused.slot_of("z").unwrap(), Value::Real(0.7));
        let ctx = RCtx::new(&fused, &[], &crate::eval::NoExternals);
        let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
        let run = interp.run(&fused.body, &mut frame).unwrap();
        assert!(run.score.is_finite());
        assert!(frame.get(fused.slot_of("i").unwrap()).is_none());
    }

    #[test]
    fn unbound_slots_report_the_original_name() {
        let program = GProbProgram {
            body: GExpr::Return(Expr::var("mystery")),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        let ctx = RCtx::new(&resolved, &[], &crate::eval::NoExternals);
        let mut frame = resolved.frame::<f64>();
        let empty_trace = resolved.frame();
        let mut interp = RInterp::new(&ctx, RMode::Trace(&empty_trace));
        let err = interp.run(&resolved.body, &mut frame).unwrap_err();
        assert!(err.message().contains("mystery"), "{}", err.message());
    }
}
