//! `gprob` — the generative probabilistic intermediate language and runtime.
//!
//! This crate implements GProb, the small generative probabilistic language
//! of Section 3.2 of the paper, together with the runtime that the paper
//! delegates to Pyro / NumPyro:
//!
//! * [`ir`] — the GProb expression IR: `let`, `sample`, `observe`, `factor`,
//!   `return`, conditionals, and state-annotated loops.
//! * [`value`] / [`eval`] — the runtime value model and the evaluator for
//!   deterministic Stan expressions and statements (shared with the baseline
//!   `stan_ref` interpreter); this is the role Pyro's host language (Python /
//!   PyTorch) plays in the original system.
//! * [`interp`] — the probabilistic interpreter: trace-based density
//!   evaluation (score of a parameter assignment) and generative forward
//!   sampling, the two effect-handler modes the backends need.
//! * [`model`] — [`model::GModel`], a compiled GProb program packaged with
//!   its parameter table, exposing the unconstrained log-density interface
//!   consumed by the `inference` crate (NUTS, SVI, importance sampling).
//!
//! # Example
//!
//! Build the compiled coin model of Figure 2(b) by hand and score a trace:
//!
//! ```
//! use gprob::ir::{DistCall, GExpr};
//! use gprob::value::Value;
//! use stan_frontend::ast::Expr;
//!
//! // let z = sample(beta(1,1)) in observe(bernoulli(z), 1) ; return z
//! let body = GExpr::LetSample {
//!     name: "z".into(),
//!     dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
//!     body: Box::new(GExpr::Observe {
//!         dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
//!         value: Expr::IntLit(1),
//!         body: Box::new(GExpr::Return(Expr::var("z"))),
//!     }),
//! };
//! let mut trace = std::collections::HashMap::new();
//! trace.insert("z".to_string(), Value::Real(0.25f64));
//! let score = gprob::interp::score_trace(&body, &Default::default(), &trace).unwrap();
//! // beta(1,1) contributes 0, bernoulli(0.25) at 1 contributes ln(0.25)
//! assert!((score - 0.25f64.ln()).abs() < 1e-12);
//! ```

pub mod eval;
pub mod interp;
pub mod ir;
pub mod model;
pub mod value;

pub use ir::{DistCall, GExpr, GProbProgram, ParamInfo};
pub use model::GModel;
pub use value::{Env, RuntimeError, Value};
