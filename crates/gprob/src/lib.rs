//! `gprob` — the generative probabilistic intermediate language and runtime.
//!
//! This crate implements GProb, the small generative probabilistic language
//! of Section 3.2 of the paper, together with the runtime that the paper
//! delegates to Pyro / NumPyro:
//!
//! * [`ir`] — the GProb expression IR emitted by the `stan2gprob` compiler:
//!   `let`, `sample`, `observe`, `factor`, `return`, conditionals, and
//!   state-annotated loops. Variables are still *names* at this level.
//! * [`resolved`] — the slot-resolved form of that IR: a resolution pass
//!   interns every name once and rewrites each variable reference to a dense
//!   frame slot, and [`resolved::Frame`] replaces `HashMap<String, Value>`
//!   as the runtime environment.
//! * [`value`] / [`eval`] — the runtime value model and the *string-keyed*
//!   evaluator for deterministic Stan expressions and statements (shared
//!   with the baseline `stan_ref` interpreter, and still the engine for
//!   interpreted user-defined functions).
//! * [`reval`] — the slot-resolved evaluator and probabilistic interpreter:
//!   the mirror of [`eval`] / [`interp`] that the density hot path runs on.
//! * [`interp`] — the string-keyed probabilistic interpreter, retained for
//!   the SVI guide machinery and as the differential-testing baseline.
//! * [`model`] — [`model::GModel`], a compiled program instantiated with
//!   data, exposing the unconstrained log-density interface consumed by the
//!   `inference` crate (NUTS, SVI, importance sampling).
//! * [`workspace`] — pooled per-chain scratch state
//!   ([`workspace::DensityWorkspace`] / [`workspace::GradWorkspace`]):
//!   `GModel::log_density_with` reuses the lifted data frame, the trace
//!   frame and the tape-leaf buffer across evaluations, resetting only the
//!   slots the body can write. One workspace per chain is what makes
//!   multi-chain samplers shardable over threads.
//! * [`dprog`] — tape-free density programs: at bind time the resolved body
//!   is lowered to a flat register-addressed op list evaluated with one
//!   forward `f64` pass and one analytic reverse sweep (no Wengert-list
//!   re-recording per gradient). Bodies with parameter-dependent control
//!   flow, user-function calls or unsupported builtins *decline* with a
//!   stated reason and keep the `Var`/tape path, which also remains the
//!   differential oracle (`tests/dprog_equivalence.rs`).
//!
//! # Architecture: compile-time resolution
//!
//! Inference evaluates `log_density` thousands of times per chain, and the
//! tree-walking evaluator historically resolved every variable read through
//! a `HashMap<String, Value<T>>` — string hashing dominated the NUTS hot
//! path. The pipeline now resolves names exactly once, at compile time:
//!
//! ```text
//!  Stan source
//!      │  stan_frontend (lex, parse, typecheck; symbols::Interner)
//!      ▼
//!  ast::Program
//!      │  stan2gprob (generative / comprehensive / mixed schemes)
//!      ▼
//!  ir::GProbProgram            names: String            ── codegen → Pyro/NumPyro
//!      │  resolved::resolve_program  (Interner + ScopeStack)
//!      ▼
//!  resolved::ResolvedProgram   names: dense u32 slots
//!      │  model::GModel::new  (bind data → Frame template)
//!      ▼
//!  reval::RInterp over resolved::Frame<T>   ── log_density / gradients
//! ```
//!
//! Key invariants:
//!
//! * **Flat namespace fidelity.** The paper's dynamic environment is a flat
//!   map (an insert overwrites any same-named binding; loop indices are
//!   removed after their loop), so resolution allocates one slot per
//!   distinct name and clears loop-index slots on exit. The differential
//!   suite (`tests/slot_equivalence.rs`) pins the resolved density to the
//!   string-keyed baseline to 1e-12 across the whole `model_zoo` corpus.
//! * **One value model.** Both runtimes share [`value::Value`], the binary
//!   operators, the builtin library, and distribution scoring/sampling —
//!   they cannot drift apart semantically.
//! * **Name-addressed boundaries.** Public trace APIs (`GModel::constrain`,
//!   `interp::RunResult::trace`, posterior extraction) remain string-keyed;
//!   frames cross to names only at those boundaries. External functions
//!   (DeepStan networks) and interpreted user functions reach the
//!   environment through [`value::EnvView`], implemented by both `Env` and
//!   `Frame` views.
//! * **Baseline retained.** [`model::GModel::log_density_baseline`] runs the
//!   pre-resolution path for differential tests and benchmarks
//!   (`benches/density_eval.rs` reports both).
//! * **No per-evaluation setup.** Resolution also hoists everything the
//!   evaluator used to rebuild per density call: the user-function dispatch
//!   table lives in [`resolved::ResolvedProgram::fn_table`] (no `String`
//!   keys cloned per evaluation), every `sample`/`observe` site carries its
//!   [`probdist::DistKind`] (no distribution-name matching per score), and
//!   [`resolved::ResolvedProgram::written_slots`] lets a pooled
//!   [`workspace::DensityWorkspace`] skip re-cloning data between
//!   evaluations.
//! * **Vectorized observe sweeps.** Resolution lowers counted element-wise
//!   observation loops (`for (i in 1:N) y[i] ~ normal(mu + b * x[i], s)`)
//!   into batched [`resolved::RSweep`] sites: density evaluation borrows
//!   the observed window as one contiguous slice and scores it through
//!   [`probdist::lpdf_sweep`], whose analytic reverse rule records a single
//!   fused multi-parent tape node per sweep instead of several nodes per
//!   element. Whole-container `~` statements take the same kernels through
//!   [`eval::tilde_lpdf_kind_batched`]. Non-matching loops (indirect
//!   indices, multi-statement bodies, recurrences) keep the scalar path,
//!   and every lowered sweep retains its original loop as a runtime
//!   fallback, so errors and out-of-pattern shapes behave identically;
//!   [`resolved::resolve_program_scalar`] / [`model::GModel::new_scalar`]
//!   expose the unlowered configuration for differential testing.
//!
//! # Example
//!
//! Build the compiled coin model of Figure 2(b) by hand and score a trace:
//!
//! ```
//! use gprob::ir::{DistCall, GExpr};
//! use gprob::value::Value;
//! use stan_frontend::ast::Expr;
//!
//! // let z = sample(beta(1,1)) in observe(bernoulli(z), 1) ; return z
//! let body = GExpr::LetSample {
//!     name: "z".into(),
//!     dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
//!     body: Box::new(GExpr::Observe {
//!         dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
//!         value: Expr::IntLit(1),
//!         body: Box::new(GExpr::Return(Expr::var("z"))),
//!     }),
//! };
//! let mut trace = std::collections::HashMap::new();
//! trace.insert("z".to_string(), Value::Real(0.25f64));
//! let score = gprob::interp::score_trace(&body, &Default::default(), &trace).unwrap();
//! // beta(1,1) contributes 0, bernoulli(0.25) at 1 contributes ln(0.25)
//! assert!((score - 0.25f64.ln()).abs() < 1e-12);
//! ```
//!
//! The same program through the slot-resolved runtime:
//!
//! ```
//! use gprob::ir::{DistCall, GExpr, GProbProgram};
//! use gprob::resolved::resolve_program;
//! use gprob::reval::{RCtx, RInterp, RMode};
//! use gprob::value::Value;
//! use stan_frontend::ast::Expr;
//!
//! let program = GProbProgram {
//!     body: GExpr::LetSample {
//!         name: "z".into(),
//!         dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
//!         body: Box::new(GExpr::Observe {
//!             dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
//!             value: Expr::IntLit(1),
//!             body: Box::new(GExpr::Return(Expr::var("z"))),
//!         }),
//!     },
//!     ..Default::default()
//! };
//! let resolved = resolve_program(&program);
//! let mut trace = resolved.frame::<f64>();
//! trace.set(resolved.slot_of("z").unwrap(), Value::Real(0.25));
//! let ctx = RCtx::new(&resolved, &[], &gprob::eval::NoExternals);
//! let mut frame = resolved.frame();
//! let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
//! let run = interp.run(&resolved.body, &mut frame).unwrap();
//! assert!((run.score - 0.25f64.ln()).abs() < 1e-12);
//! ```

pub mod dprog;
pub mod eval;
pub mod gq;
pub mod interp;
pub mod ir;
pub mod model;
pub mod resolved;
pub mod reval;
pub mod value;
pub mod workspace;

pub use dprog::{DProg, DProgWorkspace, Decline};
pub use gq::{count_gq_sweeps, resolve_gq, resolve_gq_scalar, GqWorkspace, ResolvedGq};
pub use ir::{DistCall, GExpr, GProbProgram, ParamInfo};
pub use model::GModel;
pub use resolved::{count_sweeps, resolve_program, resolve_program_scalar, Frame, ResolvedProgram};
pub use value::{Env, EnvView, RuntimeError, Value};
pub use workspace::{DensityWorkspace, GradWorkspace};
