//! The slot-resolved form of the GProb IR and its runtime frame.
//!
//! The tree-walking runtime historically executed [`crate::ir::GExpr`]
//! directly, looking every variable up in a `HashMap<String, Value<T>>`.
//! String hashing on each read dominated the NUTS log-density hot path. This
//! module implements the standard compiler fix: a resolution pass
//! ([`resolve_program`]) that interns every name once (using
//! [`stan_frontend::symbols`]) and rewrites the IR so each variable carries
//! its dense frame slot. The runtime environment becomes a [`Frame`] — a
//! flat `Vec<Option<Value<T>>>` indexed by slot — and the evaluator
//! (`crate::reval`) never hashes a string again.
//!
//! Semantics are preserved exactly. The dynamic environment of the paper's
//! semantics is a single flat namespace (an insert overwrites any previous
//! binding of that name; loop indices are removed after the loop), so the
//! resolver allocates **one slot per distinct name** — the symbol index is
//! the slot index — and marks loop indices for clearing on loop exit
//! (lexically scoped resolution via
//! [`stan_frontend::symbols::ScopeStack`] is reserved for user-function
//! bodies). The differential suite in
//! `tests/slot_equivalence.rs` pins the resolved density to the string-keyed
//! baseline to 1e-12 across the whole model corpus.

use minidiff::Real;
use probdist::DistKind;
use stan_frontend::ast::{BaseType, Decl, Expr, FunDecl, UnOp};
use stan_frontend::symbols::Interner;

use crate::eval::FnTable;
use crate::ir::{DistCall, GExpr, GProbProgram, LoopKind, ParamInfo};
use crate::value::{Env, EnvView, Value};

/// A runtime variable frame: one pre-allocated slot per resolved name.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<T: Real> {
    slots: Vec<Option<Value<T>>>,
}

impl<T: Real> Frame<T> {
    /// An empty frame with `n` slots.
    pub fn new(n: usize) -> Self {
        Frame {
            slots: vec![None; n],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the frame has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads a slot.
    #[inline]
    pub fn get(&self, slot: u32) -> Option<&Value<T>> {
        self.slots[slot as usize].as_ref()
    }

    /// Writes a slot.
    #[inline]
    pub fn set(&mut self, slot: u32, value: Value<T>) {
        self.slots[slot as usize] = Some(value);
    }

    /// Mutable access to a slot's contents.
    #[inline]
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut Value<T>> {
        self.slots[slot as usize].as_mut()
    }

    /// Unbinds a slot (the slot-frame analog of `HashMap::remove`).
    #[inline]
    pub fn clear(&mut self, slot: u32) {
        self.slots[slot as usize] = None;
    }

    /// Lifts a plain `f64` frame into any scalar type (constants, no
    /// gradient) — the slot-frame analog of [`crate::value::lift_env`].
    pub fn lift(template: &Frame<f64>) -> Frame<T> {
        Frame {
            slots: template
                .slots
                .iter()
                .map(|s| s.as_ref().map(Value::lift))
                .collect(),
        }
    }

    /// Restores the listed slots to their state in `template` — the reset
    /// step of a pooled density workspace. Slots that are unbound in the
    /// template (parameters, locals) are simply cleared, so data values are
    /// only re-cloned when the model actually shadowed them.
    pub fn reset_slots_from(&mut self, template: &Frame<T>, slots: &[u32]) {
        for &slot in slots {
            let i = slot as usize;
            match &template.slots[i] {
                Some(v) => match &mut self.slots[i] {
                    Some(dst) => dst.clone_from(v),
                    dst @ None => *dst = Some(v.clone()),
                },
                None => self.slots[i] = None,
            }
        }
    }

    /// Converts the frame back to a string-keyed environment — used only at
    /// the public trace API boundary. Frames shorter than the interner
    /// (e.g. the empty trace density evaluation returns) convert to a
    /// correspondingly partial environment.
    pub fn to_env(&self, interner: &Interner) -> Env<T> {
        let mut env = Env::new();
        for (sym, name) in interner.iter() {
            if let Some(Some(v)) = self.slots.get(sym.index()) {
                env.insert(name.to_string(), v.clone());
            }
        }
        env
    }
}

/// A name-addressed view of a frame (for externals and user functions).
pub struct FrameView<'a, T: Real> {
    /// The underlying frame.
    pub frame: &'a Frame<T>,
    /// The symbol table mapping names to slots.
    pub interner: &'a Interner,
}

impl<T: Real> EnvView<T> for FrameView<'_, T> {
    fn get_var(&self, name: &str) -> Option<&Value<T>> {
        let idx = self.interner.lookup(name)?.index();
        self.frame.slots.get(idx)?.as_ref()
    }
    fn for_each_var(&self, f: &mut dyn FnMut(&str, &Value<T>)) {
        for (sym, name) in self.interner.iter() {
            if let Some(Some(v)) = self.frame.slots.get(sym.index()) {
                f(name, v);
            }
        }
    }
}

/// How a call site dispatches, decided at resolution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A user-defined function (index into [`GProbProgram::functions`]).
    User(u32),
    /// A standard-library builtin (or an external hook, probed at runtime).
    Builtin,
}

/// A slot-resolved expression. Mirrors [`stan_frontend::ast::Expr`] with
/// variable references replaced by frame slots.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// String literal (evaluates to unit, as in the string evaluator).
    StringLit(String),
    /// Variable read through its resolved slot.
    Slot(u32),
    /// Function call with a resolved dispatch target.
    Call(String, CallTarget, Vec<RExpr>),
    /// Binary operation.
    Binary(stan_frontend::ast::BinOp, Box<RExpr>, Box<RExpr>),
    /// Unary operation.
    Unary(UnOp, Box<RExpr>),
    /// Indexing; range indices become [`RIndex::Slice`].
    Index(Box<RExpr>, Vec<RIndex>),
    /// Array literal.
    ArrayLit(Vec<RExpr>),
    /// Vector literal.
    VectorLit(Vec<RExpr>),
    /// Range expression `lo:hi`.
    Range(Box<RExpr>, Box<RExpr>),
    /// Conditional operator.
    Ternary(Box<RExpr>, Box<RExpr>, Box<RExpr>),
}

/// One index position of an [`RExpr::Index`].
#[derive(Debug, Clone, PartialEq)]
pub enum RIndex {
    /// A single 1-based index.
    One(RExpr),
    /// A slice `lo:hi`.
    Slice(RExpr, RExpr),
}

/// A resolved distribution call.
#[derive(Debug, Clone, PartialEq)]
pub struct RDistCall {
    /// Distribution name (Stan spelling).
    pub name: String,
    /// The distribution family, resolved once here so density evaluation
    /// never string-matches the name. `None` for unknown families, which
    /// keep erroring at evaluation time with the original name.
    pub kind: Option<DistKind>,
    /// Argument expressions.
    pub args: Vec<RExpr>,
    /// Shape expressions of the sampled value.
    pub shape: Vec<RExpr>,
}

/// The element kind of a resolved declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum RDeclKind {
    /// `int`
    Int,
    /// `real`
    Real,
    /// All vector-like types (`vector`, `row_vector`, `simplex`, ...).
    Vector(RExpr),
    /// `matrix[r, c]`
    Matrix(RExpr, RExpr),
    /// Square-matrix types (`cov_matrix`, `corr_matrix`, ...).
    Square(RExpr),
}

/// A resolved local declaration (carries everything `default_value` needs).
#[derive(Debug, Clone, PartialEq)]
pub struct RDecl {
    /// Target slot.
    pub slot: u32,
    /// Element kind.
    pub kind: RDeclKind,
    /// Array dimensions (outermost first).
    pub dims: Vec<RExpr>,
    /// Optional initializer.
    pub init: Option<RExpr>,
}

/// Loop headers in resolved form. The loop variable slot is cleared when the
/// loop exits, matching the string runtime's `env.remove(var)`.
#[derive(Debug, Clone, PartialEq)]
pub enum RLoopKind {
    /// `for (var in lo:hi)`
    Range {
        /// Loop variable slot.
        slot: u32,
        /// Lower bound.
        lo: RExpr,
        /// Upper bound.
        hi: RExpr,
    },
    /// `for (var in collection)`
    ForEach {
        /// Loop variable slot.
        slot: u32,
        /// Collection expression.
        collection: RExpr,
    },
    /// `while (cond)`
    While {
        /// Condition.
        cond: RExpr,
    },
}

/// A batched element access `base[v + offset]`, where `v` ranges over the
/// sweep's loop counter. The base expression is loop-invariant, so the
/// runtime evaluates it once and borrows the window `[lo+offset, hi+offset]`
/// as one contiguous slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAccess {
    /// Loop-invariant container expression (after stripping the final,
    /// affine index).
    pub base: RExpr,
    /// Constant offset of the affine index `loop_var + offset`.
    pub offset: i64,
}

/// How one distribution argument of an [`RSweep`] is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepArgSpec {
    /// Loop-invariant: evaluated once per sweep, broadcast as a scalar.
    Invariant(RExpr),
    /// A direct affine element read `base[v + offset]`: the runtime borrows
    /// the whole window as a slice (no per-element evaluation at all).
    Indexed(SweepAccess),
    /// An expression that mentions the loop variable only inside affine
    /// element reads (e.g. `alpha + beta * x[i]`): evaluated once per
    /// element into a scratch vector, then scored by the batch kernel. The
    /// per-element *density* work is still fused; only the argument
    /// expression itself is interpreted per element.
    Elementwise(RExpr),
}

/// A lowered observation sweep: the counted loop
/// `for (v in lo:hi) target[v + offset] ~ kind(args...)` collapsed into one
/// batched observe site. Produced by the sweep-lowering pass of
/// [`resolve_program`]; scored by `crate::reval` through
/// [`probdist::lpdf_sweep`], so density evaluation runs one fused kernel
/// (and, on the gradient path, records one fused tape node) instead of one
/// scalar site per element.
#[derive(Debug, Clone, PartialEq)]
pub struct RSweep {
    /// The loop-variable slot. Cleared when the sweep completes, exactly as
    /// the scalar loop clears it on exit.
    pub loop_slot: u32,
    /// Loop lower bound (loop-invariant).
    pub lo: RExpr,
    /// Loop upper bound (loop-invariant).
    pub hi: RExpr,
    /// The observed container window.
    pub target: SweepAccess,
    /// Distribution family (always one of the sweep-kernel families).
    pub kind: DistKind,
    /// Distribution arguments.
    pub args: Vec<SweepArgSpec>,
}

/// A slot-resolved GProb expression in continuation-passing form, mirroring
/// [`GExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum RGExpr {
    /// `return(e)`.
    Return(RExpr),
    /// `return(())`.
    Unit,
    /// `let slot = default(decl) in body`.
    LetDecl {
        /// The resolved declaration.
        decl: RDecl,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `let slot = value in body`.
    LetDet {
        /// Target slot.
        slot: u32,
        /// Value expression.
        value: RExpr,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `let slot[indices] = value in body`.
    LetIndexed {
        /// Updated slot.
        slot: u32,
        /// Index expressions.
        indices: Vec<RExpr>,
        /// New cell value.
        value: RExpr,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `let slot = sample(dist) in body`. The slot doubles as the trace key.
    LetSample {
        /// Site / variable slot.
        slot: u32,
        /// The distribution sampled from.
        dist: RDistCall,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `let () = observe(dist, value) in body`.
    Observe {
        /// The observed distribution.
        dist: RDistCall,
        /// The observed value.
        value: RExpr,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `let () = factor(value) in body`.
    Factor {
        /// Log-score increment.
        value: RExpr,
        /// Continuation.
        body: Box<RGExpr>,
    },
    /// `if (cond) then_branch else else_branch`.
    If {
        /// Condition.
        cond: RExpr,
        /// Then branch.
        then_branch: Box<RGExpr>,
        /// Else branch.
        else_branch: Box<RGExpr>,
    },
    /// A state-annotated loop.
    LetLoop {
        /// Loop kind and header.
        kind: RLoopKind,
        /// The loop body.
        loop_body: Box<RGExpr>,
        /// Continuation after the loop.
        body: Box<RGExpr>,
    },
    /// A lowered element-wise observation loop (see [`RSweep`]). The
    /// original scalar loop is retained as `fallback`: if the runtime shapes
    /// don't admit slice borrowing (non-vector base, out-of-window bounds,
    /// non-scalar invariant argument), evaluation re-runs the loop
    /// element-by-element, which also reproduces the scalar path's exact
    /// errors.
    ObserveSweep {
        /// The batched site.
        sweep: RSweep,
        /// The original scalar loop (continuation truncated to `Unit`).
        fallback: Box<RGExpr>,
        /// Continuation after the sweep.
        body: Box<RGExpr>,
    },
}

/// Parameter metadata with resolved shape / bound expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct RParamInfo {
    /// Frame slot of the parameter (doubles as its trace key).
    pub slot: u32,
    /// Parameter name (reporting only).
    pub name: String,
    /// Shape expressions.
    pub shape: Vec<RExpr>,
    /// Lower bound, if declared.
    pub lower: Option<RExpr>,
    /// Upper bound, if declared.
    pub upper: Option<RExpr>,
}

/// A fully resolved GProb program: the slot-annotated body plus the symbol
/// table needed to cross back to the name-addressed world at API boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedProgram {
    /// The symbol table; symbol indices coincide with frame slots.
    pub interner: Interner,
    /// Frame size.
    pub n_slots: usize,
    /// Resolved parameter table.
    pub params: Vec<RParamInfo>,
    /// The resolved model body.
    pub body: RGExpr,
    /// The user-function dispatch table, hoisted here so evaluation contexts
    /// never rebuild (and re-clone the `String` keys of) the per-evaluation
    /// `HashMap` the evaluators historically used.
    pub fn_table: FnTable,
    /// Every slot the body can write (sorted, deduplicated): `let` targets,
    /// sample sites, indexed assignments and loop variables. A pooled
    /// density workspace only needs to reset these between evaluations —
    /// data slots outside this set are never dirtied.
    pub written_slots: Vec<u32>,
    /// Whether this program was resolved with batched scoring: element-wise
    /// observation loops lowered to [`RGExpr::ObserveSweep`] sites and
    /// vectorized `~` statements scored through the fused sweep kernels.
    /// `false` for [`resolve_program_scalar`], the element-by-element
    /// configuration kept for differential testing and benchmarking.
    pub fused: bool,
}

impl ResolvedProgram {
    /// The frame slot bound to `name`, if the program mentions it.
    pub fn slot_of(&self, name: &str) -> Option<u32> {
        self.interner.lookup(name).map(|s| s.index() as u32)
    }

    /// The name bound to a frame slot.
    pub fn name_of(&self, slot: u32) -> &str {
        self.interner.name_at(slot as usize).unwrap_or("<unknown>")
    }

    /// Builds an empty frame of the right size.
    pub fn frame<T: Real>(&self) -> Frame<T> {
        Frame::new(self.n_slots)
    }

    /// Fills a frame from a string-keyed environment (data binding).
    pub fn frame_from_env<T: Real>(&self, env: &Env<T>) -> Frame<T> {
        let mut frame = self.frame();
        for (k, v) in env {
            if let Some(slot) = self.slot_of(k) {
                frame.set(slot, v.clone());
            }
        }
        frame
    }
}

/// The resolution pass: walks a compiled [`GProbProgram`] and produces its
/// slot-annotated [`ResolvedProgram`], then lowers counted element-wise
/// observation loops into batched [`RGExpr::ObserveSweep`] sites (see
/// [`RSweep`] for the pattern). Never fails — unbound names resolve to
/// (initially empty) slots, preserving the runtime's "unbound variable"
/// errors with the original names.
pub fn resolve_program(program: &GProbProgram) -> ResolvedProgram {
    resolve_program_with(program, true)
}

/// [`resolve_program`] without sweep lowering or batched scoring: every
/// observation is evaluated element by element, exactly as before the
/// batching pass existed. This is the comparison configuration used by the
/// sweep differential suite and the `sweep-vs-scalar` benchmark rows.
pub fn resolve_program_scalar(program: &GProbProgram) -> ResolvedProgram {
    resolve_program_with(program, false)
}

fn resolve_program_with(program: &GProbProgram, fused: bool) -> ResolvedProgram {
    let mut r = Resolver::new(&program.functions);

    // Data declarations, transformed-data locals, and function/argument
    // names are interned first so every variable the data environment can
    // supply has a slot (user-defined functions see that environment).
    for d in &program.data {
        r.slot_for(&d.name);
        for dim in &d.dims {
            r.resolve_expr(dim);
        }
    }
    if let Some(td) = &program.transformed_data {
        r.intern_stmts(&td.stmts);
    }

    let params: Vec<RParamInfo> = program.params.iter().map(|p| r.resolve_param(p)).collect();

    let body = r.resolve_gexpr(&program.body);
    let body = if fused { lower_sweeps(body) } else { body };

    let mut written_slots = Vec::new();
    collect_written_slots(&body, &mut written_slots);
    written_slots.sort_unstable();
    written_slots.dedup();

    ResolvedProgram {
        n_slots: r.interner.len(),
        interner: r.interner,
        params,
        body,
        fn_table: FnTable::new(&program.functions),
        written_slots,
        fused,
    }
}

/// Collects every frame slot a resolved body can write.
fn collect_written_slots(e: &RGExpr, out: &mut Vec<u32>) {
    match e {
        RGExpr::Unit | RGExpr::Return(_) => {}
        RGExpr::LetDecl { decl, body } => {
            out.push(decl.slot);
            collect_written_slots(body, out);
        }
        RGExpr::LetDet { slot, body, .. }
        | RGExpr::LetIndexed { slot, body, .. }
        | RGExpr::LetSample { slot, body, .. } => {
            out.push(*slot);
            collect_written_slots(body, out);
        }
        RGExpr::Observe { body, .. } | RGExpr::Factor { body, .. } => {
            collect_written_slots(body, out);
        }
        RGExpr::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_written_slots(then_branch, out);
            collect_written_slots(else_branch, out);
        }
        RGExpr::LetLoop {
            kind,
            loop_body,
            body,
        } => {
            match kind {
                RLoopKind::Range { slot, .. } | RLoopKind::ForEach { slot, .. } => {
                    out.push(*slot);
                }
                RLoopKind::While { .. } => {}
            }
            collect_written_slots(loop_body, out);
            collect_written_slots(body, out);
        }
        RGExpr::ObserveSweep {
            sweep,
            fallback,
            body,
        } => {
            out.push(sweep.loop_slot);
            collect_written_slots(fallback, out);
            collect_written_slots(body, out);
        }
    }
}

/// Number of [`RGExpr::ObserveSweep`] sites in a resolved body — used by
/// tests and benchmarks to assert which loop shapes lowered and which
/// declined.
pub fn count_sweeps(e: &RGExpr) -> usize {
    match e {
        RGExpr::Unit | RGExpr::Return(_) => 0,
        RGExpr::LetDecl { body, .. }
        | RGExpr::LetDet { body, .. }
        | RGExpr::LetIndexed { body, .. }
        | RGExpr::LetSample { body, .. }
        | RGExpr::Observe { body, .. }
        | RGExpr::Factor { body, .. } => count_sweeps(body),
        RGExpr::If {
            then_branch,
            else_branch,
            ..
        } => count_sweeps(then_branch) + count_sweeps(else_branch),
        RGExpr::LetLoop {
            loop_body, body, ..
        } => count_sweeps(loop_body) + count_sweeps(body),
        RGExpr::ObserveSweep { body, .. } => 1 + count_sweeps(body),
    }
}

/// Whether an expression reads the given slot anywhere.
pub(crate) fn mentions_slot(e: &RExpr, slot: u32) -> bool {
    match e {
        RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) => false,
        RExpr::Slot(s) => *s == slot,
        RExpr::Call(_, _, args) => args.iter().any(|a| mentions_slot(a, slot)),
        RExpr::Binary(_, a, b) | RExpr::Range(a, b) => {
            mentions_slot(a, slot) || mentions_slot(b, slot)
        }
        RExpr::Unary(_, a) => mentions_slot(a, slot),
        RExpr::Index(base, indices) => {
            mentions_slot(base, slot)
                || indices.iter().any(|i| match i {
                    RIndex::One(e) => mentions_slot(e, slot),
                    RIndex::Slice(a, b) => mentions_slot(a, slot) || mentions_slot(b, slot),
                })
        }
        RExpr::ArrayLit(items) | RExpr::VectorLit(items) => {
            items.iter().any(|i| mentions_slot(i, slot))
        }
        RExpr::Ternary(c, a, b) => {
            mentions_slot(c, slot) || mentions_slot(a, slot) || mentions_slot(b, slot)
        }
    }
}

/// Parses an index expression affine in the loop variable with unit stride:
/// `v`, `v + c`, `c + v`, or `v - c`, returning the constant offset.
pub(crate) fn affine_offset(e: &RExpr, slot: u32) -> Option<i64> {
    use stan_frontend::ast::BinOp;
    match e {
        RExpr::Slot(s) if *s == slot => Some(0),
        RExpr::Binary(BinOp::Add, a, b) => match (&**a, &**b) {
            (RExpr::Slot(s), RExpr::IntLit(c)) if *s == slot => Some(*c),
            (RExpr::IntLit(c), RExpr::Slot(s)) if *s == slot => Some(*c),
            _ => None,
        },
        RExpr::Binary(BinOp::Sub, a, b) => match (&**a, &**b) {
            (RExpr::Slot(s), RExpr::IntLit(c)) if *s == slot => Some(-*c),
            _ => None,
        },
        _ => None,
    }
}

/// Splits `base[..., v + c]` into a loop-invariant base plus the affine
/// offset: the final index must be affine in the loop variable and every
/// earlier index (and the base itself) loop-invariant.
pub(crate) fn split_access(e: &RExpr, slot: u32) -> Option<SweepAccess> {
    let RExpr::Index(base, indices) = e else {
        return None;
    };
    if mentions_slot(base, slot) {
        return None;
    }
    let (last, earlier) = indices.split_last()?;
    let RIndex::One(last) = last else {
        return None;
    };
    let offset = affine_offset(last, slot)?;
    let invariant = |i: &RIndex| match i {
        RIndex::One(e) => !mentions_slot(e, slot),
        RIndex::Slice(a, b) => !mentions_slot(a, slot) && !mentions_slot(b, slot),
    };
    if !earlier.iter().all(invariant) {
        return None;
    }
    let base = if earlier.is_empty() {
        (**base).clone()
    } else {
        RExpr::Index(base.clone(), earlier.to_vec())
    };
    Some(SweepAccess { base, offset })
}

/// Whether every occurrence of the loop variable inside `e` is as a
/// unit-stride affine element index (so per-element evaluation of `e` over
/// the counter range is a pure map over the indexed containers).
fn affine_only(e: &RExpr, slot: u32) -> bool {
    match e {
        RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) => true,
        RExpr::Slot(s) => *s != slot,
        RExpr::Call(_, _, args) => args.iter().all(|a| affine_only(a, slot)),
        RExpr::Binary(_, a, b) | RExpr::Range(a, b) => affine_only(a, slot) && affine_only(b, slot),
        RExpr::Unary(_, a) => affine_only(a, slot),
        RExpr::Index(base, indices) => {
            affine_only(base, slot)
                && indices.iter().all(|i| match i {
                    RIndex::One(ix) => affine_offset(ix, slot).is_some() || affine_only(ix, slot),
                    RIndex::Slice(a, b) => !mentions_slot(a, slot) && !mentions_slot(b, slot),
                })
        }
        RExpr::ArrayLit(items) | RExpr::VectorLit(items) => {
            items.iter().all(|i| affine_only(i, slot))
        }
        RExpr::Ternary(c, a, b) => {
            affine_only(c, slot) && affine_only(a, slot) && affine_only(b, slot)
        }
    }
}

pub(crate) fn classify_arg(e: &RExpr, slot: u32) -> Option<SweepArgSpec> {
    if !mentions_slot(e, slot) {
        return Some(SweepArgSpec::Invariant(e.clone()));
    }
    if let Some(access) = split_access(e, slot) {
        return Some(SweepArgSpec::Indexed(access));
    }
    if affine_only(e, slot) {
        return Some(SweepArgSpec::Elementwise(e.clone()));
    }
    None
}

/// Matches the lowerable loop pattern: a counted `for` whose body is a
/// single scalar `observe` of an affine element of a loop-invariant
/// container, from a sweep-kernel family, with arguments that are
/// loop-invariant, directly affine-indexed, or affine-only expressions.
fn match_sweep(kind: &RLoopKind, loop_body: &RGExpr) -> Option<RSweep> {
    let RLoopKind::Range { slot, lo, hi } = kind else {
        return None;
    };
    if mentions_slot(lo, *slot) || mentions_slot(hi, *slot) {
        return None;
    }
    let RGExpr::Observe { dist, value, body } = loop_body else {
        return None;
    };
    if !matches!(**body, RGExpr::Unit) {
        return None;
    }
    let dist_kind = dist.kind?;
    if !probdist::supports_sweep(dist_kind) || !dist.shape.is_empty() {
        return None;
    }
    // Every sweep kernel takes at most 3 arguments; declining longer
    // (malformed) argument lists here lets the runtime evaluate sweeps into
    // fixed-size buffers, and leaves their error reporting to the scalar
    // path.
    if dist.args.len() > 3 {
        return None;
    }
    let target = split_access(value, *slot)?;
    let args: Vec<SweepArgSpec> = dist
        .args
        .iter()
        .map(|a| classify_arg(a, *slot))
        .collect::<Option<_>>()?;
    Some(RSweep {
        loop_slot: *slot,
        lo: lo.clone(),
        hi: hi.clone(),
        target,
        kind: dist_kind,
        args,
    })
}

/// The sweep-lowering pass: rewrites every matching counted observation loop
/// (anywhere in the body, including inside outer loops and branches) into an
/// [`RGExpr::ObserveSweep`], keeping the original loop as the runtime
/// fallback. Non-matching loops are left untouched.
fn lower_sweeps(e: RGExpr) -> RGExpr {
    match e {
        RGExpr::Unit | RGExpr::Return(_) => e,
        RGExpr::LetDecl { decl, body } => RGExpr::LetDecl {
            decl,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::LetDet { slot, value, body } => RGExpr::LetDet {
            slot,
            value,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::LetIndexed {
            slot,
            indices,
            value,
            body,
        } => RGExpr::LetIndexed {
            slot,
            indices,
            value,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::LetSample { slot, dist, body } => RGExpr::LetSample {
            slot,
            dist,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::Observe { dist, value, body } => RGExpr::Observe {
            dist,
            value,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::Factor { value, body } => RGExpr::Factor {
            value,
            body: Box::new(lower_sweeps(*body)),
        },
        RGExpr::If {
            cond,
            then_branch,
            else_branch,
        } => RGExpr::If {
            cond,
            then_branch: Box::new(lower_sweeps(*then_branch)),
            else_branch: Box::new(lower_sweeps(*else_branch)),
        },
        RGExpr::LetLoop {
            kind,
            loop_body,
            body,
        } => {
            let loop_body = Box::new(lower_sweeps(*loop_body));
            let body = Box::new(lower_sweeps(*body));
            match match_sweep(&kind, &loop_body) {
                Some(sweep) => RGExpr::ObserveSweep {
                    sweep,
                    fallback: Box::new(RGExpr::LetLoop {
                        kind,
                        loop_body,
                        body: Box::new(RGExpr::Unit),
                    }),
                    body,
                },
                None => RGExpr::LetLoop {
                    kind,
                    loop_body,
                    body,
                },
            }
        }
        // Lowering runs on freshly resolved bodies; sweeps don't pre-exist.
        RGExpr::ObserveSweep { .. } => e,
    }
}

/// The name-to-slot resolution state, shared by the model-body resolution
/// pass above and the generated-quantities resolution pass
/// ([`crate::gq::resolve_gq`]).
pub(crate) struct Resolver<'a> {
    pub(crate) interner: Interner,
    pub(crate) functions: &'a [FunDecl],
}

impl<'a> Resolver<'a> {
    /// A fresh resolver over a program's user-function list.
    pub(crate) fn new(functions: &'a [FunDecl]) -> Self {
        Resolver {
            interner: Interner::new(),
            functions,
        }
    }

    /// Interns `name` and returns its frame slot. The runtime environment is
    /// a flat namespace (one location per name), so the symbol index *is*
    /// the slot index; `stan_frontend::symbols::ScopeStack` stays available
    /// for the planned lexical resolution of user-function bodies.
    pub(crate) fn slot_for(&mut self, name: &str) -> u32 {
        self.interner.intern(name).index() as u32
    }

    /// Interns every name bound by a statement block (transformed data),
    /// reusing the frontend's single statement walker.
    pub(crate) fn intern_stmts(&mut self, stmts: &[stan_frontend::ast::Stmt]) {
        stan_frontend::symbols::intern_stmt_names(&mut self.interner, stmts);
    }

    pub(crate) fn resolve_param(&mut self, p: &ParamInfo) -> RParamInfo {
        RParamInfo {
            slot: self.slot_for(&p.name),
            name: p.name.clone(),
            shape: p.shape.iter().map(|e| self.resolve_expr(e)).collect(),
            lower: p.lower.as_ref().map(|e| self.resolve_expr(e)),
            upper: p.upper.as_ref().map(|e| self.resolve_expr(e)),
        }
    }

    pub(crate) fn resolve_expr(&mut self, e: &Expr) -> RExpr {
        match e {
            Expr::IntLit(v) => RExpr::IntLit(*v),
            Expr::RealLit(v) => RExpr::RealLit(*v),
            Expr::StringLit(s) => RExpr::StringLit(s.clone()),
            Expr::Var(name) => RExpr::Slot(self.slot_for(name)),
            Expr::Call(name, args) => {
                // Last definition wins, matching the `HashMap` the
                // evaluators build from the function list.
                let target = match self.functions.iter().rposition(|f| &f.name == name) {
                    Some(idx) => CallTarget::User(idx as u32),
                    None => CallTarget::Builtin,
                };
                RExpr::Call(
                    name.clone(),
                    target,
                    args.iter().map(|a| self.resolve_expr(a)).collect(),
                )
            }
            Expr::Binary(op, a, b) => RExpr::Binary(
                *op,
                Box::new(self.resolve_expr(a)),
                Box::new(self.resolve_expr(b)),
            ),
            Expr::Unary(op, a) => RExpr::Unary(*op, Box::new(self.resolve_expr(a))),
            Expr::Index(base, indices) => RExpr::Index(
                Box::new(self.resolve_expr(base)),
                indices
                    .iter()
                    .map(|i| match i {
                        Expr::Range(lo, hi) => {
                            RIndex::Slice(self.resolve_expr(lo), self.resolve_expr(hi))
                        }
                        other => RIndex::One(self.resolve_expr(other)),
                    })
                    .collect(),
            ),
            Expr::ArrayLit(items) => {
                RExpr::ArrayLit(items.iter().map(|i| self.resolve_expr(i)).collect())
            }
            Expr::VectorLit(items) => {
                RExpr::VectorLit(items.iter().map(|i| self.resolve_expr(i)).collect())
            }
            Expr::Range(lo, hi) => RExpr::Range(
                Box::new(self.resolve_expr(lo)),
                Box::new(self.resolve_expr(hi)),
            ),
            Expr::Ternary(c, a, b) => RExpr::Ternary(
                Box::new(self.resolve_expr(c)),
                Box::new(self.resolve_expr(a)),
                Box::new(self.resolve_expr(b)),
            ),
        }
    }

    fn resolve_dist(&mut self, d: &DistCall) -> RDistCall {
        RDistCall {
            kind: DistKind::from_name(&d.name),
            name: d.name.clone(),
            args: d.args.iter().map(|a| self.resolve_expr(a)).collect(),
            shape: d.shape.iter().map(|s| self.resolve_expr(s)).collect(),
        }
    }

    pub(crate) fn resolve_decl(&mut self, d: &Decl) -> RDecl {
        let kind = match &d.ty {
            BaseType::Int => RDeclKind::Int,
            BaseType::Real => RDeclKind::Real,
            BaseType::Vector(n)
            | BaseType::RowVector(n)
            | BaseType::Simplex(n)
            | BaseType::Ordered(n)
            | BaseType::PositiveOrdered(n)
            | BaseType::UnitVector(n) => RDeclKind::Vector(self.resolve_expr(n)),
            BaseType::Matrix(r, c) => RDeclKind::Matrix(self.resolve_expr(r), self.resolve_expr(c)),
            BaseType::CovMatrix(n) | BaseType::CorrMatrix(n) | BaseType::CholeskyFactorCorr(n) => {
                RDeclKind::Square(self.resolve_expr(n))
            }
        };
        RDecl {
            slot: self.slot_for(&d.name),
            kind,
            dims: d.dims.iter().map(|e| self.resolve_expr(e)).collect(),
            init: d.init.as_ref().map(|e| self.resolve_expr(e)),
        }
    }

    fn resolve_gexpr(&mut self, e: &GExpr) -> RGExpr {
        match e {
            GExpr::Unit => RGExpr::Unit,
            GExpr::Return(expr) => RGExpr::Return(self.resolve_expr(expr)),
            GExpr::LetDecl { decl, body } => RGExpr::LetDecl {
                decl: self.resolve_decl(decl),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::LetDet { name, value, body } => RGExpr::LetDet {
                value: self.resolve_expr(value),
                slot: self.slot_for(name),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::LetIndexed {
                name,
                indices,
                value,
                body,
            } => RGExpr::LetIndexed {
                slot: self.slot_for(name),
                indices: indices.iter().map(|i| self.resolve_expr(i)).collect(),
                value: self.resolve_expr(value),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::LetSample { name, dist, body } => RGExpr::LetSample {
                slot: self.slot_for(name),
                dist: self.resolve_dist(dist),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::Observe { dist, value, body } => RGExpr::Observe {
                dist: self.resolve_dist(dist),
                value: self.resolve_expr(value),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::Factor { value, body } => RGExpr::Factor {
                value: self.resolve_expr(value),
                body: Box::new(self.resolve_gexpr(body)),
            },
            GExpr::If {
                cond,
                then_branch,
                else_branch,
            } => RGExpr::If {
                cond: self.resolve_expr(cond),
                then_branch: Box::new(self.resolve_gexpr(then_branch)),
                else_branch: Box::new(self.resolve_gexpr(else_branch)),
            },
            GExpr::LetLoop {
                kind,
                state: _,
                loop_body,
                body,
            } => {
                let kind = match kind {
                    LoopKind::Range { var, lo, hi } => RLoopKind::Range {
                        lo: self.resolve_expr(lo),
                        hi: self.resolve_expr(hi),
                        slot: self.slot_for(var),
                    },
                    LoopKind::ForEach { var, collection } => RLoopKind::ForEach {
                        collection: self.resolve_expr(collection),
                        slot: self.slot_for(var),
                    },
                    LoopKind::While { cond } => RLoopKind::While {
                        cond: self.resolve_expr(cond),
                    },
                };
                RGExpr::LetLoop {
                    kind,
                    loop_body: Box::new(self.resolve_gexpr(loop_body)),
                    body: Box::new(self.resolve_gexpr(body)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stan_frontend::ast::Expr;

    fn coin_body() -> GExpr {
        GExpr::LetSample {
            name: "z".into(),
            dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
            body: Box::new(GExpr::Observe {
                dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
                value: Expr::var("x"),
                body: Box::new(GExpr::Return(Expr::var("z"))),
            }),
        }
    }

    #[test]
    fn resolution_assigns_dense_slots() {
        let program = GProbProgram {
            body: coin_body(),
            params: vec![ParamInfo::scalar("z")],
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        let z = resolved.slot_of("z").unwrap();
        let x = resolved.slot_of("x").unwrap();
        assert_ne!(z, x);
        assert!(resolved.n_slots >= 2);
        assert_eq!(resolved.params[0].slot, z);
        assert_eq!(resolved.name_of(z), "z");
        // The same name always resolves to the same slot (flat namespace).
        match &resolved.body {
            RGExpr::LetSample { slot, body, .. } => {
                assert_eq!(*slot, z);
                match &**body {
                    RGExpr::Observe { dist, value, .. } => {
                        assert_eq!(dist.args[0], RExpr::Slot(z));
                        assert_eq!(*value, RExpr::Slot(x));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_through_envs() {
        let program = GProbProgram {
            body: coin_body(),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        let mut env: Env<f64> = Env::new();
        env.insert("x".into(), Value::Int(1));
        env.insert("unrelated".into(), Value::Real(9.0)); // no slot: dropped
        let frame = resolved.frame_from_env(&env);
        let back = frame.to_env(&resolved.interner);
        assert_eq!(back.get("x"), Some(&Value::Int(1)));
        assert!(!back.contains_key("unrelated"));
        let view = FrameView {
            frame: &frame,
            interner: &resolved.interner,
        };
        assert_eq!(view.get_var("x"), Some(&Value::Int(1)));
        assert_eq!(view.get_var("nope"), None);
    }

    /// `for (i in 1:N) x[i] ~ bernoulli(z)` as a compiled loop.
    fn observe_loop(target: Expr, args: Vec<Expr>, dist: &str) -> GExpr {
        GExpr::LetLoop {
            kind: crate::ir::LoopKind::Range {
                var: "i".into(),
                lo: Expr::IntLit(1),
                hi: Expr::var("N"),
            },
            state: vec![],
            loop_body: Box::new(GExpr::Observe {
                dist: DistCall::new(dist, args),
                value: target,
                body: Box::new(GExpr::Unit),
            }),
            body: Box::new(GExpr::Unit),
        }
    }

    fn idx(base: &str, index: Expr) -> Expr {
        Expr::Index(Box::new(Expr::var(base)), vec![index])
    }

    #[test]
    fn affine_observe_loops_lower_to_sweeps() {
        // Direct index, invariant argument.
        let program = GProbProgram {
            body: observe_loop(idx("x", Expr::var("i")), vec![Expr::var("z")], "bernoulli"),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        assert_eq!(count_sweeps(&resolved.body), 1);
        match &resolved.body {
            RGExpr::ObserveSweep {
                sweep, fallback, ..
            } => {
                assert_eq!(sweep.kind, DistKind::Bernoulli);
                assert_eq!(sweep.target.offset, 0);
                assert_eq!(sweep.loop_slot, resolved.slot_of("i").unwrap());
                assert!(matches!(sweep.args[0], SweepArgSpec::Invariant(_)));
                // The scalar loop is retained for runtime fallback.
                assert!(matches!(**fallback, RGExpr::LetLoop { .. }));
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        // The scalar configuration keeps the loop.
        let scalar = resolve_program_scalar(&program);
        assert_eq!(count_sweeps(&scalar.body), 0);
        assert!(!scalar.fused);
        // Lagged (offset) reads inside a compound argument lower too.
        let lag = Expr::Binary(
            stan_frontend::ast::BinOp::Add,
            Box::new(Expr::var("alpha")),
            Box::new(idx(
                "y",
                Expr::Binary(
                    stan_frontend::ast::BinOp::Sub,
                    Box::new(Expr::var("i")),
                    Box::new(Expr::IntLit(1)),
                ),
            )),
        );
        let program = GProbProgram {
            body: observe_loop(
                idx("y", Expr::var("i")),
                vec![lag, Expr::var("s")],
                "normal",
            ),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        assert_eq!(count_sweeps(&resolved.body), 1);
        match &resolved.body {
            RGExpr::ObserveSweep { sweep, .. } => {
                assert!(matches!(sweep.args[0], SweepArgSpec::Elementwise(_)));
                assert!(matches!(sweep.args[1], SweepArgSpec::Invariant(_)));
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn non_matching_loops_decline_to_lower() {
        // Non-affine (indirect) target index: x[idx[i]].
        let indirect = GProbProgram {
            body: observe_loop(
                idx("x", idx("idx", Expr::var("i"))),
                vec![Expr::var("z")],
                "bernoulli",
            ),
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&indirect).body), 0);
        // Loop variable used as a value (not an index) in an argument.
        let value_use = GProbProgram {
            body: observe_loop(idx("x", Expr::var("i")), vec![Expr::var("i")], "poisson"),
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&value_use).body), 0);
        // Unsupported family (vector-parameter categorical).
        let unsupported = GProbProgram {
            body: observe_loop(
                idx("x", Expr::var("i")),
                vec![Expr::var("probs")],
                "categorical",
            ),
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&unsupported).body), 0);
        // Families added to the kernel set later (beta, gamma, binomial,
        // uniform, double_exponential, inv_gamma, chi_square) lower like any
        // other supported family.
        let uniform = GProbProgram {
            body: observe_loop(
                idx("x", Expr::var("i")),
                vec![Expr::RealLit(0.0), Expr::RealLit(1.0)],
                "uniform",
            ),
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&uniform).body), 1);
        let beta = GProbProgram {
            body: observe_loop(
                idx("x", Expr::var("i")),
                vec![Expr::RealLit(1.0), Expr::RealLit(1.0)],
                "beta",
            ),
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&beta).body), 1);
        // Multi-statement body (assignment before the observe).
        let multi = GProbProgram {
            body: GExpr::LetLoop {
                kind: crate::ir::LoopKind::Range {
                    var: "i".into(),
                    lo: Expr::IntLit(1),
                    hi: Expr::var("N"),
                },
                state: vec!["m".into()],
                loop_body: Box::new(GExpr::LetDet {
                    name: "m".into(),
                    value: Expr::var("i"),
                    body: Box::new(GExpr::Observe {
                        dist: DistCall::new("normal", vec![Expr::var("m"), Expr::RealLit(1.0)]),
                        value: idx("x", Expr::var("i")),
                        body: Box::new(GExpr::Unit),
                    }),
                }),
                body: Box::new(GExpr::Unit),
            },
            ..Default::default()
        };
        assert_eq!(count_sweeps(&resolve_program(&multi).body), 0);
        // The loop variable's slot is still a written slot after lowering
        // (sweeps clear it on completion, like the loop they replace).
        let program = GProbProgram {
            body: observe_loop(idx("x", Expr::var("i")), vec![Expr::var("z")], "bernoulli"),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        let i = resolved.slot_of("i").unwrap();
        assert!(resolved.written_slots.contains(&i));
    }

    #[test]
    fn user_function_calls_are_dispatch_resolved() {
        use stan_frontend::ast::{BlockBody, FunArg, UnsizedType};
        let fun = FunDecl {
            return_type: UnsizedType {
                kind: "real".into(),
                array_dims: 0,
            },
            name: "f".into(),
            args: vec![FunArg {
                is_data: false,
                ty: UnsizedType {
                    kind: "real".into(),
                    array_dims: 0,
                },
                name: "v".into(),
            }],
            body: BlockBody::default(),
        };
        let program = GProbProgram {
            functions: vec![fun],
            body: GExpr::Return(Expr::Call("f".into(), vec![Expr::RealLit(1.0)])),
            ..Default::default()
        };
        let resolved = resolve_program(&program);
        match &resolved.body {
            RGExpr::Return(RExpr::Call(name, target, _)) => {
                assert_eq!(name, "f");
                assert_eq!(*target, CallTarget::User(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown names dispatch as builtins.
        let program2 = GProbProgram {
            body: GExpr::Return(Expr::Call("exp".into(), vec![Expr::RealLit(1.0)])),
            ..Default::default()
        };
        let resolved2 = resolve_program(&program2);
        match &resolved2.body {
            RGExpr::Return(RExpr::Call(_, target, _)) => {
                assert_eq!(*target, CallTarget::Builtin)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
