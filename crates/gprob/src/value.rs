//! Runtime values and environments shared by the GProb interpreter and the
//! baseline Stan interpreter.

use std::collections::HashMap;
use std::fmt;

use minidiff::Real;

/// Error raised while evaluating expressions or running a model.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    message: String,
}

impl RuntimeError {
    /// Creates a runtime error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

impl From<probdist::DistError> for RuntimeError {
    fn from(e: probdist::DistError) -> Self {
        RuntimeError::new(e.to_string())
    }
}

/// A runtime value. Stan's `vector`, `row_vector` and one-dimensional real
/// arrays all map to [`Value::Vector`]; matrices and higher-dimensional
/// arrays are nested [`Value::Array`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<T: Real> {
    /// Integer scalar.
    Int(i64),
    /// Real scalar (possibly gradient-tracked).
    Real(T),
    /// Flat vector of reals.
    Vector(Vec<T>),
    /// Flat vector of integers.
    IntArray(Vec<i64>),
    /// Nested array (of anything), also used for matrices (array of rows).
    Array(Vec<Value<T>>),
    /// The unit value, produced by `observe` / `factor`.
    Unit,
}

impl<T: Real> Value<T> {
    /// Interprets the value as a real scalar (integers are promoted).
    ///
    /// # Errors
    /// Fails on vectors, arrays, and unit.
    pub fn as_real(&self) -> Result<T, RuntimeError> {
        match self {
            Value::Real(x) => Ok(*x),
            Value::Int(k) => Ok(T::from_f64(*k as f64)),
            other => Err(RuntimeError::new(format!(
                "expected a scalar, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// # Errors
    /// Fails on non-scalars; reals are rounded only if they are integral.
    pub fn as_int(&self) -> Result<i64, RuntimeError> {
        match self {
            Value::Int(k) => Ok(*k),
            Value::Real(x) => {
                let v = x.value();
                if (v - v.round()).abs() < 1e-9 {
                    Ok(v.round() as i64)
                } else {
                    Err(RuntimeError::new(format!(
                        "expected an integer, found real {v}"
                    )))
                }
            }
            other => Err(RuntimeError::new(format!(
                "expected an integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a flat vector of reals (integer arrays and
    /// scalars are promoted; nested arrays are flattened).
    ///
    /// # Errors
    /// Fails if any leaf is not numeric.
    pub fn as_real_vec(&self) -> Result<Vec<T>, RuntimeError> {
        match self {
            Value::Vector(v) => Ok(v.clone()),
            Value::IntArray(v) => Ok(v.iter().map(|k| T::from_f64(*k as f64)).collect()),
            Value::Real(x) => Ok(vec![*x]),
            Value::Int(k) => Ok(vec![T::from_f64(*k as f64)]),
            Value::Array(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(item.as_real_vec()?);
                }
                Ok(out)
            }
            Value::Unit => Err(RuntimeError::new("expected a vector, found unit")),
        }
    }

    /// Sums the value's elements as a real scalar: containers are reduced,
    /// scalars pass through. Used by `target +=` / `factor` with container
    /// arguments.
    ///
    /// # Errors
    /// Fails if any leaf is not numeric.
    pub fn sum_as_real(&self) -> Result<T, RuntimeError> {
        match self {
            Value::Vector(xs) => {
                let mut acc = T::from_f64(0.0);
                for x in xs {
                    acc = acc + *x;
                }
                Ok(acc)
            }
            Value::IntArray(xs) => Ok(T::from_f64(xs.iter().sum::<i64>() as f64)),
            Value::Array(items) => {
                let mut acc = T::from_f64(0.0);
                for item in items {
                    acc = acc + item.sum_as_real()?;
                }
                Ok(acc)
            }
            other => other.as_real(),
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Vector(_) => "vector",
            Value::IntArray(_) => "int array",
            Value::Array(_) => "array",
            Value::Unit => "unit",
        }
    }

    /// Number of elements along the first dimension (scalars have length 1).
    pub fn len(&self) -> usize {
        match self {
            Value::Vector(v) => v.len(),
            Value::IntArray(v) => v.len(),
            Value::Array(v) => v.len(),
            _ => 1,
        }
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexes with a 1-based Stan index.
    ///
    /// # Errors
    /// Fails when out of bounds or when indexing a scalar.
    pub fn index(&self, i: i64) -> Result<Value<T>, RuntimeError> {
        let check = |len: usize| -> Result<usize, RuntimeError> {
            if i < 1 || i as usize > len {
                Err(RuntimeError::new(format!(
                    "index {i} out of bounds for length {len}"
                )))
            } else {
                Ok((i - 1) as usize)
            }
        };
        match self {
            Value::Vector(v) => Ok(Value::Real(v[check(v.len())?])),
            Value::IntArray(v) => Ok(Value::Int(v[check(v.len())?])),
            Value::Array(v) => Ok(v[check(v.len())?].clone()),
            other => Err(RuntimeError::new(format!(
                "cannot index a {}",
                other.kind()
            ))),
        }
    }

    /// Sets the element at a 1-based index, promoting containers as needed.
    ///
    /// # Errors
    /// Fails when out of bounds or on kind mismatches.
    pub fn set_index(&mut self, i: i64, val: Value<T>) -> Result<(), RuntimeError> {
        let idx = (i - 1) as usize;
        match self {
            Value::Vector(v) => {
                if idx >= v.len() {
                    return Err(RuntimeError::new(format!(
                        "index {i} out of bounds for length {}",
                        v.len()
                    )));
                }
                v[idx] = val.as_real()?;
                Ok(())
            }
            Value::IntArray(v) => {
                if idx >= v.len() {
                    return Err(RuntimeError::new(format!(
                        "index {i} out of bounds for length {}",
                        v.len()
                    )));
                }
                match val {
                    Value::Int(k) => {
                        v[idx] = k;
                        Ok(())
                    }
                    // Assigning a real into an int array promotes the array.
                    other => {
                        let mut promoted: Vec<T> =
                            v.iter().map(|k| T::from_f64(*k as f64)).collect();
                        promoted[idx] = other.as_real()?;
                        *self = Value::Vector(promoted);
                        Ok(())
                    }
                }
            }
            Value::Array(v) => {
                if idx >= v.len() {
                    return Err(RuntimeError::new(format!(
                        "index {i} out of bounds for length {}",
                        v.len()
                    )));
                }
                v[idx] = val;
                Ok(())
            }
            other => Err(RuntimeError::new(format!(
                "cannot assign into a {}",
                other.kind()
            ))),
        }
    }

    /// Deep conversion to plain `f64` values (detaching any gradient info).
    pub fn detach(&self) -> Value<f64> {
        match self {
            Value::Int(k) => Value::Int(*k),
            Value::Real(x) => Value::Real(x.value()),
            Value::Vector(v) => Value::Vector(v.iter().map(|x| x.value()).collect()),
            Value::IntArray(v) => Value::IntArray(v.clone()),
            Value::Array(v) => Value::Array(v.iter().map(|x| x.detach()).collect()),
            Value::Unit => Value::Unit,
        }
    }

    /// Lifts a plain value into any scalar type (constants, no gradient).
    pub fn lift(v: &Value<f64>) -> Value<T> {
        match v {
            Value::Int(k) => Value::Int(*k),
            Value::Real(x) => Value::Real(T::from_f64(*x)),
            Value::Vector(xs) => Value::Vector(xs.iter().map(|x| T::from_f64(*x)).collect()),
            Value::IntArray(xs) => Value::IntArray(xs.clone()),
            Value::Array(xs) => Value::Array(xs.iter().map(Value::lift).collect()),
            Value::Unit => Value::Unit,
        }
    }
}

impl<T: Real> From<f64> for Value<T> {
    fn from(v: f64) -> Self {
        Value::Real(T::from_f64(v))
    }
}

impl<T: Real> From<i64> for Value<T> {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

/// A variable environment mapping names to values.
pub type Env<T> = HashMap<String, Value<T>>;

/// A read-only, name-addressed view of a variable environment.
///
/// The runtime-extension boundary (external functions such as DeepStan
/// networks, and user-defined function calls) is name-addressed, while the
/// hot evaluation path is slot-addressed. This trait lets both environment
/// representations — the string-keyed [`Env`] and the slot-resolved
/// `resolved::Frame` — serve those boundary consumers without copying.
pub trait EnvView<T: Real> {
    /// Looks up a variable by name.
    fn get_var(&self, name: &str) -> Option<&Value<T>>;
    /// Visits every bound variable.
    fn for_each_var(&self, f: &mut dyn FnMut(&str, &Value<T>));
}

impl<T: Real> EnvView<T> for Env<T> {
    fn get_var(&self, name: &str) -> Option<&Value<T>> {
        self.get(name)
    }
    fn for_each_var(&self, f: &mut dyn FnMut(&str, &Value<T>)) {
        for (k, v) in self {
            f(k, v);
        }
    }
}

/// Builds a data environment (plain `f64`) from `(name, value)` pairs.
pub fn env_from_pairs(pairs: &[(&str, Value<f64>)]) -> Env<f64> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// Lifts an `f64` environment into an environment over any scalar type.
pub fn lift_env<T: Real>(env: &Env<f64>) -> Env<T> {
    env.iter()
        .map(|(k, v)| (k.clone(), Value::lift(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        let v: Value<f64> = Value::Int(3);
        assert_eq!(v.as_real().unwrap(), 3.0);
        assert_eq!(v.as_int().unwrap(), 3);
        let r: Value<f64> = Value::Real(2.0);
        assert_eq!(r.as_int().unwrap(), 2);
        assert!(Value::<f64>::Real(2.5).as_int().is_err());
        assert!(Value::<f64>::Unit.as_real().is_err());
    }

    #[test]
    fn one_based_indexing() {
        let v: Value<f64> = Value::Vector(vec![10.0, 20.0, 30.0]);
        assert_eq!(v.index(1).unwrap(), Value::Real(10.0));
        assert_eq!(v.index(3).unwrap(), Value::Real(30.0));
        assert!(v.index(0).is_err());
        assert!(v.index(4).is_err());
    }

    #[test]
    fn set_index_promotes_int_arrays() {
        let mut v: Value<f64> = Value::IntArray(vec![1, 2, 3]);
        v.set_index(2, Value::Real(9.5)).unwrap();
        assert_eq!(v, Value::Vector(vec![1.0, 9.5, 3.0]));
    }

    #[test]
    fn flattening_nested_arrays() {
        let v: Value<f64> = Value::Array(vec![
            Value::Vector(vec![1.0, 2.0]),
            Value::Vector(vec![3.0, 4.0]),
        ]);
        assert_eq!(v.as_real_vec().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn detach_and_lift_roundtrip() {
        let v: Value<f64> = Value::Array(vec![Value::Int(1), Value::Real(2.5)]);
        let lifted: Value<f64> = Value::lift(&v.detach());
        assert_eq!(lifted, v);
    }
}
