//! Slot-resolved `generated quantities`: the predictive side of the runtime.
//!
//! The paper compiles `generated quantities` as ordinary generative code, but
//! this reproduction historically evaluated it through the legacy
//! string-keyed statement interpreter ([`crate::eval::exec_stmt`] over
//! `HashMap` environments), cloning the whole data environment per posterior
//! draw. This module gives the block the same compile-time treatment the
//! model body received in the slot-resolution refactor:
//!
//! * [`resolve_gq`] resolves the block (with its inlined
//!   transformed-parameters replay) into [`RStmt`] — a slot-annotated
//!   statement IR with its own [`Frame`] layout — and lowers two loop shapes
//!   through the sweep classifier of [`crate::resolved`]:
//!   * **pointwise log-likelihood accumulation**
//!     `for (i in 1:N) log_lik[i] = dist_lpdf(y[i] | args...)` becomes an
//!     [`RStmt::LpdfSweep`] scored by the batch kernel
//!     [`probdist::lpdf_elems`] — one kernel call fills the whole row; and
//!   * **element-wise `_rng` simulation**
//!     `for (i in 1:N) y_rep[i] = dist_rng(args...)` becomes an
//!     [`RStmt::RngSweep`]: arguments are evaluated through borrowed slices
//!     or pooled scratch and the draws write straight into the target
//!     container, consuming the RNG in exactly the scalar loop's order.
//!
//!   Every lowered loop keeps its original scalar form as a runtime
//!   `fallback`, so shapes (or evaluation errors) that do not admit the
//!   batched path reproduce the scalar behavior byte for byte.
//! * [`GqWorkspace`] is the pooled per-thread scratch state: the lifted data
//!   frame is built once, per-draw evaluation only resets the slots the
//!   block can write ([`crate::resolved::ResolvedProgram::written_slots`]),
//!   parameters are written in place into their existing shaped values, and
//!   sweep scratch buffers are reused — after the first draw, streaming a
//!   chain through the block allocates nothing per draw.
//! * `GqEval` is the rng-capable frame evaluator, the statement-level
//!   mirror of [`crate::reval::RInterp`]. `_rng` builtins reach
//!   [`probdist::sampling`] through the shared [`crate::eval::call_builtin`]
//!   library, so the resolved path and the retained string path (the
//!   differential oracle) draw identical values from identical seeds.

use std::cell::RefCell;
use std::rc::Rc;

use probdist::dist::{dist_from_kind, DistArg};
use probdist::sweep::{lpdf_elems, SweepArg, SweepVals};
use probdist::{supports_sweep, DistKind, SampleValue};
use rand::rngs::StdRng;
use stan_frontend::ast::{AssignOp, Expr, FunDecl, Stmt};

use crate::eval::{eval_binary, set_nested, EvalCtx, FnTable};
use crate::ir::GProbProgram;
use crate::resolved::{
    affine_offset, classify_arg, mentions_slot, Frame, RDecl, RExpr, RGExpr, ResolvedProgram,
    Resolver, SweepArgSpec,
};
use crate::reval::{default_rvalue, reval_expr, reval_ref, slice_window, RCtx, RefValue};
use crate::value::{Env, RuntimeError, Value};

/// A slot-resolved statement of the `generated quantities` block. Mirrors
/// [`stan_frontend::ast::Stmt`] with names replaced by frame slots, plus the
/// two lowered sweep forms.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// `;` and `print(...)` — no effect.
    Skip,
    /// A local declaration.
    Decl(RDecl),
    /// `lhs op rhs;` with the target resolved to `slot[indices]`.
    Assign {
        /// Target slot.
        slot: u32,
        /// Index expressions of the assignment target.
        indices: Vec<RExpr>,
        /// Assignment operator (compound forms read-modify-write).
        op: AssignOp,
        /// Right-hand side.
        value: RExpr,
    },
    /// `target += e` — evaluated, then rejected (deterministic block).
    TargetPlus(RExpr),
    /// `e ~ dist(args)` — evaluated, then rejected (deterministic block).
    Tilde {
        /// Left-hand side.
        lhs: RExpr,
        /// Distribution name (for the truncation error message).
        dist: String,
        /// Argument expressions.
        args: Vec<RExpr>,
        /// Whether a truncation clause was present.
        truncated: bool,
    },
    /// `{ stmts }`.
    Block(Vec<RStmt>),
    /// `if (cond) then else alt`.
    If {
        /// Condition.
        cond: RExpr,
        /// Then branch.
        then_branch: Box<RStmt>,
        /// Optional else branch.
        else_branch: Option<Box<RStmt>>,
    },
    /// `for (var in lo:hi) body`.
    ForRange {
        /// Loop variable slot (cleared on normal exit).
        slot: u32,
        /// Lower bound.
        lo: RExpr,
        /// Upper bound.
        hi: RExpr,
        /// Loop body.
        body: Box<RStmt>,
    },
    /// `for (var in collection) body`.
    ForEach {
        /// Loop variable slot.
        slot: u32,
        /// Collection expression.
        collection: RExpr,
        /// Loop body.
        body: Box<RStmt>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: RExpr,
        /// Loop body.
        body: Box<RStmt>,
    },
    /// `reject(...)` with its message pre-rendered at resolution time.
    Reject(String),
    /// `return e;` — evaluated; aborts the enclosing loop like the string
    /// path (the block driver ignores the flow at top level).
    Return(Option<RExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A lowered pointwise log-density loop
    /// `for (i in lo:hi) target[i+c] = dist_lpdf(x | args...)`, filled by one
    /// [`probdist::lpdf_elems`] kernel call.
    LpdfSweep {
        /// The batched row.
        sweep: GqSweep,
        /// The original scalar loop, re-run when runtime shapes decline.
        fallback: Box<RStmt>,
    },
    /// A lowered element-wise simulation loop
    /// `for (i in lo:hi) target[i+c] = dist_rng(args...)`. Draws consume the
    /// RNG in the scalar loop's exact order.
    RngSweep {
        /// The batched row.
        sweep: GqSweep,
        /// The original scalar loop, re-run when runtime shapes decline.
        fallback: Box<RStmt>,
    },
    /// A lowered whole-container pointwise-lpdf assignment
    /// `s = dist_lpdf(x | args...)` with a container-valued `x`: the row of
    /// element log densities is filled by one [`probdist::lpdf_elems`] call
    /// and summed in element order. The statement's value is unchanged
    /// (`dist_lpdf` of a container is the *summed* log density, exactly as
    /// the generic expression path computes it); the lowering skips the
    /// per-element distribution construction and interpreter dispatch.
    LpdfAssign {
        /// Target slot (plain, unindexed assignment).
        slot: u32,
        /// Distribution family.
        kind: DistKind,
        /// Observed container expression followed by distribution arguments.
        args: Vec<RExpr>,
        /// The original assignment, re-run when runtime shapes decline.
        fallback: Box<RStmt>,
    },
}

/// A lowered generated-quantities row: the counted loop writing
/// `target[v + offset]` for `v` in `lo..=hi` from a sweep-classified
/// distribution call.
#[derive(Debug, Clone, PartialEq)]
pub struct GqSweep {
    /// Loop-variable slot (cleared when the sweep completes).
    pub loop_slot: u32,
    /// Loop lower bound (loop-invariant).
    pub lo: RExpr,
    /// Loop upper bound (loop-invariant).
    pub hi: RExpr,
    /// The written container's slot. Lowering only matches single-index
    /// targets `t[v + offset]` whose base is a plain variable, so the write
    /// window is a contiguous span of a flat container.
    pub target_slot: u32,
    /// Constant offset of the affine target index.
    pub offset: i64,
    /// Distribution family.
    pub kind: DistKind,
    /// For [`RStmt::LpdfSweep`]: the observed value (`x` of
    /// `dist_lpdf(x | ...)`) followed by the distribution arguments. For
    /// [`RStmt::RngSweep`]: the distribution arguments.
    pub args: Vec<SweepArgSpec>,
}

/// One output column group of the block: a variable the source
/// `generated quantities` block declares.
#[derive(Debug, Clone, PartialEq)]
pub struct GqOutput {
    /// Variable name.
    pub name: String,
    /// Its frame slot.
    pub slot: u32,
}

/// The fully resolved `generated quantities` program: its own frame layout
/// (independent of the model body's), the resolved statements, and the
/// output table.
#[derive(Debug, Clone)]
pub struct ResolvedGq {
    /// The layout core: interner, slot count, resolved parameter table,
    /// user-function dispatch table, and the slots the statements can write
    /// (driving the pooled workspace reset). The `body` field is unused
    /// (`Unit`) — statements live in [`ResolvedGq::stmts`].
    pub core: ResolvedProgram,
    /// The resolved statements, in source order (transformed-parameters
    /// replay first, as compiled).
    pub stmts: Vec<RStmt>,
    /// The declared outputs, in declaration order.
    pub outputs: Vec<GqOutput>,
}

/// Number of lowered sweep rows ([`RStmt::LpdfSweep`] + [`RStmt::RngSweep`])
/// in a resolved block — used by tests and benches to assert which loop
/// shapes lowered.
pub fn count_gq_sweeps(stmts: &[RStmt]) -> usize {
    fn count(s: &RStmt) -> usize {
        match s {
            RStmt::LpdfSweep { .. } | RStmt::RngSweep { .. } | RStmt::LpdfAssign { .. } => 1,
            RStmt::Block(ss) => ss.iter().map(count).sum(),
            RStmt::If {
                then_branch,
                else_branch,
                ..
            } => count(then_branch) + else_branch.as_deref().map_or(0, count),
            RStmt::ForRange { body, .. }
            | RStmt::ForEach { body, .. }
            | RStmt::While { body, .. } => count(body),
            _ => 0,
        }
    }
    stmts.iter().map(count).sum()
}

/// The output column names of a program's `generated quantities` block: the
/// names the *source* block declares (recorded by the compiler), falling
/// back — for hand-built programs without the record — to every top-level
/// declaration in the combined block. Shared by the resolved path and the
/// retained string path so their output key sets cannot drift.
pub(crate) fn gq_output_names(program: &GProbProgram) -> Vec<String> {
    if !program.gq_outputs.is_empty() {
        return program.gq_outputs.clone();
    }
    program
        .generated_quantities
        .as_ref()
        .map(|gq| {
            gq.stmts
                .iter()
                .filter_map(|s| match s {
                    Stmt::LocalDecl(d) => Some(d.name.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Resolves a compiled program's `generated quantities` block to its
/// slot-annotated form, lowering pointwise-`lpdf` and element-wise-`_rng`
/// loops into batched sweeps. Returns `None` when the program has no block.
pub fn resolve_gq(program: &GProbProgram) -> Option<ResolvedGq> {
    resolve_gq_with(program, true)
}

/// [`resolve_gq`] without sweep lowering — every row evaluates element by
/// element. The comparison configuration for differential tests and the
/// GQ-throughput benchmark rows.
pub fn resolve_gq_scalar(program: &GProbProgram) -> Option<ResolvedGq> {
    resolve_gq_with(program, false)
}

fn resolve_gq_with(program: &GProbProgram, fused: bool) -> Option<ResolvedGq> {
    let gq = program.generated_quantities.as_ref()?;
    let mut r = Resolver::new(&program.functions);

    // Mirror the model resolution preamble: everything the data environment
    // (including transformed-data outputs) can supply gets a slot, then the
    // parameters, then the block's own names.
    for d in &program.data {
        r.slot_for(&d.name);
        for dim in &d.dims {
            r.resolve_expr(dim);
        }
    }
    if let Some(td) = &program.transformed_data {
        r.intern_stmts(&td.stmts);
    }
    let params: Vec<_> = program.params.iter().map(|p| r.resolve_param(p)).collect();

    let stmts: Vec<RStmt> = gq.stmts.iter().map(|s| resolve_stmt(&mut r, s)).collect();
    let stmts: Vec<RStmt> = if fused {
        stmts.into_iter().map(lower_stmt).collect()
    } else {
        stmts
    };

    let outputs: Vec<GqOutput> = gq_output_names(program)
        .into_iter()
        .map(|name| GqOutput {
            slot: r.slot_for(&name),
            name,
        })
        .collect();

    let mut written_slots = Vec::new();
    for s in &stmts {
        collect_stmt_written(s, &mut written_slots);
    }
    written_slots.sort_unstable();
    written_slots.dedup();

    Some(ResolvedGq {
        core: ResolvedProgram {
            n_slots: r.interner.len(),
            interner: r.interner,
            params,
            body: RGExpr::Unit,
            fn_table: FnTable::new(&program.functions),
            written_slots,
            fused,
        },
        stmts,
        outputs,
    })
}

fn resolve_stmt(r: &mut Resolver, s: &Stmt) -> RStmt {
    match s {
        Stmt::Skip | Stmt::Print(_) => RStmt::Skip,
        Stmt::LocalDecl(d) => RStmt::Decl(r.resolve_decl(d)),
        Stmt::Assign { lhs, op, rhs } => RStmt::Assign {
            value: r.resolve_expr(rhs),
            slot: r.slot_for(&lhs.name),
            indices: lhs.indices.iter().map(|i| r.resolve_expr(i)).collect(),
            op: *op,
        },
        Stmt::TargetPlus(e) => RStmt::TargetPlus(r.resolve_expr(e)),
        Stmt::Tilde {
            lhs,
            dist,
            args,
            truncation,
        } => RStmt::Tilde {
            lhs: r.resolve_expr(lhs),
            dist: dist.clone(),
            args: args.iter().map(|a| r.resolve_expr(a)).collect(),
            truncated: truncation.is_some(),
        },
        Stmt::Block(ss) => RStmt::Block(ss.iter().map(|s| resolve_stmt(r, s)).collect()),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => RStmt::If {
            cond: r.resolve_expr(cond),
            then_branch: Box::new(resolve_stmt(r, then_branch)),
            else_branch: else_branch.as_ref().map(|e| Box::new(resolve_stmt(r, e))),
        },
        Stmt::ForRange { var, lo, hi, body } => RStmt::ForRange {
            lo: r.resolve_expr(lo),
            hi: r.resolve_expr(hi),
            slot: r.slot_for(var),
            body: Box::new(resolve_stmt(r, body)),
        },
        Stmt::ForEach {
            var,
            collection,
            body,
        } => RStmt::ForEach {
            collection: r.resolve_expr(collection),
            slot: r.slot_for(var),
            body: Box::new(resolve_stmt(r, body)),
        },
        Stmt::While { cond, body } => RStmt::While {
            cond: r.resolve_expr(cond),
            body: Box::new(resolve_stmt(r, body)),
        },
        // The message is rendered here with exactly the string path's
        // formatting, so the two paths report identical rejects.
        Stmt::Reject(args) => RStmt::Reject(
            args.iter()
                .map(|a| match a {
                    Expr::StringLit(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join(" "),
        ),
        Stmt::Return(e) => RStmt::Return(e.as_ref().map(|e| r.resolve_expr(e))),
        Stmt::Break => RStmt::Break,
        Stmt::Continue => RStmt::Continue,
    }
}

fn collect_stmt_written(s: &RStmt, out: &mut Vec<u32>) {
    match s {
        RStmt::Decl(d) => out.push(d.slot),
        RStmt::Assign { slot, .. } => out.push(*slot),
        RStmt::Block(ss) => {
            for s in ss {
                collect_stmt_written(s, out);
            }
        }
        RStmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_stmt_written(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_written(e, out);
            }
        }
        RStmt::ForRange { slot, body, .. } | RStmt::ForEach { slot, body, .. } => {
            out.push(*slot);
            collect_stmt_written(body, out);
        }
        RStmt::While { body, .. } => collect_stmt_written(body, out),
        RStmt::LpdfSweep { sweep, fallback } | RStmt::RngSweep { sweep, fallback } => {
            out.push(sweep.loop_slot);
            out.push(sweep.target_slot);
            collect_stmt_written(fallback, out);
        }
        RStmt::LpdfAssign { slot, fallback, .. } => {
            out.push(*slot);
            collect_stmt_written(fallback, out);
        }
        RStmt::Skip
        | RStmt::TargetPlus(_)
        | RStmt::Tilde { .. }
        | RStmt::Reject(_)
        | RStmt::Return(_)
        | RStmt::Break
        | RStmt::Continue => {}
    }
}

/// Whether an expression may draw from the RNG — any `_rng` builtin, or any
/// user-defined function call (the type checker does not enforce Stan's
/// `_rng`-suffix naming rule, so a user function body may itself draw).
/// Such arguments cannot be hoisted out of a loop without reordering RNG
/// consumption, so lowering declines them.
fn contains_rng(e: &RExpr) -> bool {
    match e {
        RExpr::IntLit(_) | RExpr::RealLit(_) | RExpr::StringLit(_) | RExpr::Slot(_) => false,
        RExpr::Call(name, target, args) => {
            name.ends_with("_rng")
                || matches!(target, crate::resolved::CallTarget::User(_))
                || args.iter().any(contains_rng)
        }
        RExpr::Binary(_, a, b) | RExpr::Range(a, b) => contains_rng(a) || contains_rng(b),
        RExpr::Unary(_, a) => contains_rng(a),
        RExpr::Index(base, indices) => {
            contains_rng(base)
                || indices.iter().any(|i| match i {
                    crate::resolved::RIndex::One(e) => contains_rng(e),
                    crate::resolved::RIndex::Slice(a, b) => contains_rng(a) || contains_rng(b),
                })
        }
        RExpr::ArrayLit(items) | RExpr::VectorLit(items) => items.iter().any(contains_rng),
        RExpr::Ternary(c, a, b) => contains_rng(c) || contains_rng(a) || contains_rng(b),
    }
}

/// The sweep-lowering pass over resolved statements.
fn lower_stmt(s: RStmt) -> RStmt {
    match s {
        RStmt::Block(ss) => RStmt::Block(ss.into_iter().map(lower_stmt).collect()),
        RStmt::If {
            cond,
            then_branch,
            else_branch,
        } => RStmt::If {
            cond,
            then_branch: Box::new(lower_stmt(*then_branch)),
            else_branch: else_branch.map(|e| Box::new(lower_stmt(*e))),
        },
        RStmt::ForRange { slot, lo, hi, body } => {
            let body = Box::new(lower_stmt(*body));
            match match_gq_sweep(slot, &lo, &hi, &body) {
                Some((sweep, is_rng)) => {
                    let fallback = Box::new(RStmt::ForRange { slot, lo, hi, body });
                    if is_rng {
                        RStmt::RngSweep { sweep, fallback }
                    } else {
                        RStmt::LpdfSweep { sweep, fallback }
                    }
                }
                None => RStmt::ForRange { slot, lo, hi, body },
            }
        }
        RStmt::ForEach {
            slot,
            collection,
            body,
        } => RStmt::ForEach {
            slot,
            collection,
            body: Box::new(lower_stmt(*body)),
        },
        RStmt::While { cond, body } => RStmt::While {
            cond,
            body: Box::new(lower_stmt(*body)),
        },
        RStmt::Assign {
            slot,
            indices,
            op: AssignOp::Assign,
            value,
        } if indices.is_empty() => match match_lpdf_assign(&value) {
            Some((kind, args)) => RStmt::LpdfAssign {
                slot,
                kind,
                args,
                fallback: Box::new(RStmt::Assign {
                    slot,
                    indices,
                    op: AssignOp::Assign,
                    value,
                }),
            },
            None => RStmt::Assign {
                slot,
                indices,
                op: AssignOp::Assign,
                value,
            },
        },
        other => other,
    }
}

/// Matches the whole-container row pattern: a plain assignment whose RHS is
/// a sweep-family `_lpdf` / `_lpmf` / `_log` builtin call with 1–3
/// distribution arguments, none of which may draw from the RNG (hoisting
/// into the kernel must not reorder consumption).
fn match_lpdf_assign(value: &RExpr) -> Option<(DistKind, Vec<RExpr>)> {
    let RExpr::Call(name, _, call_args) = value else {
        return None;
    };
    let dist_name = crate::eval::strip_lpdf_suffix(name)?;
    let kind = DistKind::from_name(dist_name)?;
    if !supports_sweep(kind) || kind.is_multivariate() || kind.has_vector_param() {
        return None;
    }
    if call_args.is_empty() || call_args.len() > 4 || call_args.iter().any(contains_rng) {
        return None;
    }
    Some((kind, call_args.clone()))
}

/// Matches the lowerable row pattern: a counted loop whose body is one plain
/// assignment `t[v + c] = f(args...)` where `f` is a sweep-family `_lpdf` /
/// `_lpmf` / `_log` builtin (observed value + arguments classified by the
/// sweep classifier) or a univariate `_rng` builtin with classified
/// arguments. Returns the sweep and whether it is the rng form.
fn match_gq_sweep(loop_slot: u32, lo: &RExpr, hi: &RExpr, body: &RStmt) -> Option<(GqSweep, bool)> {
    if mentions_slot(lo, loop_slot) || mentions_slot(hi, loop_slot) {
        return None;
    }
    // Unwrap a single-statement braced body.
    let mut body = body;
    while let RStmt::Block(ss) = body {
        if ss.len() != 1 {
            return None;
        }
        body = &ss[0];
    }
    let RStmt::Assign {
        slot: target_slot,
        indices,
        op: AssignOp::Assign,
        value,
    } = body
    else {
        return None;
    };
    let [index] = indices.as_slice() else {
        return None;
    };
    let offset = affine_offset(index, loop_slot)?;
    let RExpr::Call(name, _, call_args) = value else {
        return None;
    };
    // Hoisting argument evaluation out of the loop must not reorder RNG
    // consumption, and borrowing windows must not alias the written target.
    let aliases_or_draws = |e: &RExpr| contains_rng(e) || mentions_slot(e, *target_slot);

    if let Some(dist_name) = name.strip_suffix("_rng") {
        let kind = DistKind::from_name(dist_name)?;
        if kind.is_multivariate() || kind.has_vector_param() {
            return None;
        }
        if call_args.iter().any(aliases_or_draws) || call_args.len() > 3 {
            return None;
        }
        let args: Vec<SweepArgSpec> = call_args
            .iter()
            .map(|a| classify_arg(a, loop_slot))
            .collect::<Option<_>>()?;
        return Some((
            GqSweep {
                loop_slot,
                lo: lo.clone(),
                hi: hi.clone(),
                target_slot: *target_slot,
                offset,
                kind,
                args,
            },
            true,
        ));
    }

    let dist_name = crate::eval::strip_lpdf_suffix(name)?;
    let kind = DistKind::from_name(dist_name)?;
    if !supports_sweep(kind) {
        return None;
    }
    // args[0] is the observed value; at most 3 distribution arguments.
    if call_args.is_empty() || call_args.len() > 4 || call_args.iter().any(aliases_or_draws) {
        return None;
    }
    let args: Vec<SweepArgSpec> = call_args
        .iter()
        .map(|a| classify_arg(a, loop_slot))
        .collect::<Option<_>>()?;
    Some((
        GqSweep {
            loop_slot,
            lo: lo.clone(),
            hi: hi.clone(),
            target_slot: *target_slot,
            offset,
            kind,
            args,
        },
        false,
    ))
}

/// Pooled scratch buffers for sweep evaluation: one per possible argument
/// position plus the draw/log-density output row. Reused across draws.
#[derive(Debug, Default)]
pub(crate) struct GqScratch {
    args: [Vec<f64>; 4],
    out: Vec<f64>,
}

/// Pooled per-thread scratch state for streaming posterior draws through a
/// resolved `generated quantities` program. Build one per chain worker with
/// [`crate::GModel::gq_workspace`]; every draw reuses the lifted data frame
/// (resetting only the written slots), the in-place parameter values, the
/// sweep scratch, and the RNG cell.
pub struct GqWorkspace {
    /// The data frame in the GQ layout; never mutated after construction.
    pub(crate) template: Frame<f64>,
    /// The working frame.
    pub(crate) frame: Frame<f64>,
    pub(crate) scratch: GqScratch,
    /// Constrained-component staging buffer for unconstrained input rows.
    pub(crate) param_buf: Vec<f64>,
    /// The `_rng` stream, reseeded per draw.
    pub(crate) rng: Rc<RefCell<StdRng>>,
}

impl GqWorkspace {
    pub(crate) fn new(template: Frame<f64>) -> Self {
        use rand::SeedableRng;
        GqWorkspace {
            frame: template.clone(),
            template,
            scratch: GqScratch::default(),
            param_buf: Vec::new(),
            rng: Rc::new(RefCell::new(StdRng::seed_from_u64(0))),
        }
    }

    /// Restores the working frame for the next draw, touching only the slots
    /// the block can write, and reseeds the RNG stream.
    pub(crate) fn reset(&mut self, written_slots: &[u32], seed: u64) {
        use rand::SeedableRng;
        self.frame.reset_slots_from(&self.template, written_slots);
        *self.rng.borrow_mut() = StdRng::seed_from_u64(seed);
    }

    /// Reads the value bound to `slot` after a run.
    pub(crate) fn value_of(&self, slot: u32) -> Option<&Value<f64>> {
        self.frame.get(slot)
    }
}

/// Writes one constrained parameter value into the frame, reusing the
/// existing shaped value in place when the shape matches (the steady state
/// when streaming draws) and building a fresh container otherwise.
pub(crate) fn write_param_into(frame: &mut Frame<f64>, slot: u32, comps: &[f64], dims: &[i64]) {
    fn fill(value: &mut Value<f64>, comps: &[f64], dims: &[i64]) -> bool {
        match (value, dims) {
            (Value::Real(x), []) => {
                *x = comps[0];
                true
            }
            (Value::Vector(v), [n]) if v.len() == *n as usize && v.len() == comps.len() => {
                v.copy_from_slice(comps);
                true
            }
            (Value::Array(rows), [n, rest @ ..]) if rows.len() == *n as usize => {
                let chunk = comps.len() / (*n).max(1) as usize;
                rows.iter_mut()
                    .zip(comps.chunks(chunk.max(1)))
                    .all(|(row, c)| fill(row, c, rest))
            }
            _ => false,
        }
    }
    fn build(comps: &[f64], dims: &[i64]) -> Value<f64> {
        match dims {
            [] => Value::Real(comps[0]),
            [_] => Value::Vector(comps.to_vec()),
            [n, rest @ ..] => {
                let chunk = comps.len() / (*n).max(1) as usize;
                Value::Array(comps.chunks(chunk.max(1)).map(|c| build(c, rest)).collect())
            }
        }
    }
    if let Some(existing) = frame.get_mut(slot) {
        if fill(existing, comps, dims) {
            return;
        }
    }
    frame.set(slot, build(comps, dims));
}

/// Control flow of statement execution (mirror of [`crate::eval::Flow`]).
enum GqFlow {
    Normal,
    Return,
    Break,
    Continue,
}

/// Runs a resolved block's statements in a frame. The top-level driver for
/// one draw: flows escaping a top-level statement are discarded, exactly as
/// the string path discards [`crate::eval::Flow`] per statement.
pub(crate) fn run_gq_stmts(
    gq: &ResolvedGq,
    functions: &[FunDecl],
    frame: &mut Frame<f64>,
    rng: Rc<RefCell<StdRng>>,
    scratch: &mut GqScratch,
) -> Result<(), RuntimeError> {
    let eval = EvalCtx::with_table(functions, &gq.core.fn_table).rng(rng);
    let ctx = RCtx {
        resolved: &gq.core,
        functions,
        eval,
    };
    let mut ev = GqEval { ctx: &ctx, scratch };
    for s in &gq.stmts {
        ev.exec(s, frame)?;
    }
    Ok(())
}

/// The statement evaluator for resolved generated quantities.
struct GqEval<'a, 'c> {
    ctx: &'a RCtx<'c, f64>,
    scratch: &'a mut GqScratch,
}

impl GqEval<'_, '_> {
    fn exec(&mut self, s: &RStmt, frame: &mut Frame<f64>) -> Result<GqFlow, RuntimeError> {
        match s {
            RStmt::Skip => Ok(GqFlow::Normal),
            RStmt::Decl(decl) => {
                let v = match &decl.init {
                    Some(e) => reval_expr(e, frame, self.ctx)?,
                    None => default_rvalue(decl, frame, self.ctx)?,
                };
                frame.set(decl.slot, v);
                Ok(GqFlow::Normal)
            }
            RStmt::Assign {
                slot,
                indices,
                op,
                value,
            } => {
                let mut v = reval_expr(value, frame, self.ctx)?;
                if *op != AssignOp::Assign {
                    let current = self.read_target(*slot, indices, frame)?;
                    let bop = match op {
                        AssignOp::AddAssign => stan_frontend::ast::BinOp::Add,
                        AssignOp::SubAssign => stan_frontend::ast::BinOp::Sub,
                        AssignOp::MulAssign => stan_frontend::ast::BinOp::Mul,
                        AssignOp::DivAssign => stan_frontend::ast::BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    v = eval_binary(bop, current, v)?;
                }
                let idx: Vec<i64> = indices
                    .iter()
                    .map(|i| reval_expr(i, frame, self.ctx)?.as_int())
                    .collect::<Result<_, _>>()?;
                if idx.is_empty() {
                    frame.set(*slot, v);
                } else {
                    let target = frame.get_mut(*slot).ok_or_else(|| self.unbound(*slot))?;
                    set_nested(target, &idx, v)?;
                }
                Ok(GqFlow::Normal)
            }
            RStmt::TargetPlus(e) => {
                reval_expr(e, frame, self.ctx)?.sum_as_real()?;
                Err(RuntimeError::new(
                    "target += is not allowed in a deterministic block",
                ))
            }
            RStmt::Tilde {
                lhs,
                dist,
                args,
                truncated,
            } => {
                if *truncated {
                    return Err(RuntimeError::new(format!(
                        "truncated distribution `{dist}` is not supported by the generative backends"
                    )));
                }
                reval_expr(lhs, frame, self.ctx)?;
                for a in args {
                    reval_expr(a, frame, self.ctx)?;
                }
                Err(RuntimeError::new(
                    "sampling statements are not allowed in a deterministic block",
                ))
            }
            RStmt::Block(ss) => {
                for s in ss {
                    match self.exec(s, frame)? {
                        GqFlow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(GqFlow::Normal)
            }
            RStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = reval_expr(cond, frame, self.ctx)?.as_real()?;
                if c != 0.0 {
                    self.exec(then_branch, frame)
                } else if let Some(e) = else_branch {
                    self.exec(e, frame)
                } else {
                    Ok(GqFlow::Normal)
                }
            }
            RStmt::ForRange { slot, lo, hi, body } => {
                let lo = reval_expr(lo, frame, self.ctx)?.as_int()?;
                let hi = reval_expr(hi, frame, self.ctx)?.as_int()?;
                for i in lo..=hi {
                    frame.set(*slot, Value::Int(i));
                    match self.exec(body, frame)? {
                        GqFlow::Break => break,
                        GqFlow::Return => return Ok(GqFlow::Return),
                        GqFlow::Normal | GqFlow::Continue => {}
                    }
                }
                frame.clear(*slot);
                Ok(GqFlow::Normal)
            }
            RStmt::ForEach {
                slot,
                collection,
                body,
            } => {
                let coll = reval_expr(collection, frame, self.ctx)?;
                for i in 1..=coll.len() as i64 {
                    frame.set(*slot, coll.index(i)?);
                    match self.exec(body, frame)? {
                        GqFlow::Break => break,
                        GqFlow::Return => return Ok(GqFlow::Return),
                        GqFlow::Normal | GqFlow::Continue => {}
                    }
                }
                frame.clear(*slot);
                Ok(GqFlow::Normal)
            }
            RStmt::While { cond, body } => {
                let mut iterations = 0usize;
                loop {
                    let c = reval_expr(cond, frame, self.ctx)?.as_real()?;
                    if c == 0.0 {
                        break;
                    }
                    iterations += 1;
                    if iterations > 10_000_000 {
                        return Err(RuntimeError::new(
                            "while loop exceeded the iteration budget",
                        ));
                    }
                    match self.exec(body, frame)? {
                        GqFlow::Break => break,
                        GqFlow::Return => return Ok(GqFlow::Return),
                        GqFlow::Normal | GqFlow::Continue => {}
                    }
                }
                Ok(GqFlow::Normal)
            }
            RStmt::Reject(msg) => Err(RuntimeError::new(format!("reject: {msg}"))),
            RStmt::Return(e) => {
                if let Some(e) = e {
                    reval_expr(e, frame, self.ctx)?;
                }
                Ok(GqFlow::Return)
            }
            RStmt::Break => Ok(GqFlow::Break),
            RStmt::Continue => Ok(GqFlow::Continue),
            RStmt::LpdfSweep { sweep, fallback } => match self.try_lpdf_sweep(sweep, frame)? {
                true => {
                    frame.clear(sweep.loop_slot);
                    Ok(GqFlow::Normal)
                }
                false => self.exec(fallback, frame),
            },
            RStmt::RngSweep { sweep, fallback } => match self.try_rng_sweep(sweep, frame)? {
                true => {
                    frame.clear(sweep.loop_slot);
                    Ok(GqFlow::Normal)
                }
                false => self.exec(fallback, frame),
            },
            RStmt::LpdfAssign {
                slot,
                kind,
                args,
                fallback,
            } => match self.try_lpdf_assign(*slot, *kind, args, frame)? {
                true => Ok(GqFlow::Normal),
                false => self.exec(fallback, frame),
            },
        }
    }

    /// Attempts the batched evaluation of a whole-container lpdf assignment:
    /// one `lpdf_elems` row plus an in-order sum, preserving the statement's
    /// scalar-sum value exactly. Returns `Ok(false)` (nothing mutated) when
    /// the runtime shapes decline — scalar observations, nested containers,
    /// broadcast mismatches — and the generic assignment re-runs.
    fn try_lpdf_assign(
        &mut self,
        slot: u32,
        kind: DistKind,
        args: &[RExpr],
        frame: &mut Frame<f64>,
    ) -> Result<bool, RuntimeError> {
        let frame_ro: &Frame<f64> = frame;
        let Ok(observed) = reval_ref(&args[0], frame_ro, self.ctx) else {
            return Ok(false);
        };
        let xs = match observed.as_value() {
            Value::Vector(v) => SweepVals::Reals(v.as_slice()),
            Value::IntArray(v) => SweepVals::Ints(v.as_slice()),
            _ => return Ok(false),
        };
        let n = xs.len();
        let mut borrowed: [Option<RefValue<f64>>; 3] = [None, None, None];
        for (a, slot_ref) in args[1..].iter().zip(borrowed.iter_mut()) {
            match reval_ref(a, frame_ro, self.ctx) {
                Ok(v) => *slot_ref = Some(v),
                Err(_) => return Ok(false),
            }
        }
        let k = args.len() - 1;
        let mut dist_args: [SweepArg<f64>; 3] = [SweepArg::Scalar(0.0); 3];
        for j in 0..k {
            dist_args[j] = match borrowed[j].as_ref().expect("evaluated above").as_value() {
                Value::Real(x) => SweepArg::Scalar(*x),
                Value::Int(i) => SweepArg::Scalar(*i as f64),
                Value::Vector(v) if v.len() == n && n > 1 => SweepArg::Reals(v.as_slice()),
                Value::IntArray(v) if v.len() == n && n > 1 => SweepArg::Ints(v.as_slice()),
                _ => return Ok(false),
            };
        }
        let out = &mut self.scratch.out;
        out.clear();
        out.resize(n, 0.0);
        if lpdf_elems(kind, xs, &dist_args[..k], out).is_err() {
            return Ok(false);
        }
        let total: f64 = out.iter().sum();
        drop(borrowed);
        frame.set(slot, Value::Real(total));
        Ok(true)
    }

    fn unbound(&self, slot: u32) -> RuntimeError {
        RuntimeError::new(format!(
            "unbound variable `{}`",
            self.ctx.resolved.name_of(slot)
        ))
    }

    fn read_target(
        &self,
        slot: u32,
        indices: &[RExpr],
        frame: &Frame<f64>,
    ) -> Result<Value<f64>, RuntimeError> {
        let mut v = frame.get(slot).cloned().ok_or_else(|| self.unbound(slot))?;
        for idx in indices {
            let i = reval_expr(idx, frame, self.ctx)?.as_int()?;
            v = v.index(i)?;
        }
        Ok(v)
    }

    /// Evaluates the sweep's bounds and classified arguments into scalars,
    /// pooled scratch buffers, and borrowable windows. Returns `None` when
    /// the runtime shapes decline (the caller then runs the scalar loop,
    /// having consumed no RNG).
    #[allow(clippy::type_complexity)]
    fn eval_sweep_args<'f>(
        args: &[SweepArgSpec],
        loop_slot: u32,
        lo: i64,
        hi: i64,
        frame: &'f mut Frame<f64>,
        scratch: &mut [Vec<f64>; 4],
        ctx: &RCtx<f64>,
    ) -> Option<([ArgKind; 4], [Option<RefValue<'f, f64>>; 4])> {
        let n = (hi - lo + 1) as usize;
        let mut kinds = [
            ArgKind::Missing,
            ArgKind::Missing,
            ArgKind::Missing,
            ArgKind::Missing,
        ];
        for ((spec, kind), buf) in args.iter().zip(kinds.iter_mut()).zip(scratch.iter_mut()) {
            match spec {
                SweepArgSpec::Invariant(e) => match reval_expr(e, frame, ctx).ok()? {
                    Value::Real(x) => *kind = ArgKind::Scalar(x),
                    Value::Int(i) => *kind = ArgKind::Scalar(i as f64),
                    _ => return None,
                },
                SweepArgSpec::Elementwise(e) => {
                    buf.clear();
                    buf.reserve(n);
                    for v in lo..=hi {
                        frame.set(loop_slot, Value::Int(v));
                        buf.push(reval_expr(e, frame, ctx).ok()?.as_real().ok()?);
                    }
                    *kind = ArgKind::Elems;
                }
                SweepArgSpec::Indexed(access) => *kind = ArgKind::Indexed(access.offset),
            }
        }
        // Borrow the directly indexed bases read-only (after all mutation of
        // the frame is done).
        let frame_ro: &'f Frame<f64> = frame;
        let mut bases: [Option<RefValue<'f, f64>>; 4] = [None, None, None, None];
        for ((spec, kind), slot) in args.iter().zip(kinds.iter()).zip(bases.iter_mut()) {
            if let (SweepArgSpec::Indexed(access), ArgKind::Indexed(_)) = (spec, kind) {
                *slot = Some(reval_ref(&access.base, frame_ro, ctx).ok()?);
            }
        }
        Some((kinds, bases))
    }

    /// Attempts the batched evaluation of a pointwise-`lpdf` row. Returns
    /// `Ok(true)` when the kernel filled the target window, `Ok(false)` to
    /// fall back to the scalar loop (nothing mutated that the fallback does
    /// not rewrite).
    fn try_lpdf_sweep(
        &mut self,
        sweep: &GqSweep,
        frame: &mut Frame<f64>,
    ) -> Result<bool, RuntimeError> {
        let Some((lo, hi)) = self.sweep_bounds(sweep, frame) else {
            return Ok(false);
        };
        if hi < lo {
            return Ok(true);
        }
        let n = (hi - lo + 1) as usize;
        // Target window must be a flat real vector span.
        let start = lo + sweep.offset;
        let end = hi + sweep.offset;
        match frame.get(sweep.target_slot) {
            Some(Value::Vector(v)) if start >= 1 && end as usize <= v.len() => {}
            _ => return Ok(false),
        }
        let GqScratch { args: scratch, out } = &mut *self.scratch;
        let Some((kinds, bases)) = Self::eval_sweep_args(
            &sweep.args,
            sweep.loop_slot,
            lo,
            hi,
            frame,
            scratch,
            self.ctx,
        ) else {
            return Ok(false);
        };
        // args[0] is the observed value; the rest parameterize the family. A
        // loop-invariant scalar observation (`normal_lpdf(c | ...)`) is
        // legal but not worth a kernel; keep the scalar loop for it.
        let xs = match (&kinds[0], &bases[0]) {
            (ArgKind::Elems, _) => SweepVals::Reals(scratch[0].as_slice()),
            (ArgKind::Indexed(off), Some(base)) => {
                match slice_window(base.as_value(), lo, hi, *off) {
                    Some(w) => w,
                    None => return Ok(false),
                }
            }
            _ => return Ok(false),
        };
        let mut dist_args: [SweepArg<f64>; 3] = [SweepArg::Scalar(0.0); 3];
        let k = sweep.args.len() - 1;
        for j in 0..k {
            dist_args[j] = match (&kinds[j + 1], &bases[j + 1]) {
                (ArgKind::Scalar(x), _) => SweepArg::Scalar(*x),
                (ArgKind::Elems, _) => SweepArg::Reals(&scratch[j + 1]),
                (ArgKind::Indexed(off), Some(base)) => {
                    match slice_window(base.as_value(), lo, hi, *off) {
                        Some(SweepVals::Reals(v)) => SweepArg::Reals(v),
                        Some(SweepVals::Ints(v)) => SweepArg::Ints(v),
                        None => return Ok(false),
                    }
                }
                _ => return Ok(false),
            };
        }
        out.clear();
        out.resize(n, 0.0);
        if lpdf_elems(sweep.kind, xs, &dist_args[..k], out).is_err() {
            return Ok(false);
        }
        // Write the row into the target window (the immutable borrows above
        // have ended).
        let Some(Value::Vector(target)) = frame.get_mut(sweep.target_slot) else {
            return Ok(false);
        };
        target[(start - 1) as usize..end as usize].copy_from_slice(out);
        Ok(true)
    }

    /// Attempts the batched evaluation of an element-wise `_rng` row. Shapes
    /// are validated *before* any RNG consumption, so a fallback re-run
    /// observes the identical stream; per-element sampling errors after that
    /// point are hard errors, exactly where the scalar loop would raise
    /// them.
    fn try_rng_sweep(
        &mut self,
        sweep: &GqSweep,
        frame: &mut Frame<f64>,
    ) -> Result<bool, RuntimeError> {
        let Some((lo, hi)) = self.sweep_bounds(sweep, frame) else {
            return Ok(false);
        };
        if hi < lo {
            return Ok(true);
        }
        let n = (hi - lo + 1) as usize;
        let start = lo + sweep.offset;
        let end = hi + sweep.offset;
        // The target must be a flat container whose window is in bounds; its
        // element kind decides how draws are stored. A real-drawing family
        // writing into an int array would promote the array element by
        // element on the scalar path (`Value::set_index`); that shape
        // declines here — before any RNG consumption — so the fallback
        // reproduces the promotion exactly.
        let int_draws = draws_ints(sweep.kind);
        let int_target = match frame.get(sweep.target_slot) {
            Some(Value::Vector(v)) if start >= 1 && end as usize <= v.len() => false,
            Some(Value::IntArray(v)) if start >= 1 && end as usize <= v.len() && int_draws => true,
            _ => return Ok(false),
        };
        let rng = match &self.ctx.eval.rng {
            Some(rng) => rng.clone(),
            None => return Ok(false),
        };
        let GqScratch { args: scratch, out } = &mut *self.scratch;
        let Some((kinds, bases)) = Self::eval_sweep_args(
            &sweep.args,
            sweep.loop_slot,
            lo,
            hi,
            frame,
            scratch,
            self.ctx,
        ) else {
            return Ok(false);
        };
        let k = sweep.args.len();
        // Resolve each argument position to a per-element reader.
        enum Rd<'a> {
            Scalar(f64),
            Reals(&'a [f64]),
            Ints(&'a [i64]),
        }
        let mut readers: [Option<Rd>; 3] = [None, None, None];
        for j in 0..k {
            readers[j] = Some(match (&kinds[j], &bases[j]) {
                (ArgKind::Scalar(x), _) => Rd::Scalar(*x),
                (ArgKind::Elems, _) => Rd::Reals(&scratch[j]),
                (ArgKind::Indexed(off), Some(base)) => {
                    match slice_window(base.as_value(), lo, hi, *off) {
                        Some(SweepVals::Reals(v)) => Rd::Reals(v),
                        Some(SweepVals::Ints(v)) => Rd::Ints(v),
                        None => return Ok(false),
                    }
                }
                _ => return Ok(false),
            });
        }
        // Draw, in the scalar loop's element order. From here on, errors are
        // hard (the RNG stream has advanced).
        out.clear();
        out.reserve(n);
        {
            let mut rng = rng.borrow_mut();
            let mut elem_args: [DistArg<f64>; 3] = [
                DistArg::Scalar(0.0),
                DistArg::Scalar(0.0),
                DistArg::Scalar(0.0),
            ];
            for i in 0..n {
                for (j, rd) in readers[..k].iter().enumerate() {
                    elem_args[j] = DistArg::Scalar(match rd.as_ref().expect("resolved above") {
                        Rd::Scalar(x) => *x,
                        Rd::Reals(v) => v[i],
                        Rd::Ints(v) => v[i] as f64,
                    });
                }
                let d = dist_from_kind(sweep.kind, &elem_args[..k])?;
                match d.sample(&mut *rng)? {
                    SampleValue::Real(x) => out.push(x),
                    SampleValue::Int(x) => out.push(x as f64),
                    SampleValue::Vec(_) => {
                        return Err(RuntimeError::new(format!(
                            "{}_rng: vector draw cannot fill a scalar element",
                            sweep.kind.name()
                        )))
                    }
                }
            }
        }
        match frame.get_mut(sweep.target_slot) {
            Some(Value::Vector(target)) if !int_target => {
                target[(start - 1) as usize..end as usize].copy_from_slice(out);
            }
            Some(Value::IntArray(target)) if int_target => {
                for (t, &x) in target[(start - 1) as usize..end as usize]
                    .iter_mut()
                    .zip(out.iter())
                {
                    *t = x as i64;
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn sweep_bounds(&self, sweep: &GqSweep, frame: &Frame<f64>) -> Option<(i64, i64)> {
        let lo = reval_expr(&sweep.lo, frame, self.ctx).ok()?.as_int().ok()?;
        let hi = reval_expr(&sweep.hi, frame, self.ctx).ok()?.as_int().ok()?;
        Some((lo, hi))
    }
}

/// Argument classification after evaluation.
enum ArgKind {
    Missing,
    Scalar(f64),
    Elems,
    Indexed(i64),
}

/// Whether a family's draws are integers ([`SampleValue::Int`]) — decidable
/// statically, which is what lets [`RStmt::RngSweep`] validate its target
/// container before consuming any RNG. Multivariate and vector-parameter
/// families never reach this point (lowering declines them).
fn draws_ints(kind: DistKind) -> bool {
    matches!(
        kind,
        DistKind::Bernoulli
            | DistKind::BernoulliLogit
            | DistKind::Binomial
            | DistKind::BinomialLogit
            | DistKind::Poisson
            | DistKind::PoissonLog
            | DistKind::Categorical
            | DistKind::CategoricalLogit
    )
}

/// Flat component names of one generated quantity in Stan's `name[i,j]`
/// convention, derived from the value's runtime shape.
pub fn flat_names(name: &str, value: &Value<f64>) -> Vec<String> {
    fn walk(prefix: &str, idx: &mut Vec<i64>, value: &Value<f64>, out: &mut Vec<String>) {
        let label = |idx: &[i64]| {
            if idx.is_empty() {
                prefix.to_string()
            } else {
                let parts: Vec<String> = idx.iter().map(|i| i.to_string()).collect();
                format!("{prefix}[{}]", parts.join(","))
            }
        };
        match value {
            Value::Real(_) | Value::Int(_) | Value::Unit => out.push(label(idx)),
            Value::Vector(v) => {
                for i in 1..=v.len() as i64 {
                    idx.push(i);
                    out.push(label(idx));
                    idx.pop();
                }
            }
            Value::IntArray(v) => {
                for i in 1..=v.len() as i64 {
                    idx.push(i);
                    out.push(label(idx));
                    idx.pop();
                }
            }
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    idx.push(i as i64 + 1);
                    walk(prefix, idx, item, out);
                    idx.pop();
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(name, &mut Vec::new(), value, &mut out);
    out
}

/// Flattens a value into reals, appending to `out`.
pub(crate) fn flatten_into(value: &Value<f64>, out: &mut Vec<f64>) -> Result<(), RuntimeError> {
    match value {
        Value::Real(x) => out.push(*x),
        Value::Int(k) => out.push(*k as f64),
        Value::Vector(v) => out.extend_from_slice(v),
        Value::IntArray(v) => out.extend(v.iter().map(|&k| k as f64)),
        Value::Array(items) => {
            for item in items {
                flatten_into(item, out)?;
            }
        }
        Value::Unit => return Err(RuntimeError::new("generated quantity evaluated to unit")),
    }
    Ok(())
}

/// Converts the outputs bound in a workspace frame to a string-keyed
/// environment — the API-boundary form matching the string path's return.
pub(crate) fn outputs_to_env(gq: &ResolvedGq, ws: &GqWorkspace) -> Env<f64> {
    let mut env = Env::new();
    for out in &gq.outputs {
        if let Some(v) = ws.value_of(out.slot) {
            env.insert(out.name.clone(), v.clone());
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ParamInfo;
    use crate::GModel;
    use rand::SeedableRng;
    use stan_frontend::ast::{BaseType, BlockBody, ConstraintSpec, Decl, LValue};

    fn decl(ty: BaseType, name: &str, dims: Vec<Expr>) -> Decl {
        Decl {
            ty,
            constraint: ConstraintSpec::default(),
            name: name.into(),
            dims,
            init: None,
        }
    }

    fn idx(base: &str, i: Expr) -> Expr {
        Expr::Index(Box::new(Expr::var(base)), vec![i])
    }

    fn assign_loop(target: &str, rhs: Expr) -> Stmt {
        Stmt::ForRange {
            var: "i".into(),
            lo: Expr::IntLit(1),
            hi: Expr::var("N"),
            body: Box::new(Stmt::Assign {
                lhs: LValue {
                    name: target.into(),
                    indices: vec![Expr::var("i")],
                },
                op: AssignOp::Assign,
                rhs,
            }),
        }
    }

    /// A program whose GQ block exercises both sweep shapes plus a scalar
    /// reduction: pointwise normal log-lik rows, a `_rng` replication row
    /// with an element-wise mean, and `sum` over the row.
    fn gq_program() -> GProbProgram {
        let ll_rhs = Expr::Call(
            "normal_lpdf".into(),
            vec![
                idx("y", Expr::var("i")),
                Expr::var("mu"),
                Expr::RealLit(2.0),
            ],
        );
        let yr_rhs = Expr::Call(
            "normal_rng".into(),
            vec![
                Expr::Binary(
                    stan_frontend::ast::BinOp::Add,
                    Box::new(Expr::var("mu")),
                    Box::new(idx("y", Expr::var("i"))),
                ),
                Expr::RealLit(1.0),
            ],
        );
        let stmts = vec![
            Stmt::LocalDecl(decl(
                BaseType::Vector(Box::new(Expr::var("N"))),
                "ll",
                vec![],
            )),
            assign_loop("ll", ll_rhs),
            Stmt::LocalDecl(decl(BaseType::Real, "s", vec![])),
            Stmt::Assign {
                lhs: LValue {
                    name: "s".into(),
                    indices: vec![],
                },
                op: AssignOp::Assign,
                rhs: Expr::Call("sum".into(), vec![Expr::var("ll")]),
            },
            Stmt::LocalDecl(decl(
                BaseType::Vector(Box::new(Expr::var("N"))),
                "yr",
                vec![],
            )),
            assign_loop("yr", yr_rhs),
        ];
        GProbProgram {
            data: vec![
                decl(BaseType::Int, "N", vec![]),
                decl(BaseType::Vector(Box::new(Expr::var("N"))), "y", vec![]),
            ],
            params: vec![ParamInfo::scalar("mu")],
            generated_quantities: Some(BlockBody { stmts }),
            gq_outputs: vec!["ll".into(), "s".into(), "yr".into()],
            ..Default::default()
        }
    }

    fn data() -> Env<f64> {
        let mut env = Env::new();
        env.insert("N".into(), Value::Int(4));
        env.insert("y".into(), Value::Vector(vec![0.4, -1.2, 2.0, 0.7]));
        env
    }

    #[test]
    fn lpdf_and_rng_loops_lower_to_sweeps() {
        let program = gq_program();
        let fused = resolve_gq(&program).unwrap();
        assert_eq!(count_gq_sweeps(&fused.stmts), 2);
        assert!(matches!(fused.stmts[1], RStmt::LpdfSweep { .. }));
        assert!(matches!(fused.stmts[5], RStmt::RngSweep { .. }));
        let scalar = resolve_gq_scalar(&program).unwrap();
        assert_eq!(count_gq_sweeps(&scalar.stmts), 0);
        assert_eq!(fused.outputs.len(), 3);
    }

    #[test]
    fn resolved_gq_matches_the_string_path_and_reuses_its_workspace() {
        let program = gq_program();
        let fused = GModel::new(program.clone(), data()).unwrap();
        let scalar = GModel::new_scalar(program, data()).unwrap();
        let theta_u = [0.5];
        for seed in [1u64, 7, 23] {
            let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
            let want = fused.generated_quantities(&theta_u, rng).unwrap();
            let got = fused.generated_quantities_resolved(&theta_u, seed).unwrap();
            let got_scalar = scalar
                .generated_quantities_resolved(&theta_u, seed)
                .unwrap();
            for key in ["ll", "s", "yr"] {
                let w = want.get(key).unwrap().as_real_vec().unwrap();
                let g = got.get(key).unwrap().as_real_vec().unwrap();
                let gs = got_scalar.get(key).unwrap().as_real_vec().unwrap();
                assert_eq!(w.len(), g.len(), "{key}");
                for ((a, b), c) in w.iter().zip(&g).zip(&gs) {
                    assert!((a - b).abs() < 1e-12, "{key}: {a} vs {b}");
                    assert!((a - c).abs() < 1e-12, "{key}: {a} vs {c}");
                }
            }
        }
        // Streaming on one workspace: identical rows for identical seeds,
        // names derived from the bound shapes.
        let mut ws = fused.gq_workspace().unwrap();
        let mut row1 = Vec::new();
        fused
            .generated_quantities_into(&mut ws, &theta_u, false, 11, &mut row1)
            .unwrap();
        let names = fused.gq_component_names(&ws).unwrap();
        assert_eq!(names.len(), row1.len());
        assert!(names.contains(&"ll[1]".to_string()));
        assert!(names.contains(&"s".to_string()));
        let mut row2 = Vec::new();
        fused
            .generated_quantities_into(&mut ws, &theta_u, false, 11, &mut row2)
            .unwrap();
        assert_eq!(row1, row2);
        // Different seeds change the _rng outputs but not the log-lik row.
        let mut row3 = Vec::new();
        fused
            .generated_quantities_into(&mut ws, &theta_u, false, 12, &mut row3)
            .unwrap();
        assert_eq!(row1[..5], row3[..5]);
        assert_ne!(row1[5..], row3[5..]);
    }

    /// A GQ block with whole-container rows: a summed log-lik scalar from a
    /// container observation (with a per-element argument), plus a decoy
    /// compound assignment that must NOT lower.
    fn whole_container_program() -> GProbProgram {
        let stmts = vec![
            Stmt::LocalDecl(decl(BaseType::Real, "total_ll", vec![])),
            Stmt::Assign {
                lhs: LValue {
                    name: "total_ll".into(),
                    indices: vec![],
                },
                op: AssignOp::Assign,
                rhs: Expr::Call(
                    "normal_lpdf".into(),
                    vec![Expr::var("y"), Expr::var("mu"), Expr::RealLit(2.0)],
                ),
            },
            Stmt::LocalDecl(decl(BaseType::Real, "twice", vec![])),
            Stmt::Assign {
                lhs: LValue {
                    name: "twice".into(),
                    indices: vec![],
                },
                op: AssignOp::Assign,
                rhs: Expr::Call(
                    "bernoulli_lpmf".into(),
                    vec![Expr::var("k"), Expr::RealLit(0.3)],
                ),
            },
        ];
        GProbProgram {
            data: vec![
                decl(BaseType::Int, "N", vec![]),
                decl(BaseType::Vector(Box::new(Expr::var("N"))), "y", vec![]),
                decl(BaseType::Int, "k", vec![Expr::var("N")]),
            ],
            params: vec![ParamInfo::scalar("mu")],
            generated_quantities: Some(BlockBody { stmts }),
            gq_outputs: vec!["total_ll".into(), "twice".into()],
            ..Default::default()
        }
    }

    #[test]
    fn whole_container_lpdf_assignments_lower_and_match_the_string_path() {
        let program = whole_container_program();
        let fused = resolve_gq(&program).unwrap();
        // Both rows lower (vector observation and int-array observation).
        assert_eq!(count_gq_sweeps(&fused.stmts), 2);
        assert!(matches!(fused.stmts[1], RStmt::LpdfAssign { .. }));
        assert!(matches!(fused.stmts[3], RStmt::LpdfAssign { .. }));
        let scalar = resolve_gq_scalar(&program).unwrap();
        assert_eq!(count_gq_sweeps(&scalar.stmts), 0);
        // The scalar-sum value is pinned to the string path and to the
        // unlowered configuration.
        let mut env = Env::new();
        env.insert("N".into(), Value::Int(4));
        env.insert("y".into(), Value::Vector(vec![0.4, -1.2, 2.0, 0.7]));
        env.insert("k".into(), Value::IntArray(vec![1, 0, 0, 1]));
        let fused = GModel::new(program.clone(), env.clone()).unwrap();
        let scalar = GModel::new_scalar(program, env).unwrap();
        let want = fused
            .generated_quantities(&[0.5], Rc::new(RefCell::new(StdRng::seed_from_u64(5))))
            .unwrap();
        let got = fused.generated_quantities_resolved(&[0.5], 5).unwrap();
        let got_scalar = scalar.generated_quantities_resolved(&[0.5], 5).unwrap();
        for key in ["total_ll", "twice"] {
            let w = want.get(key).unwrap().as_real().unwrap();
            let g = got.get(key).unwrap().as_real().unwrap();
            let gs = got_scalar.get(key).unwrap().as_real().unwrap();
            assert!((w - g).abs() < 1e-12, "{key}: {w} vs {g}");
            assert!((w - gs).abs() < 1e-12, "{key}: {w} vs {gs}");
        }
        // A scalar observation declines at runtime and falls back to the
        // generic assignment (same value).
        let mut env2 = Env::new();
        env2.insert("N".into(), Value::Int(1));
        env2.insert("y".into(), Value::Real(0.4));
        env2.insert("k".into(), Value::IntArray(vec![1]));
        let m2 = GModel::new(whole_container_program(), env2).unwrap();
        let a = m2.generated_quantities_resolved(&[0.5], 5).unwrap();
        let b = m2
            .generated_quantities(&[0.5], Rc::new(RefCell::new(StdRng::seed_from_u64(5))))
            .unwrap();
        assert!(
            (a.get("total_ll").unwrap().as_real().unwrap()
                - b.get("total_ll").unwrap().as_real().unwrap())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn runtime_shapes_that_decline_fall_back_to_the_scalar_loop() {
        // Loop runs past the end of y: the sweep declines and the fallback
        // reproduces the scalar out-of-bounds error.
        let mut program = gq_program();
        if let Some(gq) = &mut program.generated_quantities {
            // Rewrite both loop bounds to N + 2.
            for s in &mut gq.stmts {
                if let Stmt::ForRange { hi, .. } = s {
                    *hi = Expr::Binary(
                        stan_frontend::ast::BinOp::Add,
                        Box::new(Expr::var("N")),
                        Box::new(Expr::IntLit(2)),
                    );
                }
            }
        }
        let fused = GModel::new(program.clone(), data()).unwrap();
        let scalar = GModel::new_scalar(program, data()).unwrap();
        let ef = fused.generated_quantities_resolved(&[0.5], 3).unwrap_err();
        let es = scalar.generated_quantities_resolved(&[0.5], 3).unwrap_err();
        assert_eq!(ef, es);
        assert!(ef.message().contains("out of bounds"), "{}", ef.message());
    }

    #[test]
    fn parameters_are_written_in_place_across_draws() {
        let mut frame: Frame<f64> = Frame::new(1);
        write_param_into(&mut frame, 0, &[1.0, 2.0, 3.0], &[3]);
        assert_eq!(frame.get(0), Some(&Value::Vector(vec![1.0, 2.0, 3.0])));
        write_param_into(&mut frame, 0, &[4.0, 5.0, 6.0], &[3]);
        assert_eq!(frame.get(0), Some(&Value::Vector(vec![4.0, 5.0, 6.0])));
        // Matrix-shaped parameter.
        write_param_into(&mut frame, 0, &[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(
            frame.get(0),
            Some(&Value::Array(vec![
                Value::Vector(vec![1.0, 2.0]),
                Value::Vector(vec![3.0, 4.0]),
            ]))
        );
    }

    #[test]
    fn flat_names_follow_the_stan_convention() {
        assert_eq!(flat_names("s", &Value::Real(1.0)), vec!["s"]);
        assert_eq!(
            flat_names("v", &Value::Vector(vec![1.0, 2.0])),
            vec!["v[1]", "v[2]"]
        );
        assert_eq!(
            flat_names(
                "m",
                &Value::Array(vec![
                    Value::Vector(vec![1.0, 2.0]),
                    Value::Vector(vec![3.0, 4.0]),
                ])
            ),
            vec!["m[1,1]", "m[1,2]", "m[2,1]", "m[2,2]"]
        );
    }
}
