//! [`GModel`] — a compiled GProb program instantiated with data, exposing the
//! unconstrained log-density interface used by gradient-based inference.
//!
//! Like CmdStan and NumPyro, inference runs on an unconstrained space: every
//! constrained parameter is mapped through the transforms of
//! [`probdist::Constraint`] and the log-Jacobian is added to the density.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};

use minidiff::{grad_into, tape, Real, Var};
use probdist::Constraint;
use rand::rngs::StdRng;
use rand::Rng;

use crate::eval::{
    eval_expr, exec_stmt, DeterministicOnly, EvalCtx, ExternalFns, Flow, NoExternals,
};
use crate::interp::{Interp, Mode, RunResult};
use crate::ir::GProbProgram;
use crate::resolved::{
    resolve_program, resolve_program_scalar as gprob_resolve_scalar, Frame, ResolvedProgram,
};
use crate::reval::{RCtx, RInterp, RMode};
use crate::value::{lift_env, Env, RuntimeError, Value};
use crate::workspace::{DensityWorkspace, GradWorkspace};

/// The flat layout of one parameter in the unconstrained vector.
#[derive(Debug, Clone)]
pub struct ParamSlot {
    /// Parameter name.
    pub name: String,
    /// Evaluated shape (outermost dimension first; empty for scalars).
    pub dims: Vec<i64>,
    /// Total number of scalar components.
    pub size: usize,
    /// Offset of the first component in the flat vector.
    pub offset: usize,
    /// Domain constraint shared by every component.
    pub constraint: Constraint,
}

impl ParamSlot {
    /// Component names in Stan's `name[i,j]` convention (used for reporting
    /// posterior summaries).
    pub fn component_names(&self) -> Vec<String> {
        if self.size == 1 && self.dims.is_empty() {
            return vec![self.name.clone()];
        }
        let mut names = Vec::with_capacity(self.size);
        let mut idx = vec![1i64; self.dims.len()];
        for _ in 0..self.size {
            let suffix: Vec<String> = idx.iter().map(|i| i.to_string()).collect();
            names.push(format!("{}[{}]", self.name, suffix.join(",")));
            // Row-major increment.
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] <= self.dims[d] {
                    break;
                }
                idx[d] = 1;
            }
        }
        names
    }
}

/// A GProb program instantiated with a concrete data set.
///
/// Construction resolves the program to its slot-annotated form
/// ([`ResolvedProgram`]); the density hot path runs entirely on
/// [`Frame`] environments (no string hashing). The string-keyed evaluation
/// path is retained as [`GModel::log_density_baseline`] for differential
/// testing and benchmarking.
pub struct GModel {
    program: GProbProgram,
    resolved: ResolvedProgram,
    /// The slot-resolved `generated quantities` program (own frame layout),
    /// when the program has the block.
    resolved_gq: Option<crate::gq::ResolvedGq>,
    data: Env<f64>,
    /// The post-`transformed data` environment as a frame, cloned (and
    /// lifted) once per density evaluation.
    data_frame: Frame<f64>,
    slots: Vec<ParamSlot>,
    /// Frame slot of each parameter, parallel to `slots`.
    param_frame_slots: Vec<u32>,
    dim: usize,
    /// The tape-free density program compiled at bind time
    /// ([`crate::dprog`]), when the body admits one. `f64` density and
    /// gradient evaluations route here; the interpreted `Var`/tape path is
    /// retained as the differential oracle and as the fallback for declined
    /// programs.
    dprog: Option<crate::dprog::DProg>,
    /// Why the density program declined, when it did.
    dprog_decline: Option<crate::dprog::Decline>,
    /// The density program JIT-compiled to native code
    /// ([`crate::dprog::jit`]), when the target supports it. Single-point
    /// `f64` density and gradient evaluations route here first; the
    /// interpreted DProg is retained byte-identically as the oracle and as
    /// the fallback, and batched lane evaluation stays interpreted (its
    /// per-point bitwise contract is pinned against the sequential path).
    jit: Option<crate::dprog::jit::JitProg>,
    /// Why JIT compilation declined, when it did.
    jit_decline: Option<crate::dprog::Decline>,
}

/// The process-wide count of [`GModel`] bind operations (each one pays the
/// full resolve + sweep-lowering + DProg-lowering cost) lives in the
/// [`obs`] registry as the counter `bind.count`. Serving layers use the
/// delta across a request to assert that cache hits perform **zero**
/// compile/resolve/lower work; see [`bind_count`].
fn bind_counter() -> &'static obs::Counter {
    static COUNTER: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| obs::counter("bind.count"))
}

/// Number of [`GModel`] binds performed by this process so far (the
/// `bind.count` registry counter). Monotone; compare deltas, not absolute
/// values (other threads may bind concurrently).
pub fn bind_count() -> u64 {
    bind_counter().get()
}

/// Folds a decline reason into a counter-name slug: lower-cased
/// alphanumerics, runs of anything else collapsed to one `_`, truncated —
/// so decline *rates by reason* are trackable without unbounded metric
/// cardinality from embedded identifiers.
fn decline_slug(reason: &str) -> String {
    let mut slug = String::new();
    for c in reason.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') && !slug.is_empty() {
            slug.push('_');
        }
        if slug.len() >= 48 {
            break;
        }
    }
    while slug.ends_with('_') {
        slug.pop();
    }
    if slug.is_empty() {
        slug.push_str("unspecified");
    }
    slug
}

// Bound models are shared across request-serving threads behind an `Arc`
// (the compiled-model cache of `serve`): every artifact reachable from a
// `GModel` must stay `Send + Sync`. This assertion fails to compile if a
// future field reintroduces `Rc`/`RefCell` state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GModel>();
    assert_send_sync::<crate::dprog::DProg>();
    assert_send_sync::<crate::dprog::jit::JitProg>();
    assert_send_sync::<crate::resolved::ResolvedProgram>();
};

impl GModel {
    /// Instantiates a compiled program with data: runs the `transformed data`
    /// block once and lays out the unconstrained parameter vector.
    ///
    /// Resolution lowers element-wise observation loops into batched sweep
    /// sites (`gprob::resolved::RSweep`) and scores vectorized statements
    /// through the fused kernels; use [`GModel::new_scalar`] for the
    /// element-by-element configuration.
    ///
    /// # Errors
    /// Fails if the transformed-data block fails or a parameter shape /
    /// constraint bound cannot be evaluated from the data.
    pub fn new(program: GProbProgram, data: Env<f64>) -> Result<Self, RuntimeError> {
        Self::with_resolution(program, data, true)
    }

    /// [`GModel::new`] without sweep lowering or batched scoring — every
    /// observation evaluates element by element. This is the comparison
    /// configuration for the sweep differential suite and the
    /// `sweep-vs-scalar` benchmark rows; inference should use
    /// [`GModel::new`].
    ///
    /// # Errors
    /// Same as [`GModel::new`].
    pub fn new_scalar(program: GProbProgram, data: Env<f64>) -> Result<Self, RuntimeError> {
        Self::with_resolution(program, data, false)
    }

    fn with_resolution(
        program: GProbProgram,
        mut data: Env<f64>,
        fused: bool,
    ) -> Result<Self, RuntimeError> {
        bind_counter().inc();
        let ctx: EvalCtx<f64> = EvalCtx::with_functions(&program.functions);
        // Pre-processing: transformed data runs once (Section 3.3).
        if let Some(td) = &program.transformed_data {
            let mut handler = DeterministicOnly;
            for stmt in &td.stmts {
                match exec_stmt(stmt, &mut data, &ctx, &mut handler)? {
                    Flow::Normal => {}
                    other => {
                        return Err(RuntimeError::new(format!(
                            "unexpected control flow {other:?} in transformed data"
                        )))
                    }
                }
            }
        }

        let mut slots = Vec::new();
        let mut offset = 0usize;
        for p in &program.params {
            let mut dims = Vec::new();
            let mut size = 1usize;
            for s in &p.shape {
                let n = eval_expr(s, &data, &ctx)?.as_int()?;
                dims.push(n);
                size *= n.max(0) as usize;
            }
            let lower = match &p.lower {
                Some(e) => Some(eval_expr(e, &data, &ctx)?.as_real()?),
                None => None,
            };
            let upper = match &p.upper {
                Some(e) => Some(eval_expr(e, &data, &ctx)?.as_real()?),
                None => None,
            };
            let constraint = Constraint::from_bounds(lower, upper);
            slots.push(ParamSlot {
                name: p.name.clone(),
                dims,
                size,
                offset,
                constraint,
            });
            offset += size;
        }

        // Compile-time name resolution: one dense slot per variable, so the
        // density hot path below never hashes a string.
        let (resolved, resolved_gq, data_frame, param_frame_slots) = {
            let _span = obs::Span::enter("bind.resolve");
            let resolved = if fused {
                resolve_program(&program)
            } else {
                gprob_resolve_scalar(&program)
            };
            let resolved_gq = if fused {
                crate::gq::resolve_gq(&program)
            } else {
                crate::gq::resolve_gq_scalar(&program)
            };
            let data_frame = resolved.frame_from_env(&data);
            let param_frame_slots: Vec<u32> = resolved.params.iter().map(|p| p.slot).collect();
            (resolved, resolved_gq, data_frame, param_frame_slots)
        };

        // Lower the density to its tape-free program; declined shapes keep
        // the interpreted path (byte-identical to the pre-DProg behavior).
        let (dprog, dprog_decline) = {
            let _span = obs::Span::enter("bind.dprog_lower");
            match crate::dprog::compile(&program, &resolved, &data_frame, &slots) {
                Ok(p) => (Some(p), None),
                Err(d) => (None, Some(d)),
            }
        };
        match &dprog_decline {
            None => obs::counter("dprog.compiled").inc(),
            Some(d) => {
                obs::counter("dprog.declined").inc();
                obs::counter(&format!("dprog.decline.{}", decline_slug(d.reason()))).inc();
            }
        }

        // JIT the density program to native code where the platform allows;
        // declines keep the interpreted program as-is.
        let (jit, jit_decline) = {
            let _span = obs::Span::enter("bind.jit_emit");
            match &dprog {
                Some(p) => match crate::dprog::jit::compile(p) {
                    Ok(j) => (Some(j), None),
                    Err(d) => (None, Some(d)),
                },
                None => (
                    None,
                    Some(crate::dprog::Decline::new(
                        "jit: no density program to compile",
                    )),
                ),
            }
        };
        match &jit_decline {
            None => obs::counter("jit.compiled").inc(),
            Some(d) => {
                obs::counter("jit.declined").inc();
                obs::counter(&format!("jit.decline.{}", decline_slug(d.reason()))).inc();
            }
        }

        Ok(GModel {
            program,
            resolved,
            resolved_gq,
            data,
            data_frame,
            slots,
            param_frame_slots,
            dim: offset,
            dprog,
            dprog_decline,
            jit,
            jit_decline,
        })
    }

    /// Number of unconstrained dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The underlying compiled program.
    pub fn program(&self) -> &GProbProgram {
        &self.program
    }

    /// The slot-resolved form of the program.
    pub fn resolved(&self) -> &ResolvedProgram {
        &self.resolved
    }

    /// The data environment (after transformed data).
    pub fn data(&self) -> &Env<f64> {
        &self.data
    }

    /// Parameter layout in the unconstrained vector.
    pub fn slots(&self) -> &[ParamSlot] {
        &self.slots
    }

    /// Frame slot of each parameter, parallel to [`GModel::slots`] — for
    /// reading parameter values straight out of a trace [`Frame`] without
    /// going through the string-keyed environment.
    pub fn param_frame_slots(&self) -> &[u32] {
        &self.param_frame_slots
    }

    /// Flat component names (`mu`, `theta[1]`, `theta[2]`, ...).
    pub fn component_names(&self) -> Vec<String> {
        self.slots
            .iter()
            .flat_map(|s| s.component_names())
            .collect()
    }

    /// Maps an unconstrained vector to a trace of constrained parameter
    /// values plus the total log-Jacobian of the transforms.
    ///
    /// # Errors
    /// Fails if `theta_u` has the wrong length.
    pub fn constrain<T: Real>(&self, theta_u: &[T]) -> Result<(Env<T>, T), RuntimeError> {
        if theta_u.len() != self.dim {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values, got {}",
                self.dim,
                theta_u.len()
            )));
        }
        let mut trace = Env::new();
        let mut log_jac = T::from_f64(0.0);
        for slot in &self.slots {
            let mut comps = Vec::with_capacity(slot.size);
            for i in 0..slot.size {
                let u = theta_u[slot.offset + i];
                comps.push(slot.constraint.to_constrained(u));
                log_jac = log_jac + slot.constraint.log_jacobian(u);
            }
            let value = shape_param(&comps, &slot.dims);
            trace.insert(slot.name.clone(), value);
        }
        Ok((trace, log_jac))
    }

    /// Maps an unconstrained vector to a trace *frame* of constrained
    /// parameter values plus the total log-Jacobian — the slot-resolved
    /// analog of [`GModel::constrain`], used by the density hot path.
    ///
    /// # Errors
    /// Fails if `theta_u` has the wrong length.
    pub fn constrain_frame<T: Real>(&self, theta_u: &[T]) -> Result<(Frame<T>, T), RuntimeError> {
        let mut trace = self.resolved.frame();
        let log_jac = self.constrain_frame_into(theta_u, &mut trace)?;
        Ok((trace, log_jac))
    }

    /// [`GModel::constrain_frame`] writing into an existing trace frame
    /// (every parameter slot is overwritten), returning the log-Jacobian.
    ///
    /// # Errors
    /// Fails if `theta_u` has the wrong length.
    pub fn constrain_frame_into<T: Real>(
        &self,
        theta_u: &[T],
        trace: &mut Frame<T>,
    ) -> Result<T, RuntimeError> {
        if theta_u.len() != self.dim {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values, got {}",
                self.dim,
                theta_u.len()
            )));
        }
        let mut log_jac = T::from_f64(0.0);
        for (slot, &frame_slot) in self.slots.iter().zip(&self.param_frame_slots) {
            let mut comps = Vec::with_capacity(slot.size);
            for i in 0..slot.size {
                let u = theta_u[slot.offset + i];
                comps.push(slot.constraint.to_constrained(u));
                log_jac = log_jac + slot.constraint.log_jacobian(u);
            }
            trace.set(frame_slot, shape_param(&comps, &slot.dims));
        }
        Ok(log_jac)
    }

    /// The compiled tape-free density program, when the body admitted one.
    pub fn dprog(&self) -> Option<&crate::dprog::DProg> {
        self.dprog.as_ref()
    }

    /// Why the density program declined to compile (`None` when it
    /// compiled). Declined models keep the `Var`/tape gradient path,
    /// byte-identical to the pre-DProg behavior.
    pub fn dprog_decline(&self) -> Option<&crate::dprog::Decline> {
        self.dprog_decline.as_ref()
    }

    /// The density program JIT-compiled to native code, when the platform
    /// and program admitted it.
    pub fn jit(&self) -> Option<&crate::dprog::jit::JitProg> {
        self.jit.as_ref()
    }

    /// Why native compilation declined (`None` when it succeeded). Declined
    /// models evaluate the interpreted density program byte-identically to a
    /// build without the JIT.
    pub fn jit_decline(&self) -> Option<&crate::dprog::Decline> {
        self.jit_decline.as_ref()
    }

    /// Builds a pooled scratch workspace for this model. One workspace
    /// serves one chain: create one per sampler thread and pass it to
    /// [`GModel::log_density_with`] on every evaluation.
    pub fn workspace<T: Real>(&self) -> DensityWorkspace<T> {
        DensityWorkspace::new(
            &self.data_frame,
            self.resolved.n_slots,
            self.dprog.as_ref().map(|p| p.workspace()),
        )
    }

    /// Builds a pooled workspace for gradient evaluations
    /// ([`GModel::log_density_and_grad_with`]).
    pub fn grad_workspace(&self) -> GradWorkspace {
        GradWorkspace {
            inner: self.workspace(),
            vars: Vec::with_capacity(self.dim),
        }
    }

    /// Log-density (up to a constant) of the unconstrained parameter vector,
    /// including the Jacobian correction, evaluated with any scalar type.
    ///
    /// Runs on the slot-resolved program: every variable access is a frame
    /// index, so NUTS gradient evaluations never hash a string. Allocates
    /// fresh scratch frames per call; chains should hold a workspace and use
    /// [`GModel::log_density_with`] instead.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density<T: Real>(
        &self,
        theta_u: &[T],
        externals: &dyn ExternalFns<T>,
    ) -> Result<T, RuntimeError> {
        let (trace, log_jac) = self.constrain_frame(theta_u)?;
        let ctx = RCtx::new(&self.resolved, &self.program.functions, externals);
        let mut frame: Frame<T> = Frame::lift(&self.data_frame);
        let mut interp = RInterp::new(&ctx, RMode::Trace(&trace));
        let result = interp.run(&self.resolved.body, &mut frame)?;
        Ok(result.score + log_jac)
    }

    /// [`GModel::log_density`] running in a pooled [`DensityWorkspace`]: no
    /// frame is allocated and no data value is cloned per evaluation — the
    /// workspace only resets the slots the body can write
    /// ([`ResolvedProgram::written_slots`]) between calls.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_with<T: Real>(
        &self,
        ws: &mut DensityWorkspace<T>,
        theta_u: &[T],
        externals: &dyn ExternalFns<T>,
    ) -> Result<T, RuntimeError> {
        let log_jac = self.constrain_frame_into(theta_u, &mut ws.trace)?;
        ws.reset(&self.resolved.written_slots);
        let ctx = RCtx::new(&self.resolved, &self.program.functions, externals);
        let mut interp =
            RInterp::new(&ctx, RMode::Trace(&ws.trace)).with_scratch(&mut ws.sweep_scratch);
        let result = interp.run(&self.resolved.body, &mut ws.frame)?;
        Ok(result.score + log_jac)
    }

    /// Plain `f64` log-density (no gradient).
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_f64(&self, theta_u: &[f64]) -> Result<f64, RuntimeError> {
        self.log_density(theta_u, &NoExternals)
    }

    /// Plain `f64` log-density in a pooled workspace (the non-generic form
    /// of [`GModel::log_density_with`], monomorphized here once). Routes to
    /// the tape-free density program when the model compiled one; declined
    /// models evaluate through the frame interpreter exactly as before.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_f64_with(
        &self,
        ws: &mut DensityWorkspace<f64>,
        theta_u: &[f64],
    ) -> Result<f64, RuntimeError> {
        if let (Some(jit), Some(dpws)) = (&self.jit, &mut ws.dprog) {
            return jit.value(theta_u, dpws);
        }
        if let (Some(dp), Some(dpws)) = (&self.dprog, &mut ws.dprog) {
            return dp.value(theta_u, dpws);
        }
        self.log_density_with(ws, theta_u, &NoExternals)
    }

    /// [`GModel::log_density_f64_with`] pinned to the *interpreted* density
    /// program, bypassing the JIT. This is the differential oracle for
    /// `tests/jit_equivalence.rs` and the baseline for the
    /// interpreted-vs-native benchmark rows; inference should use the
    /// routed entry.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_f64_dprog_with(
        &self,
        ws: &mut DensityWorkspace<f64>,
        theta_u: &[f64],
    ) -> Result<f64, RuntimeError> {
        if let (Some(dp), Some(dpws)) = (&self.dprog, &mut ws.dprog) {
            return dp.value(theta_u, dpws);
        }
        self.log_density_with(ws, theta_u, &NoExternals)
    }

    /// The string-keyed (pre-resolution) density path, retained as the
    /// differential-testing and benchmarking baseline: evaluates the same
    /// compiled body through `HashMap<String, Value>` environments.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_baseline<T: Real>(
        &self,
        theta_u: &[T],
        externals: &dyn ExternalFns<T>,
    ) -> Result<T, RuntimeError> {
        let (trace, log_jac) = self.constrain(theta_u)?;
        let ctx = EvalCtx::with_functions(&self.program.functions).externals(externals);
        let mut env: Env<T> = lift_env(&self.data);
        let mut interp = Interp::new(&ctx, Mode::Trace(&trace));
        let result = interp.run(&self.program.body, &mut env)?;
        Ok(result.score + log_jac)
    }

    /// Plain `f64` baseline log-density (string-keyed environments).
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_f64_baseline(&self, theta_u: &[f64]) -> Result<f64, RuntimeError> {
        self.log_density_baseline(theta_u, &NoExternals)
    }

    /// Log-density and its gradient with respect to the unconstrained vector,
    /// via the reverse-mode tape. Allocates per call; chains should hold a
    /// [`GradWorkspace`] and use [`GModel::log_density_and_grad_with`].
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn log_density_and_grad(&self, theta_u: &[f64]) -> Result<(f64, Vec<f64>), RuntimeError> {
        let mut ws = self.grad_workspace();
        let mut g = vec![0.0; theta_u.len()];
        let lp = self.log_density_and_grad_with(&mut ws, theta_u, &mut g)?;
        Ok((lp, g))
    }

    /// [`GModel::log_density_and_grad`] in a pooled [`GradWorkspace`]: the
    /// gradient is written into `grad_out` and every scratch buffer is
    /// reused across calls. This is the evaluation each NUTS leapfrog step
    /// performs.
    ///
    /// Models whose density compiled to a tape-free program
    /// ([`GModel::dprog`]) evaluate it here — one forward `f64` pass and one
    /// analytic reverse sweep, no tape recording at all. Declined models
    /// take [`GModel::log_density_and_grad_tape_with`], byte-identical to
    /// the pre-DProg behavior.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    ///
    /// # Panics
    /// Panics if `grad_out` is shorter than `theta_u`.
    pub fn log_density_and_grad_with(
        &self,
        ws: &mut GradWorkspace,
        theta_u: &[f64],
        grad_out: &mut [f64],
    ) -> Result<f64, RuntimeError> {
        if let (Some(jit), Some(dpws)) = (&self.jit, &mut ws.inner.dprog) {
            return jit.value_and_grad(theta_u, grad_out, dpws);
        }
        if let (Some(dp), Some(dpws)) = (&self.dprog, &mut ws.inner.dprog) {
            return dp.value_and_grad(theta_u, grad_out, dpws);
        }
        self.log_density_and_grad_tape_with(ws, theta_u, grad_out)
    }

    /// [`GModel::log_density_and_grad_with`] pinned to the *interpreted*
    /// density program, bypassing the JIT — the oracle for
    /// `tests/jit_equivalence.rs` and the interpreted benchmark baseline.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    ///
    /// # Panics
    /// Panics if `grad_out` is shorter than `theta_u`.
    pub fn log_density_and_grad_dprog_with(
        &self,
        ws: &mut GradWorkspace,
        theta_u: &[f64],
        grad_out: &mut [f64],
    ) -> Result<f64, RuntimeError> {
        if let (Some(dp), Some(dpws)) = (&self.dprog, &mut ws.inner.dprog) {
            return dp.value_and_grad(theta_u, grad_out, dpws);
        }
        self.log_density_and_grad_tape_with(ws, theta_u, grad_out)
    }

    /// Batched form of [`GModel::log_density_and_grad_with`]: scores
    /// `values.len()` independent unconstrained points packed row-major in
    /// `thetas` (point `i` at `thetas[i·dim .. (i+1)·dim]`), writing
    /// gradients row-major into `grads`.
    ///
    /// Models with a compiled density program evaluate the whole batch in
    /// lane groups through [`crate::dprog::DProg::value_and_grad_lanes`] —
    /// one forward and one reverse sweep per group of up to 8 points.
    /// Declined models loop the single-point tape path, so the batched entry
    /// is safe to call unconditionally; each point's result is bitwise what
    /// a single-point call would produce either way.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors (on the declined path the first
    /// failing point aborts the batch, matching the sequential loop).
    ///
    /// # Panics
    /// Panics if `grads` is shorter than `thetas`.
    pub fn log_density_and_grad_batch_with(
        &self,
        ws: &mut GradWorkspace,
        thetas: &[f64],
        values: &mut [f64],
        grads: &mut [f64],
    ) -> Result<(), RuntimeError> {
        if let (Some(dp), Some(dpws)) = (&self.dprog, &mut ws.inner.dprog) {
            return dp.value_and_grad_lanes(thetas, values, grads, dpws);
        }
        let d = self.dim;
        let n = values.len();
        if thetas.len() != n * d {
            return Err(RuntimeError::new(format!(
                "expected {} unconstrained values for {n} points, got {}",
                n * d,
                thetas.len()
            )));
        }
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.log_density_and_grad_tape_with(
                ws,
                &thetas[i * d..(i + 1) * d],
                &mut grads[i * d..(i + 1) * d],
            )?;
        }
        Ok(())
    }

    /// The `Var`/tape gradient path: re-records the Wengert list on every
    /// call. This is the differential oracle the tape-free programs are
    /// pinned against (`tests/dprog_equivalence.rs`) and the evaluation
    /// route for models whose density declined to compile.
    ///
    /// The workspace's lifted data values are tape *constants*, so they stay
    /// valid across the `tape::reset` this method issues.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    ///
    /// # Panics
    /// Panics if `grad_out` is shorter than `theta_u`.
    pub fn log_density_and_grad_tape_with(
        &self,
        ws: &mut GradWorkspace,
        theta_u: &[f64],
        grad_out: &mut [f64],
    ) -> Result<f64, RuntimeError> {
        tape::reset();
        ws.vars.clear();
        ws.vars.extend(theta_u.iter().map(|&x| Var::new(x)));
        // Split the borrow: the inner workspace and the input buffer are
        // disjoint fields.
        let GradWorkspace { inner, vars } = ws;
        let lp = self.log_density_with(inner, vars, &NoExternals)?;
        grad_into(lp, vars, grad_out);
        Ok(lp.value())
    }

    /// Draws a starting point: uniform in `[-2, 2]` on the unconstrained
    /// scale, as Stan does.
    pub fn initial_unconstrained(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.dim).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    /// Runs the program generatively (prior mode): used for the "one
    /// iteration" generality check and for prior predictive simulation.
    ///
    /// Executes on the slot-resolved runtime; the returned trace is
    /// converted to the string-keyed [`Env`] at this API boundary.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn run_prior(&self, rng: Rc<RefCell<StdRng>>) -> Result<RunResult<f64>, RuntimeError> {
        let ctx = RCtx::new(&self.resolved, &self.program.functions, &NoExternals);
        let mut frame = self.data_frame.clone();
        let mut interp = RInterp::new(&ctx, RMode::Prior(rng));
        let run = interp.run(&self.resolved.body, &mut frame)?;
        Ok(RunResult {
            score: run.score,
            trace: run.trace.to_env(&self.resolved.interner),
            value: run.value,
        })
    }

    /// Runs the program generatively and returns the sampled trace *frame*
    /// together with the observation log-likelihood (the total score minus
    /// the sample-site score) — exactly the log importance weight of the
    /// run when the prior is the proposal (likelihood weighting). Read
    /// parameter values out of the frame with
    /// [`GModel::param_frame_slots`]; convert to a string-keyed
    /// environment with `Frame::to_env` only at API boundaries.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn run_prior_weighted(
        &self,
        rng: Rc<RefCell<StdRng>>,
    ) -> Result<(Frame<f64>, f64), RuntimeError> {
        let ctx = RCtx::new(&self.resolved, &self.program.functions, &NoExternals);
        let mut frame = self.data_frame.clone();
        let mut interp = RInterp::new(&ctx, RMode::Prior(rng));
        let run = interp.run(&self.resolved.body, &mut frame)?;
        Ok((run.trace, run.score - run.site_score))
    }

    /// Runs the program generatively like [`GModel::run_prior_weighted`] but
    /// **without scoring observation sites at all**: the interpreter draws
    /// every `sample` site (consuming the RNG in exactly the same order as
    /// the weighted run, since scoring never touches the RNG) and skips the
    /// per-element likelihood arithmetic. Returns the sampled trace frame
    /// together with the prior log-density of the drawn values (the
    /// sample-site score).
    ///
    /// This is the proposal-generation half of *batched* importance
    /// sampling: the likelihood is recovered afterwards as
    /// `full_density(u) - prior - log_jacobian(u)` with the full density
    /// evaluated through the lane-batched density program
    /// (`inference::target::GradTargetBatch`) instead of one interpreter
    /// walk per particle. Likelihood evaluation errors consequently surface
    /// as `-inf` weights from the batch evaluation rather than as runtime
    /// errors from this call.
    ///
    /// # Errors
    /// Propagates runtime evaluation errors from the prior run itself
    /// (drawing and deterministic statements), not from observation scoring.
    pub fn run_prior_draw(
        &self,
        rng: Rc<RefCell<StdRng>>,
    ) -> Result<(Frame<f64>, f64), RuntimeError> {
        let ctx = RCtx::new(&self.resolved, &self.program.functions, &NoExternals);
        let mut frame = self.data_frame.clone();
        let mut interp = RInterp::new(&ctx, RMode::Prior(rng)).without_observe_scores();
        let run = interp.run(&self.resolved.body, &mut frame)?;
        Ok((run.trace, run.site_score))
    }

    /// Evaluates the `generated quantities` block for one posterior draw
    /// through the legacy string-keyed statement interpreter, returning the
    /// values of the variables the source block declares.
    ///
    /// This is the retained differential-testing and benchmarking baseline;
    /// streaming evaluation should use the slot-resolved path
    /// ([`GModel::generated_quantities_resolved`] or, per draw without
    /// allocation, [`GModel::generated_quantities_into`]).
    ///
    /// # Errors
    /// Propagates runtime evaluation errors.
    pub fn generated_quantities(
        &self,
        theta_u: &[f64],
        rng: Rc<RefCell<StdRng>>,
    ) -> Result<Env<f64>, RuntimeError> {
        let Some(gq) = &self.program.generated_quantities else {
            return Ok(Env::new());
        };
        let (trace, _) = self.constrain::<f64>(theta_u)?;
        let mut env = self.data.clone();
        for (k, v) in trace {
            env.insert(k, v);
        }
        let ctx = EvalCtx::with_table(&self.program.functions, &self.resolved.fn_table).rng(rng);
        let mut handler = DeterministicOnly;
        let declared = crate::gq::gq_output_names(&self.program);
        for stmt in &gq.stmts {
            exec_stmt(stmt, &mut env, &ctx, &mut handler)?;
        }
        Ok(env
            .into_iter()
            .filter(|(k, _)| declared.contains(k))
            .collect())
    }

    /// The slot-resolved `generated quantities` program, when the model has
    /// the block.
    pub fn resolved_gq(&self) -> Option<&crate::gq::ResolvedGq> {
        self.resolved_gq.as_ref()
    }

    /// Builds a pooled workspace for streaming posterior draws through the
    /// resolved `generated quantities` program. One workspace serves one
    /// chain worker; pass it to [`GModel::generated_quantities_into`] on
    /// every draw. Returns `None` when the program has no block.
    pub fn gq_workspace(&self) -> Option<crate::gq::GqWorkspace> {
        let gq = self.resolved_gq.as_ref()?;
        Some(crate::gq::GqWorkspace::new(
            gq.core.frame_from_env(&self.data),
        ))
    }

    /// Streams one posterior draw through the resolved `generated
    /// quantities` program, appending the flattened outputs (declaration
    /// order, row-major components) to `out`.
    ///
    /// `row` is one draw of the parameter vector: the *constrained*
    /// flat components when `row_is_constrained` (the layout of
    /// [`GModel::component_names`], as `Fit` chains store them), otherwise
    /// the unconstrained vector (mapped through the constraint transforms
    /// here). The `_rng` stream is seeded with `seed`, making every draw's
    /// evaluation independent of scheduling order.
    ///
    /// After the first call on a workspace, evaluation reuses every frame,
    /// parameter container and scratch buffer — nothing is allocated per
    /// draw.
    ///
    /// # Errors
    /// Fails when the program has no block, the row has the wrong length, or
    /// evaluation fails.
    pub fn generated_quantities_into(
        &self,
        ws: &mut crate::gq::GqWorkspace,
        row: &[f64],
        row_is_constrained: bool,
        seed: u64,
        out: &mut Vec<f64>,
    ) -> Result<(), RuntimeError> {
        let gq = self
            .resolved_gq
            .as_ref()
            .ok_or_else(|| RuntimeError::new("the program has no generated quantities block"))?;
        if row.len() != self.dim {
            return Err(RuntimeError::new(format!(
                "expected {} parameter components, got {}",
                self.dim,
                row.len()
            )));
        }
        ws.reset(&gq.core.written_slots, seed);
        for (slot, rp) in self.slots.iter().zip(&gq.core.params) {
            let comps = &row[slot.offset..slot.offset + slot.size];
            if row_is_constrained {
                crate::gq::write_param_into(&mut ws.frame, rp.slot, comps, &slot.dims);
            } else {
                ws.param_buf.clear();
                ws.param_buf
                    .extend(comps.iter().map(|&u| slot.constraint.to_constrained(u)));
                // Split borrow: the staging buffer and the frame are
                // disjoint workspace fields.
                let crate::gq::GqWorkspace {
                    frame, param_buf, ..
                } = ws;
                crate::gq::write_param_into(frame, rp.slot, param_buf, &slot.dims);
            }
        }
        let rng = ws.rng.clone();
        let crate::gq::GqWorkspace { frame, scratch, .. } = ws;
        crate::gq::run_gq_stmts(gq, &self.program.functions, frame, rng, scratch)?;
        for output in &gq.outputs {
            let v = ws.frame.get(output.slot).ok_or_else(|| {
                RuntimeError::new(format!(
                    "generated quantity `{}` was never assigned",
                    output.name
                ))
            })?;
            crate::gq::flatten_into(v, out)?;
        }
        Ok(())
    }

    /// Flat output column names of the resolved `generated quantities`
    /// program (`y_rep[1]`, ..., in declaration order), read from the shapes
    /// bound in a workspace after a [`GModel::generated_quantities_into`]
    /// run.
    ///
    /// # Errors
    /// Fails if an output was never assigned (no run has happened).
    pub fn gq_component_names(
        &self,
        ws: &crate::gq::GqWorkspace,
    ) -> Result<Vec<String>, RuntimeError> {
        let gq = self
            .resolved_gq
            .as_ref()
            .ok_or_else(|| RuntimeError::new("the program has no generated quantities block"))?;
        let mut names = Vec::new();
        for output in &gq.outputs {
            let v = ws.frame.get(output.slot).ok_or_else(|| {
                RuntimeError::new(format!(
                    "generated quantity `{}` was never assigned",
                    output.name
                ))
            })?;
            names.extend(crate::gq::flat_names(&output.name, v));
        }
        Ok(names)
    }

    /// One-shot resolved evaluation of the block for an unconstrained draw,
    /// returned as a string-keyed environment — the API-boundary mirror of
    /// [`GModel::generated_quantities`], used by the differential suite.
    ///
    /// # Errors
    /// Propagates evaluation errors; programs without the block return an
    /// empty environment.
    pub fn generated_quantities_resolved(
        &self,
        theta_u: &[f64],
        seed: u64,
    ) -> Result<Env<f64>, RuntimeError> {
        let Some(gq) = self.resolved_gq.as_ref() else {
            return Ok(Env::new());
        };
        let mut ws = self
            .gq_workspace()
            .expect("block present implies workspace");
        let mut sink = Vec::new();
        self.generated_quantities_into(&mut ws, theta_u, false, seed, &mut sink)?;
        Ok(crate::gq::outputs_to_env(gq, &ws))
    }
}

fn shape_param<T: Real>(comps: &[T], dims: &[i64]) -> Value<T> {
    match dims.len() {
        0 => Value::Real(comps[0]),
        1 => Value::Vector(comps.to_vec()),
        _ => {
            let chunk = comps.len() / dims[0].max(1) as usize;
            Value::Array(
                comps
                    .chunks(chunk.max(1))
                    .map(|c| shape_param(c, &dims[1..]))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DistCall, GExpr, ParamInfo};
    use rand::SeedableRng;
    use stan_frontend::ast::Expr;

    /// Hand-built comprehensive compilation of the coin model.
    fn coin_program() -> GProbProgram {
        GProbProgram {
            name: "coin".into(),
            params: vec![ParamInfo {
                name: "z".into(),
                shape: vec![],
                lower: Some(Expr::RealLit(0.0)),
                upper: Some(Expr::RealLit(1.0)),
            }],
            body: GExpr::LetSample {
                name: "z".into(),
                dist: DistCall::new("uniform", vec![Expr::RealLit(0.0), Expr::RealLit(1.0)]),
                body: Box::new(GExpr::Observe {
                    dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
                    value: Expr::var("z"),
                    body: Box::new(GExpr::LetLoop {
                        kind: crate::ir::LoopKind::Range {
                            var: "i".into(),
                            lo: Expr::IntLit(1),
                            hi: Expr::var("N"),
                        },
                        state: vec![],
                        loop_body: Box::new(GExpr::Observe {
                            dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
                            value: Expr::Index(Box::new(Expr::var("x")), vec![Expr::var("i")]),
                            body: Box::new(GExpr::Unit),
                        }),
                        body: Box::new(GExpr::Return(Expr::var("z"))),
                    }),
                }),
            },
            ..Default::default()
        }
    }

    fn coin_data() -> Env<f64> {
        let mut env = Env::new();
        env.insert("N".into(), Value::Int(10));
        env.insert(
            "x".into(),
            Value::IntArray(vec![1, 1, 1, 0, 1, 0, 1, 1, 0, 1]),
        );
        env
    }

    #[test]
    fn layout_and_dimension() {
        let m = GModel::new(coin_program(), coin_data()).unwrap();
        assert_eq!(m.dim(), 1);
        assert_eq!(m.component_names(), vec!["z"]);
        assert_eq!(m.slots()[0].constraint, Constraint::Bounded(0.0, 1.0));
    }

    #[test]
    fn log_density_matches_manual_computation() {
        let m = GModel::new(coin_program(), coin_data()).unwrap();
        // Unconstrained u, z = sigmoid(u) on [0,1].
        let u = 0.4_f64;
        let z = 1.0 / (1.0 + (-u).exp());
        let lp = m.log_density_f64(&[u]).unwrap();
        // 7 heads, 3 tails; uniform & beta(1,1) contribute -ln(1) = 0 each.
        let manual = 7.0 * z.ln() + 3.0 * (1.0 - z).ln() + (z * (1.0 - z)).ln();
        assert!((lp - manual).abs() < 1e-10, "{lp} vs {manual}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = GModel::new(coin_program(), coin_data()).unwrap();
        let u = [0.3];
        let (lp, g) = m.log_density_and_grad(&u).unwrap();
        let h = 1e-6;
        let fd = (m.log_density_f64(&[u[0] + h]).unwrap()
            - m.log_density_f64(&[u[0] - h]).unwrap())
            / (2.0 * h);
        assert!(lp.is_finite());
        assert!((g[0] - fd).abs() < 1e-5, "{} vs {fd}", g[0]);
    }

    #[test]
    fn prior_runs_produce_finite_scores() {
        let m = GModel::new(coin_program(), coin_data()).unwrap();
        let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(9)));
        let r = m.run_prior(rng).unwrap();
        assert!(r.score.is_finite());
        assert!(r.trace.contains_key("z"));
    }

    #[test]
    fn vector_parameters_are_laid_out_flat() {
        let mut p = coin_program();
        p.params.push(ParamInfo {
            name: "beta".into(),
            shape: vec![Expr::IntLit(3)],
            lower: None,
            upper: None,
        });
        // Give beta a harmless prior site so the trace lookup succeeds.
        p.body = GExpr::LetSample {
            name: "beta".into(),
            dist: DistCall::with_shape("improper_uniform", vec![], vec![Expr::IntLit(3)]),
            body: Box::new(p.body),
        };
        let m = GModel::new(p, coin_data()).unwrap();
        assert_eq!(m.dim(), 4);
        let names = m.component_names();
        assert!(names.contains(&"beta[2]".to_string()));
        let lp = m.log_density_f64(&[0.1, 0.5, -0.3, 0.8]).unwrap();
        assert!(lp.is_finite());
    }

    #[test]
    fn wrong_dimension_is_an_error() {
        let m = GModel::new(coin_program(), coin_data()).unwrap();
        assert!(m.log_density_f64(&[0.1, 0.2]).is_err());
    }
}
