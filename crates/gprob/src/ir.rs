//! The GProb intermediate representation.
//!
//! GProb (Section 3.2 of the paper) is an expression language with local
//! bindings, conditionals, state-annotated loops, and the probabilistic
//! constructs `sample`, `observe` and `factor`. The compiler emits programs
//! in continuation-passing style, which in this IR shows up as each binding
//! form carrying its continuation (`body`).
//!
//! Deterministic sub-expressions reuse the Stan expression AST
//! ([`stan_frontend::ast::Expr`]) — exactly as the paper's GProb grammar
//! embeds Stan expressions.

use stan_frontend::ast::{BlockBody, Decl, Expr, FunDecl, NetworkDecl};

/// A distribution call `dist(args)` together with the shape of the value the
/// site produces (empty for scalars). The shape is used when sampling
/// parameters with non-scalar types (`vector[N] beta`, `real theta[J]`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct DistCall {
    /// Distribution name (Stan spelling, e.g. `"normal"`, `"improper_uniform"`).
    pub name: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
    /// Shape expressions of the sampled value (row-major, outermost first).
    pub shape: Vec<Expr>,
}

impl DistCall {
    /// A scalar-shaped distribution call.
    pub fn new(name: impl Into<String>, args: Vec<Expr>) -> Self {
        DistCall {
            name: name.into(),
            args,
            shape: Vec::new(),
        }
    }

    /// A distribution call producing a value of the given shape.
    pub fn with_shape(name: impl Into<String>, args: Vec<Expr>, shape: Vec<Expr>) -> Self {
        DistCall {
            name: name.into(),
            args,
            shape,
        }
    }
}

/// The kind of a GProb loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopKind {
    /// `for (var in lo:hi)`
    Range {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
    },
    /// `for (var in collection)`
    ForEach {
        /// Loop variable.
        var: String,
        /// Collection expression.
        collection: Expr,
    },
    /// `while (cond)`
    While {
        /// Condition.
        cond: Expr,
    },
}

/// A GProb expression in continuation-passing form.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum GExpr {
    /// `return(e)` — the final value of the program or of a loop body.
    Return(Expr),
    /// `return(())`.
    #[default]
    Unit,
    /// `let name = default(decl) in body` — a Stan local declaration carried
    /// through compilation so the runtime can build the default-shaped value.
    LetDecl {
        /// The original declaration (type, sizes, optional initializer).
        decl: Decl,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `let name = return(value) in body` — deterministic binding.
    LetDet {
        /// Bound name.
        name: String,
        /// Value expression.
        value: Expr,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `let name[indices] = value in body` — functional array update.
    LetIndexed {
        /// Updated variable.
        name: String,
        /// Index expressions.
        indices: Vec<Expr>,
        /// New cell value.
        value: Expr,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `let name = sample(dist) in body`.
    LetSample {
        /// Site / variable name.
        name: String,
        /// The distribution sampled from.
        dist: DistCall,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `let () = observe(dist, value) in body`.
    Observe {
        /// The observed distribution.
        dist: DistCall,
        /// The observed value.
        value: Expr,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `let () = factor(value) in body`.
    Factor {
        /// Log-score increment.
        value: Expr,
        /// Continuation.
        body: Box<GExpr>,
    },
    /// `if (cond) then_branch else else_branch` — the continuation has been
    /// pushed into both branches by the compiler (Figure 7).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<GExpr>,
        /// Else branch.
        else_branch: Box<GExpr>,
    },
    /// `let state = loop(...) { loop_body } in body` — a state-annotated loop
    /// (the `for_X` / `while_X` forms of the paper).
    LetLoop {
        /// Loop kind and header.
        kind: LoopKind,
        /// The variables updated by the loop body (`lhs(stmt)`).
        state: Vec<String>,
        /// The loop body (ends with `Return` of the state tuple).
        loop_body: Box<GExpr>,
        /// Continuation after the loop.
        body: Box<GExpr>,
    },
}

impl GExpr {
    /// Number of `sample` sites syntactically present in the expression.
    pub fn count_samples(&self) -> usize {
        self.fold(&mut |e, acc: usize| acc + usize::from(matches!(e, GExpr::LetSample { .. })))
    }

    /// Number of `observe` sites syntactically present in the expression.
    pub fn count_observes(&self) -> usize {
        self.fold(&mut |e, acc: usize| acc + usize::from(matches!(e, GExpr::Observe { .. })))
    }

    /// Collects the names of all `sample` sites in order of appearance.
    pub fn sample_sites(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let GExpr::LetSample { name, .. } = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Visits every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&GExpr)) {
        f(self);
        match self {
            GExpr::Return(_) | GExpr::Unit => {}
            GExpr::LetDecl { body, .. }
            | GExpr::LetDet { body, .. }
            | GExpr::LetIndexed { body, .. }
            | GExpr::LetSample { body, .. }
            | GExpr::Observe { body, .. }
            | GExpr::Factor { body, .. } => body.visit(f),
            GExpr::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
            GExpr::LetLoop {
                loop_body, body, ..
            } => {
                loop_body.visit(f);
                body.visit(f);
            }
        }
    }

    fn fold<A: Copy + Default>(&self, f: &mut impl FnMut(&GExpr, A) -> A) -> A {
        let mut acc = A::default();
        self.visit(&mut |e| {
            acc = f(e, acc);
        });
        acc
    }
}

/// Metadata about one model parameter: its shape and domain constraint.
///
/// Bounds are Stan expressions evaluated against the data environment when
/// the model is instantiated (they may depend on data but not on other
/// parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Shape expressions (array dims, then vector/matrix sizes), empty for a
    /// scalar.
    pub shape: Vec<Expr>,
    /// Lower bound, if declared.
    pub lower: Option<Expr>,
    /// Upper bound, if declared.
    pub upper: Option<Expr>,
}

impl ParamInfo {
    /// A scalar unconstrained parameter.
    pub fn scalar(name: impl Into<String>) -> Self {
        ParamInfo {
            name: name.into(),
            shape: Vec::new(),
            lower: None,
            upper: None,
        }
    }
}

/// A complete compiled GProb program: the model body plus the side tables the
/// runtime needs (data declarations, parameter table, pre/post-processing
/// blocks, user functions, DeepStan guide).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GProbProgram {
    /// Model name (used for diagnostics and code generation).
    pub name: String,
    /// Data declarations from the Stan program.
    pub data: Vec<Decl>,
    /// Parameter table (shapes and constraints).
    pub params: Vec<ParamInfo>,
    /// User-defined functions (interpreted, not inlined).
    pub functions: Vec<FunDecl>,
    /// Network declarations (DeepStan).
    pub networks: Vec<NetworkDecl>,
    /// The `transformed data` block, run once before inference.
    pub transformed_data: Option<BlockBody>,
    /// The compiled model body (parameter sampling, observations, return).
    pub body: GExpr,
    /// The `generated quantities` block (with `transformed parameters`
    /// inlined), run per posterior draw.
    pub generated_quantities: Option<BlockBody>,
    /// Names declared by the *source* `generated quantities` block (without
    /// the inlined transformed-parameters prefix) — the output columns of
    /// per-draw generated-quantities evaluation. Empty when the compiler did
    /// not record them (hand-built programs); consumers then fall back to
    /// every declaration in the combined block.
    pub gq_outputs: Vec<String>,
    /// Guide parameter declarations (DeepStan `guide parameters`).
    pub guide_params: Vec<Decl>,
    /// Compiled guide body (DeepStan `guide`), generated with the generative
    /// scheme.
    pub guide_body: Option<GExpr>,
}

impl GProbProgram {
    /// Names of all parameters.
    pub fn parameter_names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin_body() -> GExpr {
        GExpr::LetSample {
            name: "z".into(),
            dist: DistCall::new("beta", vec![Expr::RealLit(1.0), Expr::RealLit(1.0)]),
            body: Box::new(GExpr::Observe {
                dist: DistCall::new("bernoulli", vec![Expr::var("z")]),
                value: Expr::var("x"),
                body: Box::new(GExpr::Return(Expr::var("z"))),
            }),
        }
    }

    #[test]
    fn counts_and_site_names() {
        let b = coin_body();
        assert_eq!(b.count_samples(), 1);
        assert_eq!(b.count_observes(), 1);
        assert_eq!(b.sample_sites(), vec!["z".to_string()]);
    }

    #[test]
    fn visit_reaches_loop_bodies_and_branches() {
        let e = GExpr::LetLoop {
            kind: LoopKind::Range {
                var: "i".into(),
                lo: Expr::IntLit(1),
                hi: Expr::IntLit(3),
            },
            state: vec![],
            loop_body: Box::new(GExpr::If {
                cond: Expr::IntLit(1),
                then_branch: Box::new(coin_body()),
                else_branch: Box::new(GExpr::Unit),
            }),
            body: Box::new(GExpr::Unit),
        };
        assert_eq!(e.count_samples(), 1);
        assert_eq!(e.count_observes(), 1);
    }

    #[test]
    fn param_info_scalar_constructor() {
        let p = ParamInfo::scalar("mu");
        assert_eq!(p.name, "mu");
        assert!(p.shape.is_empty());
        assert!(p.lower.is_none() && p.upper.is_none());
    }
}
