//! Pooled per-chain scratch state for density evaluation.
//!
//! Every `GModel::log_density` call historically paid two allocations before
//! a single statement ran: `Frame::lift` cloned the whole data frame into a
//! fresh working frame, and `constrain_frame` allocated a fresh trace frame
//! (plus, before the function table was hoisted into
//! [`crate::resolved::ResolvedProgram`], a `HashMap<String, &FunDecl>` of
//! cloned function names). A [`DensityWorkspace`] amortizes all of that
//! across a chain: the lifted data frame is built once, the working frame is
//! *reset* — only the slots the body can write
//! ([`crate::resolved::ResolvedProgram::written_slots`]) are restored — and
//! the trace frame is reused, its parameter slots simply overwritten by the
//! next [`GModel::constrain`]-equivalent pass.
//!
//! Workspaces are per-chain: each sampler thread owns one, which is what
//! makes multi-chain NUTS shardable over `std::thread::scope` (the model is
//! shared immutably; all mutable scratch lives here). The `T = Var` variant
//! is sound across `tape::reset` calls because lifted data values are tape
//! *constants* (`Var::constant`), which never reference tape nodes.
//!
//! [`GModel::log_density`]: crate::model::GModel::log_density
//! [`GModel::constrain`]: crate::model::GModel::constrain

use minidiff::{Real, Var};

use crate::dprog::DProgWorkspace;
use crate::resolved::Frame;

/// Reusable scratch frames for one chain's density evaluations. Build one
/// with [`GModel::workspace`](crate::model::GModel::workspace) and pass it to
/// [`GModel::log_density_with`](crate::model::GModel::log_density_with).
pub struct DensityWorkspace<T: Real> {
    /// The lifted data frame; never mutated after construction.
    pub(crate) template: Frame<T>,
    /// The working frame the interpreter runs in.
    pub(crate) frame: Frame<T>,
    /// The constrained-parameter trace frame.
    pub(crate) trace: Frame<T>,
    /// Scratch buffers for `Elementwise` sweep arguments: one per possible
    /// kernel argument, reused across evaluations so a sweep with a compound
    /// argument (`alpha + beta * x[i]`) stops allocating a fresh `Vec` per
    /// density call. Buffer capacity grows to the largest sweep seen and
    /// then stays.
    pub(crate) sweep_scratch: [Vec<T>; 3],
    /// Register file + adjoint buffer of the model's compiled tape-free
    /// density program ([`crate::dprog::DProg`]); `None` when the model's
    /// density declined to compile (it then keeps the interpreted path).
    pub(crate) dprog: Option<DProgWorkspace>,
}

impl<T: Real> DensityWorkspace<T> {
    /// Builds a workspace from a model's `f64` data frame.
    pub(crate) fn new(
        data_frame: &Frame<f64>,
        n_slots: usize,
        dprog: Option<DProgWorkspace>,
    ) -> Self {
        let template: Frame<T> = Frame::lift(data_frame);
        DensityWorkspace {
            frame: template.clone(),
            template,
            trace: Frame::new(n_slots),
            sweep_scratch: [Vec::new(), Vec::new(), Vec::new()],
            dprog,
        }
    }

    /// Restores the working frame for the next evaluation, touching only the
    /// slots the body can write.
    pub(crate) fn reset(&mut self, written_slots: &[u32]) {
        self.frame.reset_slots_from(&self.template, written_slots);
    }
}

/// A [`DensityWorkspace`] over tape [`Var`]s plus the input-variable buffer,
/// for gradient evaluations that reuse every allocation across leapfrog
/// steps. Build one with
/// [`GModel::grad_workspace`](crate::model::GModel::grad_workspace).
pub struct GradWorkspace {
    /// Scratch frames over tracked scalars.
    pub(crate) inner: DensityWorkspace<Var>,
    /// Buffer of tape leaves for the unconstrained inputs.
    pub(crate) vars: Vec<Var>,
}

impl GradWorkspace {
    /// Pooled-buffer capacities of the compiled density program's register
    /// files ([`DProgWorkspace::capacities`]), or `None` when the model's
    /// density declined to compile. Exposed so regression tests can pin that
    /// same-shape evaluations never reallocate the aligned pools (the
    /// `tape_capacities` pattern extended to DProg).
    pub fn dprog_capacities(&self) -> Option<(usize, usize, usize)> {
        self.inner.dprog.as_ref().map(DProgWorkspace::capacities)
    }
}
