//! Evaluation of deterministic Stan expressions and statements over runtime
//! [`Value`]s.
//!
//! Both runtimes are built on this module: the GProb interpreter uses
//! [`eval_expr`] for the deterministic parts of compiled programs, and the
//! baseline `stan_ref` interpreter drives [`exec_stmt`] with a
//! [`ProbHandler`] that accumulates `target` exactly as in Figure 3 of the
//! paper. The standard library implemented in [`call_builtin`] is the subset
//! of the Stan math library exercised by the bundled model corpus (the same
//! "substantial portion, but not the entire, standard library" caveat as the
//! paper's implementation).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use minidiff::{special, Real};
use probdist::dist::{dist_from_kind, dist_from_name, DistArg, DistKind};
use rand::rngs::StdRng;
use stan_frontend::ast::*;

use crate::value::{Env, EnvView, RuntimeError, Value};

/// Hook for evaluating calls the evaluator does not know about — used by the
/// DeepStan extension to plug neural-network forward passes into models.
pub trait ExternalFns<T: Real> {
    /// Returns `Some(result)` if this hook handles the function `name`. The
    /// current environment is provided (as a name-addressed view, so both the
    /// string-keyed and the slot-resolved runtime can supply it) so that
    /// hooks can read lifted network parameters (e.g. `mlp.l1.weight`) bound
    /// by the surrounding model.
    fn call(
        &self,
        name: &str,
        args: &[Value<T>],
        env: &dyn EnvView<T>,
    ) -> Option<Result<Value<T>, RuntimeError>>;
}

/// An [`ExternalFns`] implementation that handles nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExternals;

impl<T: Real> ExternalFns<T> for NoExternals {
    fn call(
        &self,
        _name: &str,
        _args: &[Value<T>],
        _env: &dyn EnvView<T>,
    ) -> Option<Result<Value<T>, RuntimeError>> {
        None
    }
}

/// Handler invoked by [`exec_stmt`] for the two probabilistic statements.
pub trait ProbHandler<T: Real> {
    /// Called for `target += value`.
    fn on_target_plus(&mut self, value: T) -> Result<(), RuntimeError>;
    /// Called for `lhs ~ dist(args)`.
    fn on_tilde(
        &mut self,
        lhs: &Value<T>,
        dist: &str,
        args: &[Value<T>],
    ) -> Result<(), RuntimeError>;
}

/// Handler for purely deterministic execution (transformed data, generated
/// quantities, user-defined functions): probabilistic statements are errors.
#[derive(Debug, Default)]
pub struct DeterministicOnly;

impl<T: Real> ProbHandler<T> for DeterministicOnly {
    fn on_target_plus(&mut self, _value: T) -> Result<(), RuntimeError> {
        Err(RuntimeError::new(
            "target += is not allowed in a deterministic block",
        ))
    }
    fn on_tilde(
        &mut self,
        _lhs: &Value<T>,
        _dist: &str,
        _args: &[Value<T>],
    ) -> Result<(), RuntimeError> {
        Err(RuntimeError::new(
            "sampling statements are not allowed in a deterministic block",
        ))
    }
}

/// Handler that accumulates the model log-density — the `target` variable of
/// the Stan semantics (Figure 3).
pub struct TargetAccumulator<T: Real> {
    /// Current value of `target`.
    pub target: T,
}

impl<T: Real> Default for TargetAccumulator<T> {
    fn default() -> Self {
        TargetAccumulator {
            target: T::from_f64(0.0),
        }
    }
}

impl<T: Real> ProbHandler<T> for TargetAccumulator<T> {
    fn on_target_plus(&mut self, value: T) -> Result<(), RuntimeError> {
        self.target = self.target + value;
        Ok(())
    }
    fn on_tilde(
        &mut self,
        lhs: &Value<T>,
        dist: &str,
        args: &[Value<T>],
    ) -> Result<(), RuntimeError> {
        self.target = self.target + tilde_lpdf(lhs, dist, args)?;
        Ok(())
    }
}

/// Strips the log-density builtin suffix (`_lpdf`, `_lpmf`, `_lupdf`,
/// `_lupmf`, `_log`) from a function name, returning the distribution name.
/// The single matcher shared by the builtin library, the GQ row lowering and
/// the tape-free density compiler, so the recognized spellings cannot drift
/// between paths.
pub(crate) fn strip_lpdf_suffix(name: &str) -> Option<&str> {
    name.strip_suffix("_lpdf")
        .or_else(|| name.strip_suffix("_lpmf"))
        .or_else(|| name.strip_suffix("_lupdf"))
        .or_else(|| name.strip_suffix("_lupmf"))
        .or_else(|| name.strip_suffix("_log"))
}

/// Log density of `lhs ~ dist(args)`, vectorizing over `lhs` when it is a
/// container (Stan's vectorized sampling statements).
///
/// Arguments are accepted through [`std::borrow::Borrow`] so the
/// slot-resolved runtime can pass values borrowed straight from its frame.
/// Hot paths that resolved the distribution name at compile time should call
/// [`tilde_lpdf_kind`] directly.
pub fn tilde_lpdf<T: Real, V: std::borrow::Borrow<Value<T>>>(
    lhs: &Value<T>,
    dist: &str,
    args: &[V],
) -> Result<T, RuntimeError> {
    let kind = DistKind::from_name(dist).ok_or_else(|| {
        RuntimeError::from(probdist::DistError::new(format!(
            "unknown distribution '{dist}'"
        )))
    })?;
    tilde_lpdf_kind(lhs, kind, args)
}

/// [`tilde_lpdf`] with the distribution family already resolved to a
/// [`DistKind`] — the scoring path of the slot-resolved runtime, which never
/// re-matches a distribution name during density evaluation.
///
/// # Errors
/// Same as [`tilde_lpdf`], minus the unknown-name case.
pub fn tilde_lpdf_kind<T: Real, V: std::borrow::Borrow<Value<T>>>(
    lhs: &Value<T>,
    kind: DistKind,
    args: &[V],
) -> Result<T, RuntimeError> {
    // Distributions whose outcome is a vector, and distributions whose
    // parameter is legitimately a vector (so a vector argument must not be
    // broadcast element-wise).
    let multivariate = kind.is_multivariate();
    let vector_param = kind.has_vector_param();

    // Built lazily: the element-wise broadcast branch never needs it.
    let dist_args = || -> Result<Vec<DistArg<T>>, RuntimeError> {
        args.iter()
            .map(|a| match a.borrow() {
                Value::Vector(_) | Value::IntArray(_) | Value::Array(_) => {
                    Ok(DistArg::Vector(a.borrow().as_real_vec()?))
                }
                other => Ok(DistArg::Scalar(other.as_real()?)),
            })
            .collect()
    };

    // Broadcasting: if the outcome is a container and some scalar-distribution
    // argument is a container of the same length, apply element-wise.
    let is_container = matches!(lhs, Value::Vector(_) | Value::IntArray(_) | Value::Array(_));
    if is_container && !multivariate {
        let xs = lhs.as_real_vec()?;
        let n = xs.len();
        let any_vector_arg = !vector_param && args.iter().any(|a| a.borrow().len() > 1);
        if any_vector_arg {
            // Element-wise distribution parameters. Flatten each container
            // argument once up front (not once per element) and reuse one
            // argument buffer across the loop.
            enum Bcast<T> {
                Scalar(T),
                PerElem(Vec<T>),
            }
            let mut flat: Vec<Bcast<T>> = Vec::with_capacity(args.len());
            for a in args {
                let a = a.borrow();
                if a.len() > 1 {
                    let v = a.as_real_vec()?;
                    if v.len() != n {
                        return Err(RuntimeError::new(format!(
                            "broadcast length mismatch in {}: {} vs {n}",
                            kind.name(),
                            v.len()
                        )));
                    }
                    flat.push(Bcast::PerElem(v));
                } else {
                    flat.push(Bcast::Scalar(a.as_real()?));
                }
            }
            let mut elem_args: Vec<DistArg<T>> = Vec::with_capacity(args.len());
            let mut acc = T::from_f64(0.0);
            for i in 0..n {
                elem_args.clear();
                for b in &flat {
                    elem_args.push(DistArg::Scalar(match b {
                        Bcast::Scalar(x) => *x,
                        Bcast::PerElem(v) => v[i],
                    }));
                }
                let di = dist_from_kind(kind, &elem_args)?;
                acc = acc + di.lpdf(xs[i])?;
            }
            Ok(acc)
        } else {
            let d = dist_from_kind(kind, &dist_args()?)?;
            Ok(d.lpdf_vec(&xs)?)
        }
    } else if multivariate {
        let d = dist_from_kind(kind, &dist_args()?)?;
        Ok(d.lpdf_vec(&lhs.as_real_vec()?)?)
    } else {
        let d = dist_from_kind(kind, &dist_args()?)?;
        Ok(d.lpdf(lhs.as_real()?)?)
    }
}

/// [`tilde_lpdf_kind`] with the batched fast path: when the observed value
/// is a flat container, the family has a sweep kernel
/// ([`probdist::supports_sweep`]), and every argument is a scalar or a flat
/// container of matching length, the whole statement is scored through
/// [`probdist::lpdf_sweep`] — slices borrowed straight from the values, one
/// fused tape node on the gradient path. Everything else (nested arrays,
/// length-1 vector arguments, broadcast mismatches, unsupported families)
/// falls back to the element-wise scalar path, which also owns every error
/// message, so the two paths cannot disagree even on failures.
///
/// This is the scoring routine of the slot-resolved runtime; the string
/// baseline keeps calling the element-wise [`tilde_lpdf`] so differential
/// suites pin the batched path against unbatched evaluation.
///
/// # Errors
/// Same as [`tilde_lpdf_kind`].
pub fn tilde_lpdf_kind_batched<T: Real, V: std::borrow::Borrow<Value<T>>>(
    lhs: &Value<T>,
    kind: DistKind,
    args: &[V],
) -> Result<T, RuntimeError> {
    use probdist::sweep::{lpdf_sweep, supports_sweep, SweepArg, SweepVals};
    if supports_sweep(kind) {
        let xs = match lhs {
            Value::Vector(v) => Some(SweepVals::Reals(v.as_slice())),
            Value::IntArray(v) => Some(SweepVals::Ints(v.as_slice())),
            _ => None,
        };
        if let Some(xs) = xs {
            let n = xs.len();
            let mut sargs: Vec<SweepArg<T>> = Vec::with_capacity(args.len());
            let mut batchable = true;
            for a in args {
                match a.borrow() {
                    Value::Real(x) => sargs.push(SweepArg::Scalar(*x)),
                    Value::Int(k) => sargs.push(SweepArg::Scalar(T::from_f64(*k as f64))),
                    // The scalar path treats containers of length 1 (and
                    // mismatched lengths) as errors for these scalar-argument
                    // families; route them back to it.
                    Value::Vector(v) if v.len() == n && n > 1 => {
                        sargs.push(SweepArg::Reals(v.as_slice()))
                    }
                    Value::IntArray(v) if v.len() == n && n > 1 => {
                        sargs.push(SweepArg::Ints(v.as_slice()))
                    }
                    _ => {
                        batchable = false;
                        break;
                    }
                }
            }
            if batchable {
                if let Ok(total) = lpdf_sweep(kind, xs, &sargs) {
                    return Ok(total);
                }
            }
        }
    }
    tilde_lpdf_kind(lhs, kind, args)
}

/// A user-function dispatch table: name → index into a `[FunDecl]` list.
///
/// The table owns no references, so it can be built once (e.g. by
/// `gprob::resolved::resolve_program` or `GModel::new`) and shared by every
/// density evaluation — the evaluators historically rebuilt a
/// `HashMap<String, &FunDecl>` (cloning every function name) on each
/// evaluation.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FnTable {
    index: HashMap<String, u32>,
}

impl FnTable {
    /// Builds the table over a function list. As with the old per-evaluation
    /// map, the last definition of a name wins.
    pub fn new(functions: &[FunDecl]) -> Self {
        FnTable {
            index: functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), i as u32))
                .collect(),
        }
    }

    /// Index of the function bound to `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Looks up `name` in the function list this table was built over.
    pub fn get<'f>(&self, functions: &'f [FunDecl], name: &str) -> Option<&'f FunDecl> {
        self.index
            .get(name)
            .and_then(|&i| functions.get(i as usize))
    }
}

/// The function table of an [`EvalCtx`]: built on the fly for one-off
/// contexts, or borrowed from a long-lived owner (e.g. a bound model) so the
/// density hot path never rebuilds it.
pub enum FnTableRef<'a> {
    /// A table owned by this context.
    Owned(FnTable),
    /// A table hoisted into a longer-lived owner.
    Shared(&'a FnTable),
}

impl FnTableRef<'_> {
    /// The underlying table.
    pub fn table(&self) -> &FnTable {
        match self {
            FnTableRef::Owned(t) => t,
            FnTableRef::Shared(t) => t,
        }
    }
}

/// Shared evaluation context: user-defined functions, external functions
/// (neural networks), and an optional RNG for `_rng` builtins.
pub struct EvalCtx<'a, T: Real> {
    /// User-defined functions from the `functions` block.
    pub functions: &'a [FunDecl],
    /// Dispatch table over `functions` (owned or hoisted).
    pub fn_table: FnTableRef<'a>,
    /// External function hook (DeepStan networks).
    pub externals: &'a dyn ExternalFns<T>,
    /// RNG used by `_rng` builtins (generated quantities); absent during
    /// density evaluation.
    pub rng: Option<Rc<RefCell<StdRng>>>,
}

impl<'a, T: Real> EvalCtx<'a, T> {
    /// Creates a context with no user functions, no externals and no RNG.
    pub fn empty() -> Self {
        const NO_EXTERNALS: NoExternals = NoExternals;
        EvalCtx {
            functions: &[],
            fn_table: FnTableRef::Owned(FnTable::default()),
            externals: &NO_EXTERNALS,
            rng: None,
        }
    }

    /// Creates a context exposing the given user-defined functions, building
    /// a fresh dispatch table (use [`EvalCtx::with_table`] on hot paths).
    pub fn with_functions(funcs: &'a [FunDecl]) -> Self {
        EvalCtx {
            functions: funcs,
            fn_table: FnTableRef::Owned(FnTable::new(funcs)),
            externals: &NoExternals,
            rng: None,
        }
    }

    /// Creates a context over a pre-built (hoisted) dispatch table; no
    /// allocation happens per context.
    pub fn with_table(funcs: &'a [FunDecl], table: &'a FnTable) -> Self {
        EvalCtx {
            functions: funcs,
            fn_table: FnTableRef::Shared(table),
            externals: &NoExternals,
            rng: None,
        }
    }

    /// Replaces the external-function hook (builder style).
    pub fn externals(mut self, externals: &'a dyn ExternalFns<T>) -> Self {
        self.externals = externals;
        self
    }

    /// Attaches an RNG for `_rng` builtins (builder style).
    pub fn rng(mut self, rng: Rc<RefCell<StdRng>>) -> Self {
        self.rng = Some(rng);
        self
    }

    /// Looks up a user-defined function by name.
    pub fn lookup_fn(&self, name: &str) -> Option<&'a FunDecl> {
        self.fn_table.table().get(self.functions, name)
    }
}

/// Control-flow result of statement execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow<T: Real> {
    /// Continue with the next statement.
    Normal,
    /// `return e;` was executed.
    Return(Value<T>),
    /// `break;` was executed.
    Break,
    /// `continue;` was executed.
    Continue,
}

/// Evaluates an expression in the given environment.
///
/// # Errors
/// Returns a [`RuntimeError`] on unknown variables or functions, shape
/// mismatches, or out-of-bounds indexing.
pub fn eval_expr<T: Real>(
    e: &Expr,
    env: &Env<T>,
    ctx: &EvalCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    match e {
        Expr::IntLit(v) => Ok(Value::Int(*v)),
        Expr::RealLit(v) => Ok(Value::Real(T::from_f64(*v))),
        Expr::StringLit(_) => Ok(Value::Unit),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("unbound variable `{name}`"))),
        Expr::Unary(op, a) => {
            let va = eval_expr(a, env, ctx)?;
            eval_unary(*op, va)
        }
        Expr::Binary(op, a, b) => {
            let va = eval_expr(a, env, ctx)?;
            let vb = eval_expr(b, env, ctx)?;
            eval_binary(*op, va, vb)
        }
        Expr::Index(base, indices) => {
            let mut v = eval_expr(base, env, ctx)?;
            for idx in indices {
                match idx {
                    Expr::Range(lo, hi) => {
                        let lo = eval_expr(lo, env, ctx)?.as_int()?;
                        let hi = eval_expr(hi, env, ctx)?.as_int()?;
                        v = slice_value(&v, lo, hi)?;
                    }
                    _ => {
                        let i = eval_expr(idx, env, ctx)?.as_int()?;
                        v = v.index(i)?;
                    }
                }
            }
            Ok(v)
        }
        Expr::ArrayLit(items) => {
            let vals: Vec<Value<T>> = items
                .iter()
                .map(|i| eval_expr(i, env, ctx))
                .collect::<Result<_, _>>()?;
            promote_array_lit(vals)
        }
        Expr::VectorLit(items) => {
            let vals: Vec<T> = items
                .iter()
                .map(|i| eval_expr(i, env, ctx)?.as_real())
                .collect::<Result<_, _>>()?;
            Ok(Value::Vector(vals))
        }
        Expr::Range(lo, hi) => {
            let lo = eval_expr(lo, env, ctx)?.as_int()?;
            let hi = eval_expr(hi, env, ctx)?.as_int()?;
            Ok(Value::IntArray((lo..=hi).collect()))
        }
        Expr::Ternary(c, a, b) => {
            let cond = eval_expr(c, env, ctx)?.as_real()?;
            if cond.value() != 0.0 {
                eval_expr(a, env, ctx)
            } else {
                eval_expr(b, env, ctx)
            }
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value<T>> = args
                .iter()
                .map(|a| eval_expr(a, env, ctx))
                .collect::<Result<_, _>>()?;
            // 1. External hook (neural networks).
            if let Some(result) = ctx.externals.call(name, &vals, env) {
                return result;
            }
            // 2. User-defined functions.
            if let Some(fun) = ctx.lookup_fn(name.as_str()) {
                return call_user_function(fun, &vals, env, ctx);
            }
            // 3. Built-ins.
            call_builtin(name, &vals, ctx)
        }
    }
}

/// Calls a user-defined function with already-evaluated arguments. The outer
/// environment is provided as a view so both runtimes (string-keyed and
/// slot-resolved) can invoke interpreted functions.
pub(crate) fn call_user_function<T: Real>(
    fun: &FunDecl,
    args: &[Value<T>],
    outer_env: &dyn EnvView<T>,
    ctx: &EvalCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    if args.len() != fun.args.len() {
        return Err(RuntimeError::new(format!(
            "function `{}` expects {} arguments, got {}",
            fun.name,
            fun.args.len(),
            args.len()
        )));
    }
    // User-defined functions see only their arguments (plus data is handled
    // by the caller passing it explicitly), matching Stan's scoping.
    let mut env: Env<T> = Env::new();
    for (decl, val) in fun.args.iter().zip(args) {
        env.insert(decl.name.clone(), val.clone());
    }
    // Allow data to remain visible for convenience in the corpus models.
    outer_env.for_each_var(&mut |k, v| {
        if !env.contains_key(k) {
            env.insert(k.to_string(), v.clone());
        }
    });
    let mut handler = DeterministicOnly;
    for stmt in &fun.body.stmts {
        match exec_stmt(stmt, &mut env, ctx, &mut handler)? {
            Flow::Return(v) => return Ok(v),
            Flow::Normal => {}
            other => {
                return Err(RuntimeError::new(format!(
                    "unexpected {other:?} at function top level"
                )))
            }
        }
    }
    Ok(Value::Unit)
}

/// Promotes an array literal's elements to a flat container when all of
/// them are scalars (the policy shared by both evaluators).
pub(crate) fn promote_array_lit<T: Real>(vals: Vec<Value<T>>) -> Result<Value<T>, RuntimeError> {
    if vals.iter().all(|v| matches!(v, Value::Int(_))) {
        Ok(Value::IntArray(
            vals.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?,
        ))
    } else if vals
        .iter()
        .all(|v| matches!(v, Value::Real(_) | Value::Int(_)))
    {
        Ok(Value::Vector(
            vals.iter().map(|v| v.as_real()).collect::<Result<_, _>>()?,
        ))
    } else {
        Ok(Value::Array(vals))
    }
}

pub(crate) fn slice_value<T: Real>(
    v: &Value<T>,
    lo: i64,
    hi: i64,
) -> Result<Value<T>, RuntimeError> {
    if lo < 1 || hi as usize > v.len() || lo > hi + 1 {
        return Err(RuntimeError::new(format!(
            "slice {lo}:{hi} out of bounds for length {}",
            v.len()
        )));
    }
    let (a, b) = ((lo - 1) as usize, hi as usize);
    Ok(match v {
        Value::Vector(x) => Value::Vector(x[a..b].to_vec()),
        Value::IntArray(x) => Value::IntArray(x[a..b].to_vec()),
        Value::Array(x) => Value::Array(x[a..b].to_vec()),
        other => {
            return Err(RuntimeError::new(format!(
                "cannot slice a {}",
                other.kind()
            )))
        }
    })
}

pub(crate) fn eval_unary<T: Real>(op: UnOp, v: Value<T>) -> Result<Value<T>, RuntimeError> {
    match op {
        UnOp::Plus => Ok(v),
        UnOp::Neg => match v {
            Value::Int(k) => Ok(Value::Int(-k)),
            Value::Real(x) => Ok(Value::Real(-x)),
            Value::Vector(xs) => Ok(Value::Vector(xs.into_iter().map(|x| -x).collect())),
            Value::IntArray(xs) => Ok(Value::IntArray(xs.into_iter().map(|x| -x).collect())),
            Value::Array(xs) => Ok(Value::Array(
                xs.into_iter()
                    .map(|x| eval_unary(UnOp::Neg, x))
                    .collect::<Result<_, _>>()?,
            )),
            Value::Unit => Err(RuntimeError::new("cannot negate unit")),
        },
        UnOp::Not => {
            let x = v.as_real()?;
            Ok(Value::Int(if x.value() == 0.0 { 1 } else { 0 }))
        }
    }
}

/// Applies a binary operator to two runtime values with Stan's broadcasting
/// rules (scalar-container operations apply element-wise; `*` between two
/// vectors is the dot product; `.*` / `./` are element-wise).
pub fn eval_binary<T: Real>(op: BinOp, a: Value<T>, b: Value<T>) -> Result<Value<T>, RuntimeError> {
    use BinOp::*;
    // Comparisons and logical operators work on scalars and return ints.
    if matches!(op, Eq | Neq | Lt | Leq | Gt | Geq | And | Or) {
        let x = a.as_real()?.value();
        let y = b.as_real()?.value();
        let r = match op {
            Eq => x == y,
            Neq => x != y,
            Lt => x < y,
            Leq => x <= y,
            Gt => x > y,
            Geq => x >= y,
            And => x != 0.0 && y != 0.0,
            Or => x != 0.0 || y != 0.0,
            _ => unreachable!(),
        };
        return Ok(Value::Int(r as i64));
    }

    // Integer arithmetic stays integral (including Stan's integer division).
    if let (Value::Int(x), Value::Int(y)) = (&a, &b) {
        return Ok(match op {
            Add => Value::Int(x + y),
            Sub => Value::Int(x - y),
            Mul | EltMul => Value::Int(x * y),
            Div | EltDiv => {
                if *y == 0 {
                    return Err(RuntimeError::new("integer division by zero"));
                }
                Value::Int(x / y)
            }
            Mod => Value::Int(x % y),
            Pow => Value::Real(T::from_f64((*x as f64).powf(*y as f64))),
            _ => unreachable!(),
        });
    }

    let scalar_op = |x: T, y: T| -> Result<T, RuntimeError> {
        Ok(match op {
            Add => x + y,
            Sub => x - y,
            Mul | EltMul => x * y,
            Div | EltDiv => x / y,
            Pow => {
                // Constant exponents keep gradients exact; variable exponents
                // go through exp/ln.
                if y.value().fract() == 0.0 && y.value().abs() < 1e6 {
                    x.powi(y.value() as i32)
                } else {
                    (y * x.ln()).exp()
                }
            }
            Mod => T::from_f64(x.value() % y.value()),
            _ => unreachable!(),
        })
    };

    let is_scalar = |v: &Value<T>| matches!(v, Value::Int(_) | Value::Real(_));
    let is_flat = |v: &Value<T>| matches!(v, Value::Vector(_) | Value::IntArray(_));

    match (&a, &b) {
        (x, y) if is_scalar(x) && is_scalar(y) => {
            Ok(Value::Real(scalar_op(x.as_real()?, y.as_real()?)?))
        }
        (x, y) if is_scalar(x) && is_flat(y) => {
            let s = x.as_real()?;
            let v = y.as_real_vec()?;
            Ok(Value::Vector(
                v.into_iter()
                    .map(|e| scalar_op(s, e))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (x, y) if is_flat(x) && is_scalar(y) => {
            let v = x.as_real_vec()?;
            let s = y.as_real()?;
            Ok(Value::Vector(
                v.into_iter()
                    .map(|e| scalar_op(e, s))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (x, y) if is_flat(x) && is_flat(y) => {
            let va = x.as_real_vec()?;
            let vb = y.as_real_vec()?;
            if va.len() != vb.len() {
                return Err(RuntimeError::new(format!(
                    "vector length mismatch: {} vs {}",
                    va.len(),
                    vb.len()
                )));
            }
            if matches!(op, Mul) {
                // row_vector * vector — dot product.
                let mut acc = T::from_f64(0.0);
                for (x, y) in va.iter().zip(&vb) {
                    acc = acc + *x * *y;
                }
                return Ok(Value::Real(acc));
            }
            Ok(Value::Vector(
                va.into_iter()
                    .zip(vb)
                    .map(|(x, y)| scalar_op(x, y))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (Value::Array(rows), y) if is_flat(y) && matches!(op, Mul) => {
            // matrix * vector
            let v = y.as_real_vec()?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let r = row.as_real_vec()?;
                if r.len() != v.len() {
                    return Err(RuntimeError::new("matrix-vector dimension mismatch"));
                }
                let mut acc = T::from_f64(0.0);
                for (x, y) in r.iter().zip(&v) {
                    acc = acc + *x * *y;
                }
                out.push(acc);
            }
            Ok(Value::Vector(out))
        }
        (Value::Array(xs), y) if is_scalar(y) => {
            let s = b.as_real()?;
            Ok(Value::Array(
                xs.iter()
                    .map(|x| eval_binary(op, x.clone(), Value::Real(s)))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (x, Value::Array(ys)) if is_scalar(x) => {
            let s = a.as_real()?;
            Ok(Value::Array(
                ys.iter()
                    .map(|y| eval_binary(op, Value::Real(s), y.clone()))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (Value::Array(xs), Value::Array(ys)) if xs.len() == ys.len() => Ok(Value::Array(
            xs.iter()
                .zip(ys)
                .map(|(x, y)| eval_binary(op, x.clone(), y.clone()))
                .collect::<Result<_, _>>()?,
        )),
        _ => Err(RuntimeError::new(format!(
            "unsupported operand shapes for `{}`: {} and {}",
            op.symbol(),
            a.kind(),
            b.kind()
        ))),
    }
}

/// Evaluates a call to the built-in standard library.
///
/// # Errors
/// Unknown functions and `_lcdf` / `_lccdf` suffixes report a runtime error
/// (the latter mirrors the missing-stdlib failures reported in the paper's
/// evaluation).
pub fn call_builtin<T: Real>(
    name: &str,
    args: &[Value<T>],
    ctx: &EvalCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    let arg = |i: usize| -> Result<&Value<T>, RuntimeError> {
        args.get(i)
            .ok_or_else(|| RuntimeError::new(format!("{name}: missing argument {i}")))
    };
    let real = |i: usize| -> Result<T, RuntimeError> { arg(i)?.as_real() };
    let vec = |i: usize| -> Result<Vec<T>, RuntimeError> { arg(i)?.as_real_vec() };
    let scalar = |x: T| -> Result<Value<T>, RuntimeError> { Ok(Value::Real(x)) };

    // Element-wise application of a scalar function over scalars or containers.
    let map_unary = |f: &dyn Fn(T) -> T| -> Result<Value<T>, RuntimeError> {
        match arg(0)? {
            Value::Vector(_) | Value::IntArray(_) => {
                Ok(Value::Vector(vec(0)?.into_iter().map(f).collect()))
            }
            Value::Array(items) => Ok(Value::Array(
                items
                    .iter()
                    .map(|item| -> Result<Value<T>, RuntimeError> {
                        match item {
                            Value::Vector(v) => {
                                Ok(Value::Vector(v.iter().map(|x| f(*x)).collect()))
                            }
                            other => Ok(Value::Real(f(other.as_real()?))),
                        }
                    })
                    .collect::<Result<_, _>>()?,
            )),
            other => Ok(Value::Real(f(other.as_real()?))),
        }
    };

    match name {
        // ---- reductions ----
        "sum" => {
            let v = vec(0)?;
            let mut acc = T::from_f64(0.0);
            for x in v {
                acc = acc + x;
            }
            scalar(acc)
        }
        "prod" => {
            let v = vec(0)?;
            let mut acc = T::from_f64(1.0);
            for x in v {
                acc = acc * x;
            }
            scalar(acc)
        }
        "mean" => {
            let v = vec(0)?;
            let n = v.len() as f64;
            let mut acc = T::from_f64(0.0);
            for x in v {
                acc = acc + x;
            }
            scalar(acc / T::from_f64(n))
        }
        "variance" | "sd" => {
            let v = vec(0)?;
            let n = v.len() as f64;
            let mut mean = T::from_f64(0.0);
            for x in &v {
                mean = mean + *x;
            }
            mean = mean / T::from_f64(n);
            let mut acc = T::from_f64(0.0);
            for x in &v {
                let d = *x - mean;
                acc = acc + d * d;
            }
            let var = acc / T::from_f64(n - 1.0);
            scalar(if name == "sd" { var.sqrt() } else { var })
        }
        "min" | "max" => {
            if args.len() == 2
                && matches!(arg(0)?, Value::Int(_))
                && matches!(arg(1)?, Value::Int(_))
            {
                let (a, b) = (arg(0)?.as_int()?, arg(1)?.as_int()?);
                return Ok(Value::Int(if name == "min" { a.min(b) } else { a.max(b) }));
            }
            if args.len() == 2 {
                let (a, b) = (real(0)?, real(1)?);
                return scalar(if name == "min" {
                    a.min_real(b)
                } else {
                    a.max_real(b)
                });
            }
            let v = vec(0)?;
            let mut acc = v[0];
            for x in &v[1..] {
                acc = if name == "min" {
                    acc.min_real(*x)
                } else {
                    acc.max_real(*x)
                };
            }
            scalar(acc)
        }
        "dot_product" => {
            let (a, b) = (vec(0)?, vec(1)?);
            if a.len() != b.len() {
                return Err(RuntimeError::new("dot_product length mismatch"));
            }
            let mut acc = T::from_f64(0.0);
            for (x, y) in a.iter().zip(&b) {
                acc = acc + *x * *y;
            }
            scalar(acc)
        }
        "dot_self" => {
            let a = vec(0)?;
            let mut acc = T::from_f64(0.0);
            for x in &a {
                acc = acc + *x * *x;
            }
            scalar(acc)
        }
        "log_sum_exp" => {
            let v = if args.len() == 2 {
                vec![real(0)?, real(1)?]
            } else {
                vec(0)?
            };
            let m = v
                .iter()
                .map(|x| x.value())
                .fold(f64::NEG_INFINITY, f64::max);
            let mut acc = T::from_f64(0.0);
            for x in &v {
                acc = acc + (*x - T::from_f64(m)).exp();
            }
            scalar(T::from_f64(m) + acc.ln())
        }
        "log_mix" => {
            let theta = real(0)?;
            let (a, b) = (real(1)?, real(2)?);
            // log(theta * exp(a) + (1-theta) * exp(b)), stabilized.
            let m = a.value().max(b.value());
            let t1 = theta * (a - T::from_f64(m)).exp();
            let t2 = (T::from_f64(1.0) - theta) * (b - T::from_f64(m)).exp();
            scalar(T::from_f64(m) + (t1 + t2).ln())
        }
        // ---- scalar math, applied element-wise ----
        "log" => map_unary(&|x| x.ln()),
        "log1p" => map_unary(&|x| x.ln_1p()),
        "log1m" => map_unary(&|x| (T::from_f64(1.0) - x).ln()),
        "log1p_exp" => map_unary(&|x| x.softplus()),
        "exp" => map_unary(&|x| x.exp()),
        "expm1" => map_unary(&|x| x.exp() - T::from_f64(1.0)),
        "sqrt" => map_unary(&|x| x.sqrt()),
        "square" => map_unary(&|x| x * x),
        "inv" => map_unary(&|x| T::from_f64(1.0) / x),
        "inv_sqrt" => map_unary(&|x| T::from_f64(1.0) / x.sqrt()),
        "inv_logit" => map_unary(&|x| x.sigmoid()),
        "logit" => map_unary(&|x| (x / (T::from_f64(1.0) - x)).ln()),
        "fabs" | "abs" => map_unary(&|x| x.abs()),
        "floor" => map_unary(&|x| T::from_f64(x.value().floor())),
        "ceil" => map_unary(&|x| T::from_f64(x.value().ceil())),
        "round" => map_unary(&|x| T::from_f64(x.value().round())),
        "step" => map_unary(&|x| T::from_f64(if x.value() >= 0.0 { 1.0 } else { 0.0 })),
        "int_step" => Ok(Value::Int(if real(0)?.value() > 0.0 { 1 } else { 0 })),
        "sin" => map_unary(&|x| x.sin()),
        "cos" => map_unary(&|x| x.cos()),
        "tan" => map_unary(&|x| x.sin() / x.cos()),
        "tanh" => map_unary(&|x| x.tanh()),
        "atan" => map_unary(&|x| T::from_f64(x.value().atan())),
        "lgamma" => map_unary(&|x| x.lgamma()),
        "tgamma" => map_unary(&|x| x.lgamma().exp()),
        "digamma" => map_unary(&|x| T::from_f64(special::digamma(x.value()))),
        "erf" => map_unary(&|x| T::from_f64(special::erf(x.value()))),
        "Phi" | "Phi_approx" | "std_normal_cdf" => {
            map_unary(&|x| T::from_f64(special::std_normal_cdf(x.value())))
        }
        "pow" => scalar({
            let (x, p) = (real(0)?, real(1)?);
            if p.value().fract() == 0.0 && p.value().abs() < 1e6 {
                x.powi(p.value() as i32)
            } else {
                (p * x.ln()).exp()
            }
        }),
        "fmax" => scalar(real(0)?.max_real(real(1)?)),
        "fmin" => scalar(real(0)?.min_real(real(1)?)),
        "fma" => scalar(real(0)? * real(1)? + real(2)?),
        "hypot" => scalar((real(0)? * real(0)? + real(1)? * real(1)?).sqrt()),
        "atan2" => scalar(T::from_f64(real(0)?.value().atan2(real(1)?.value()))),
        "if_else" => {
            if real(0)?.value() != 0.0 {
                Ok(arg(1)?.clone())
            } else {
                Ok(arg(2)?.clone())
            }
        }
        // ---- shape / container functions ----
        "num_elements" | "size" | "rows" => Ok(Value::Int(arg(0)?.len() as i64)),
        "cols" => match arg(0)? {
            Value::Array(rows) if !rows.is_empty() => Ok(Value::Int(rows[0].len() as i64)),
            other => Ok(Value::Int(other.len() as i64)),
        },
        "rep_vector" | "rep_row_vector" => {
            let x = real(0)?;
            let n = arg(1)?.as_int()?;
            Ok(Value::Vector(vec![x; n.max(0) as usize]))
        }
        "rep_array" => {
            let x = arg(0)?.clone();
            let dims: Vec<i64> = args[1..]
                .iter()
                .map(|a| a.as_int())
                .collect::<Result<_, _>>()?;
            fn build<T: Real>(x: &Value<T>, dims: &[i64]) -> Value<T> {
                match dims {
                    [] => x.clone(),
                    [n, rest @ ..] => {
                        let inner = build(x, rest);
                        if rest.is_empty() {
                            match x {
                                Value::Int(k) => {
                                    return Value::IntArray(vec![*k; *n as usize]);
                                }
                                Value::Real(r) => {
                                    return Value::Vector(vec![*r; *n as usize]);
                                }
                                _ => {}
                            }
                        }
                        Value::Array(vec![inner; *n as usize])
                    }
                }
            }
            Ok(build(&x, &dims))
        }
        "rep_matrix" => {
            let x = real(0)?;
            let r = arg(1)?.as_int()?;
            let c = arg(2)?.as_int()?;
            Ok(Value::Array(
                (0..r).map(|_| Value::Vector(vec![x; c as usize])).collect(),
            ))
        }
        "to_vector" | "to_array_1d" | "to_row_vector" => Ok(Value::Vector(vec(0)?)),
        "diag_matrix" => {
            let d = vec(0)?;
            let n = d.len();
            Ok(Value::Array(
                (0..n)
                    .map(|i| {
                        let mut row = vec![T::from_f64(0.0); n];
                        row[i] = d[i];
                        Value::Vector(row)
                    })
                    .collect(),
            ))
        }
        "head" => {
            let v = vec(0)?;
            let n = arg(1)?.as_int()? as usize;
            Ok(Value::Vector(v[..n.min(v.len())].to_vec()))
        }
        "tail" => {
            let v = vec(0)?;
            let n = arg(1)?.as_int()? as usize;
            Ok(Value::Vector(v[v.len().saturating_sub(n)..].to_vec()))
        }
        "segment" => {
            let v = vec(0)?;
            let start = arg(1)?.as_int()? as usize;
            let n = arg(2)?.as_int()? as usize;
            Ok(Value::Vector(v[start - 1..start - 1 + n].to_vec()))
        }
        "append_row" | "append_col" | "append_array" => {
            let mut a = vec(0)?;
            a.extend(vec(1)?);
            Ok(Value::Vector(a))
        }
        "cumulative_sum" => {
            let v = vec(0)?;
            let mut acc = T::from_f64(0.0);
            Ok(Value::Vector(
                v.into_iter()
                    .map(|x| {
                        acc = acc + x;
                        acc
                    })
                    .collect(),
            ))
        }
        "softmax" => {
            let v = vec(0)?;
            let m = v
                .iter()
                .map(|x| x.value())
                .fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<T> = v.iter().map(|x| (*x - T::from_f64(m)).exp()).collect();
            let mut total = T::from_f64(0.0);
            for e in &exps {
                total = total + *e;
            }
            Ok(Value::Vector(exps.into_iter().map(|e| e / total).collect()))
        }
        "log_softmax" => {
            let v = vec(0)?;
            let m = v
                .iter()
                .map(|x| x.value())
                .fold(f64::NEG_INFINITY, f64::max);
            let mut total = T::from_f64(0.0);
            for x in &v {
                total = total + (*x - T::from_f64(m)).exp();
            }
            let lse = T::from_f64(m) + total.ln();
            Ok(Value::Vector(v.into_iter().map(|x| x - lse).collect()))
        }
        "sort_asc" | "sort_desc" => {
            let mut v = vec(0)?;
            v.sort_by(|a, b| a.value().partial_cmp(&b.value()).unwrap());
            if name == "sort_desc" {
                v.reverse();
            }
            Ok(Value::Vector(v))
        }
        "col" => {
            let j = arg(1)?.as_int()?;
            match arg(0)? {
                Value::Array(rows) => Ok(Value::Vector(
                    rows.iter()
                        .map(|r| r.index(j)?.as_real())
                        .collect::<Result<_, _>>()?,
                )),
                other => Err(RuntimeError::new(format!(
                    "col: expected matrix, got {}",
                    other.kind()
                ))),
            }
        }
        "row" => arg(0)?.index(arg(1)?.as_int()?),
        // ---- distribution log densities and RNGs ----
        _ => {
            if let Some(dist_name) = strip_lpdf_suffix(name) {
                let lhs = arg(0)?;
                return Ok(Value::Real(tilde_lpdf(lhs, dist_name, &args[1..])?));
            }
            if name.ends_with("_lcdf") || name.ends_with("_lccdf") || name.ends_with("_cdf") {
                return Err(RuntimeError::new(format!(
                    "cumulative distribution function `{name}` is not supported by the runtime"
                )));
            }
            if let Some(dist_name) = name.strip_suffix("_rng") {
                let rng = ctx.rng.clone().ok_or_else(|| {
                    RuntimeError::new(format!("{name}: no RNG available in this context"))
                })?;
                let dist_args: Vec<DistArg<T>> = args
                    .iter()
                    .map(|a| match a {
                        Value::Vector(_) | Value::IntArray(_) | Value::Array(_) => {
                            Ok(DistArg::Vector(a.as_real_vec()?))
                        }
                        other => Ok(DistArg::Scalar(other.as_real()?)),
                    })
                    .collect::<Result<_, RuntimeError>>()?;
                let d = dist_from_name(dist_name, &dist_args)?;
                let mut rng = rng.borrow_mut();
                return Ok(match d.sample(&mut *rng)? {
                    probdist::SampleValue::Real(x) => Value::Real(T::from_f64(x)),
                    probdist::SampleValue::Int(k) => Value::Int(k),
                    probdist::SampleValue::Vec(v) => {
                        Value::Vector(v.into_iter().map(T::from_f64).collect())
                    }
                });
            }
            Err(RuntimeError::new(format!("unknown function `{name}`")))
        }
    }
}

/// Builds the default (zero) value for a declaration, evaluating its sizes in
/// the current environment.
///
/// # Errors
/// Fails if a dimension expression cannot be evaluated.
pub fn default_value<T: Real>(
    decl: &Decl,
    env: &Env<T>,
    ctx: &EvalCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    let base: Value<T> = match &decl.ty {
        BaseType::Int => Value::Int(0),
        BaseType::Real => Value::Real(T::from_f64(0.0)),
        BaseType::Vector(n)
        | BaseType::RowVector(n)
        | BaseType::Simplex(n)
        | BaseType::Ordered(n)
        | BaseType::PositiveOrdered(n)
        | BaseType::UnitVector(n) => {
            let n = eval_expr(n, env, ctx)?.as_int()?;
            Value::Vector(vec![T::from_f64(0.0); n.max(0) as usize])
        }
        BaseType::Matrix(r, c) => {
            let rows = eval_expr(r, env, ctx)?.as_int()?;
            let cols = eval_expr(c, env, ctx)?.as_int()?;
            Value::Array(
                (0..rows)
                    .map(|_| Value::Vector(vec![T::from_f64(0.0); cols.max(0) as usize]))
                    .collect(),
            )
        }
        BaseType::CovMatrix(n) | BaseType::CorrMatrix(n) | BaseType::CholeskyFactorCorr(n) => {
            let n = eval_expr(n, env, ctx)?.as_int()?;
            Value::Array(
                (0..n)
                    .map(|_| Value::Vector(vec![T::from_f64(0.0); n.max(0) as usize]))
                    .collect(),
            )
        }
    };
    let mut val = base;
    for dim in decl.dims.iter().rev() {
        let n = eval_expr(dim, env, ctx)?.as_int()?;
        match (&val, &decl.ty) {
            (Value::Int(_), _) => val = Value::IntArray(vec![0; n.max(0) as usize]),
            (Value::Real(_), _) => val = Value::Vector(vec![T::from_f64(0.0); n.max(0) as usize]),
            _ => val = Value::Array(vec![val.clone(); n.max(0) as usize]),
        }
    }
    Ok(val)
}

/// Executes a statement, updating the environment and invoking `handler` for
/// probabilistic statements.
///
/// # Errors
/// Propagates expression evaluation errors and handler errors; `reject(...)`
/// statements produce an error as in Stan.
pub fn exec_stmt<T: Real>(
    stmt: &Stmt,
    env: &mut Env<T>,
    ctx: &EvalCtx<T>,
    handler: &mut dyn ProbHandler<T>,
) -> Result<Flow<T>, RuntimeError> {
    match stmt {
        Stmt::Skip | Stmt::Print(_) => Ok(Flow::Normal),
        Stmt::LocalDecl(d) => {
            let value = match &d.init {
                Some(e) => eval_expr(e, env, ctx)?,
                None => default_value(d, env, ctx)?,
            };
            env.insert(d.name.clone(), value);
            Ok(Flow::Normal)
        }
        Stmt::Assign { lhs, op, rhs } => {
            let mut value = eval_expr(rhs, env, ctx)?;
            if *op != AssignOp::Assign {
                let current = read_lvalue(lhs, env, ctx)?;
                let bop = match op {
                    AssignOp::AddAssign => BinOp::Add,
                    AssignOp::SubAssign => BinOp::Sub,
                    AssignOp::MulAssign => BinOp::Mul,
                    AssignOp::DivAssign => BinOp::Div,
                    AssignOp::Assign => unreachable!(),
                };
                value = eval_binary(bop, current, value)?;
            }
            write_lvalue(lhs, value, env, ctx)?;
            Ok(Flow::Normal)
        }
        Stmt::TargetPlus(e) => {
            // `target +=` accepts vectors, summing their elements.
            let total = eval_expr(e, env, ctx)?.sum_as_real()?;
            handler.on_target_plus(total)?;
            Ok(Flow::Normal)
        }
        Stmt::Tilde {
            lhs,
            dist,
            args,
            truncation,
        } => {
            if truncation.is_some() {
                return Err(RuntimeError::new(format!(
                    "truncated distribution `{dist}` is not supported by the generative backends"
                )));
            }
            let lhs_v = eval_expr(lhs, env, ctx)?;
            let args_v: Vec<Value<T>> = args
                .iter()
                .map(|a| eval_expr(a, env, ctx))
                .collect::<Result<_, _>>()?;
            handler.on_tilde(&lhs_v, dist, &args_v)?;
            Ok(Flow::Normal)
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                match exec_stmt(s, env, ctx, handler)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = eval_expr(cond, env, ctx)?.as_real()?;
            if c.value() != 0.0 {
                exec_stmt(then_branch, env, ctx, handler)
            } else if let Some(e) = else_branch {
                exec_stmt(e, env, ctx, handler)
            } else {
                Ok(Flow::Normal)
            }
        }
        Stmt::ForRange { var, lo, hi, body } => {
            let lo = eval_expr(lo, env, ctx)?.as_int()?;
            let hi = eval_expr(hi, env, ctx)?.as_int()?;
            for i in lo..=hi {
                // Clone the key only on the first iteration.
                match env.get_mut(var) {
                    Some(slot) => *slot = Value::Int(i),
                    None => {
                        env.insert(var.clone(), Value::Int(i));
                    }
                }
                match exec_stmt(body, env, ctx, handler)? {
                    Flow::Break => break,
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Normal | Flow::Continue => {}
                }
            }
            env.remove(var);
            Ok(Flow::Normal)
        }
        Stmt::ForEach {
            var,
            collection,
            body,
        } => {
            let coll = eval_expr(collection, env, ctx)?;
            for i in 1..=coll.len() as i64 {
                let item = coll.index(i)?;
                match env.get_mut(var) {
                    Some(slot) => *slot = item,
                    None => {
                        env.insert(var.clone(), item);
                    }
                }
                match exec_stmt(body, env, ctx, handler)? {
                    Flow::Break => break,
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Normal | Flow::Continue => {}
                }
            }
            env.remove(var);
            Ok(Flow::Normal)
        }
        Stmt::While { cond, body } => {
            let mut iterations = 0usize;
            loop {
                let c = eval_expr(cond, env, ctx)?.as_real()?;
                if c.value() == 0.0 {
                    break;
                }
                iterations += 1;
                if iterations > 10_000_000 {
                    return Err(RuntimeError::new(
                        "while loop exceeded the iteration budget",
                    ));
                }
                match exec_stmt(body, env, ctx, handler)? {
                    Flow::Break => break,
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    Flow::Normal | Flow::Continue => {}
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Reject(args) => {
            let parts: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Expr::StringLit(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect();
            Err(RuntimeError::new(format!("reject: {}", parts.join(" "))))
        }
        Stmt::Return(e) => {
            let v = match e {
                Some(e) => eval_expr(e, env, ctx)?,
                None => Value::Unit,
            };
            Ok(Flow::Return(v))
        }
        Stmt::Break => Ok(Flow::Break),
        Stmt::Continue => Ok(Flow::Continue),
    }
}

/// Reads the value of an assignment target (variable plus indices).
///
/// # Errors
/// Fails on unbound variables or out-of-bounds indices.
pub fn read_lvalue<T: Real>(
    lv: &LValue,
    env: &Env<T>,
    ctx: &EvalCtx<T>,
) -> Result<Value<T>, RuntimeError> {
    let mut v = env
        .get(&lv.name)
        .cloned()
        .ok_or_else(|| RuntimeError::new(format!("unbound variable `{}`", lv.name)))?;
    for idx in &lv.indices {
        let i = eval_expr(idx, env, ctx)?.as_int()?;
        v = v.index(i)?;
    }
    Ok(v)
}

/// Writes a value into an assignment target (variable plus indices).
///
/// # Errors
/// Fails on unbound variables or out-of-bounds indices.
pub fn write_lvalue<T: Real>(
    lv: &LValue,
    value: Value<T>,
    env: &mut Env<T>,
    ctx: &EvalCtx<T>,
) -> Result<(), RuntimeError> {
    write_indexed(&lv.name, &lv.indices, value, env, ctx)
}

/// Writes a value into `name[indices]` without constructing an [`LValue`] —
/// the allocation-free form used by the interpreter's hot loops.
///
/// # Errors
/// Fails on unbound variables or out-of-bounds indices.
pub fn write_indexed<T: Real>(
    name: &str,
    indices: &[Expr],
    value: Value<T>,
    env: &mut Env<T>,
    ctx: &EvalCtx<T>,
) -> Result<(), RuntimeError> {
    if indices.is_empty() {
        match env.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                env.insert(name.to_string(), value);
            }
        }
        return Ok(());
    }
    let indices: Vec<i64> = indices
        .iter()
        .map(|e| eval_expr(e, env, ctx)?.as_int())
        .collect::<Result<_, _>>()?;
    let slot = env
        .get_mut(name)
        .ok_or_else(|| RuntimeError::new(format!("unbound variable `{name}`")))?;
    set_nested(slot, &indices, value)
}

pub(crate) fn set_nested<T: Real>(
    slot: &mut Value<T>,
    indices: &[i64],
    value: Value<T>,
) -> Result<(), RuntimeError> {
    match indices {
        [] => {
            *slot = value;
            Ok(())
        }
        [i] => slot.set_index(*i, value),
        [i, rest @ ..] => match slot {
            Value::Array(items) => {
                let idx = (*i - 1) as usize;
                if idx >= items.len() {
                    return Err(RuntimeError::new(format!(
                        "index {i} out of bounds for length {}",
                        items.len()
                    )));
                }
                set_nested(&mut items[idx], rest, value)
            }
            other => Err(RuntimeError::new(format!(
                "cannot index into {} with {} indices",
                other.kind(),
                indices.len()
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stan_frontend::parse_program;

    fn eval_str<T: Real>(expr: &str, env: &Env<T>) -> Value<T> {
        let src = format!("parameters {{ real q_unused_q; }} model {{ target += {expr}; }}");
        let p = parse_program(&src).unwrap();
        match &p.model.stmts[0] {
            Stmt::TargetPlus(e) => eval_expr(e, env, &EvalCtx::empty()).unwrap(),
            _ => unreachable!(),
        }
    }

    fn base_env() -> Env<f64> {
        let mut env = Env::new();
        env.insert("x".into(), Value::Real(2.0));
        env.insert("v".into(), Value::Vector(vec![1.0, 2.0, 3.0]));
        env.insert("k".into(), Value::IntArray(vec![4, 5, 6]));
        env.insert("N".into(), Value::Int(3));
        env
    }

    #[test]
    fn arithmetic_and_broadcasting() {
        let env = base_env();
        assert_eq!(eval_str("1 + 2 * 3", &env), Value::Int(7));
        assert_eq!(eval_str("x * 3 + 1", &env), Value::Real(7.0));
        assert_eq!(eval_str("7 / 2", &env), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2", &env), Value::Real(3.5));
        assert_eq!(eval_str("v + 1", &env), Value::Vector(vec![2.0, 3.0, 4.0]));
        assert_eq!(eval_str("2 * v", &env), Value::Vector(vec![2.0, 4.0, 6.0]));
        // vector * vector is a dot product; .* is element-wise
        assert_eq!(eval_str("v * v", &env), Value::Real(14.0));
        assert_eq!(eval_str("v .* v", &env), Value::Vector(vec![1.0, 4.0, 9.0]));
    }

    #[test]
    fn indexing_is_one_based() {
        let env = base_env();
        assert_eq!(eval_str("v[1]", &env), Value::Real(1.0));
        assert_eq!(eval_str("k[3]", &env), Value::Int(6));
        assert_eq!(eval_str("v[2:3]", &env), Value::Vector(vec![2.0, 3.0]));
    }

    #[test]
    fn builtins_cover_reductions_and_transforms() {
        let env = base_env();
        assert_eq!(eval_str("sum(v)", &env), Value::Real(6.0));
        assert_eq!(eval_str("mean(v)", &env), Value::Real(2.0));
        assert_eq!(eval_str("dot_product(v, v)", &env), Value::Real(14.0));
        assert_eq!(eval_str("num_elements(v)", &env), Value::Int(3));
        assert_eq!(
            eval_str("rep_vector(1.5, 3)", &env),
            Value::Vector(vec![1.5, 1.5, 1.5])
        );
        let soft = eval_str("softmax(v)", &env);
        let total: f64 = soft.as_real_vec().unwrap().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        match eval_str("inv_logit(0.0)", &env) {
            Value::Real(x) => assert!((x - 0.5) < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lpdf_builtins_match_probdist() {
        let env = base_env();
        let v = eval_str("normal_lpdf(0.0 | 0.0, 1.0)", &env)
            .as_real()
            .unwrap();
        assert!((v + 0.9189385332046727).abs() < 1e-12);
        let vect = eval_str("normal_lpdf(v | 0.0, 1.0)", &env)
            .as_real()
            .unwrap();
        let expect: f64 = [1.0f64, 2.0, 3.0]
            .iter()
            .map(|x| -0.5 * x * x - 0.9189385332046727)
            .sum();
        assert!((vect - expect).abs() < 1e-10);
    }

    #[test]
    fn lcdf_is_reported_unsupported() {
        let env = base_env();
        let src = "parameters { real q; } model { target += student_t_lccdf(1.0 | 3, 0, 1); }";
        let p = parse_program(src).unwrap();
        match &p.model.stmts[0] {
            Stmt::TargetPlus(e) => {
                let err = eval_expr::<f64>(e, &env, &EvalCtx::empty()).unwrap_err();
                assert!(err.message().contains("not supported"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn statement_execution_with_target() {
        let src = r#"
            data { int N; real y[N]; }
            parameters { real mu; }
            model {
              real acc;
              acc = 0;
              for (i in 1:N) acc = acc + y[i];
              target += acc;
              y ~ normal(mu, 1);
            }
        "#;
        let p = parse_program(src).unwrap();
        let mut env: Env<f64> = Env::new();
        env.insert("N".into(), Value::Int(2));
        env.insert("y".into(), Value::Vector(vec![1.0, 3.0]));
        env.insert("mu".into(), Value::Real(0.0));
        let ctx = EvalCtx::empty();
        let mut handler = TargetAccumulator::default();
        for s in &p.model.stmts {
            exec_stmt(s, &mut env, &ctx, &mut handler).unwrap();
        }
        let expected_obs: f64 = [1.0f64, 3.0]
            .iter()
            .map(|x| -0.5 * x * x - 0.9189385332046727)
            .sum();
        assert!((handler.target - (4.0 + expected_obs)).abs() < 1e-10);
    }

    #[test]
    fn user_functions_are_callable() {
        let src = r#"
            functions {
              real double_it(real x) { return 2 * x; }
              real sum_sq(real[] xs) {
                real acc = 0;
                for (x in xs) acc += x * x;
                return acc;
              }
            }
            data { real y[3]; }
            parameters { real mu; }
            model { target += double_it(mu) + sum_sq(y); }
        "#;
        let p = parse_program(src).unwrap();
        let ctx = EvalCtx::with_functions(&p.functions);
        let mut env: Env<f64> = Env::new();
        env.insert("y".into(), Value::Vector(vec![1.0, 2.0, 3.0]));
        env.insert("mu".into(), Value::Real(5.0));
        let mut handler = TargetAccumulator::default();
        for s in &p.model.stmts {
            exec_stmt(s, &mut env, &ctx, &mut handler).unwrap();
        }
        assert!((handler.target - (10.0 + 14.0)).abs() < 1e-12);
    }

    #[test]
    fn compound_assignment_and_nested_indexing() {
        let src = r#"
            parameters { real q; }
            model {
              real m[2, 3];
              m[1, 2] = 7;
              m[1, 2] += 3;
              target += m[1, 2];
            }
        "#;
        let p = parse_program(src).unwrap();
        let mut env: Env<f64> = Env::new();
        let ctx = EvalCtx::empty();
        let mut handler = TargetAccumulator::default();
        for s in &p.model.stmts {
            exec_stmt(s, &mut env, &ctx, &mut handler).unwrap();
        }
        assert_eq!(handler.target, 10.0);
    }

    #[test]
    fn gradients_flow_through_evaluation() {
        use minidiff::{grad, tape, Var};
        tape::reset();
        let mu = Var::new(1.5);
        let mut env: Env<Var> = Env::new();
        env.insert("mu".into(), Value::Real(mu));
        env.insert("y".into(), Value::Vector(vec![Var::constant(2.0)]));
        let v = eval_str("normal_lpdf(y | mu, 1.0)", &env)
            .as_real()
            .unwrap();
        let g = grad(v, &[mu]);
        assert!((g[0] - (2.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn truncation_is_rejected_like_the_paper() {
        let src = "parameters { real s; } model { s ~ normal(0, 1) T[0, ]; }";
        let p = parse_program(src).unwrap();
        let mut env: Env<f64> = Env::new();
        env.insert("s".into(), Value::Real(0.5));
        let ctx = EvalCtx::empty();
        let mut handler = TargetAccumulator::default();
        let err = exec_stmt(&p.model.stmts[0], &mut env, &ctx, &mut handler).unwrap_err();
        assert!(err.message().contains("truncated"));
    }
}
